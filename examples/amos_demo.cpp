// amos_demo: the paper's section-2.3.1 example, end to end.
//
//   $ ./amos_demo
//
// amos ("at most one selected") cannot be decided deterministically in
// fewer than diameter/2 rounds, but a ZERO-round randomized decider
// reaches guarantee (sqrt(5)-1)/2 ~ 0.618: selected nodes accept with
// probability p, everyone else always accepts. This program measures the
// acceptance probability as the number of selected nodes grows, and shows
// why the golden ratio balances the two error modes. The instance and the
// decider come from the scenario registry.
#include <cmath>
#include <iostream>

#include "decide/experiment_plans.h"
#include "lang/amos.h"
#include "scenario/registry.h"
#include "util/math.h"
#include "util/table.h"

int main() {
  using namespace lnc;

  const graph::NodeId n = 30;
  const local::Instance inst = scenario::build_instance("ring", n);
  const auto decider = scenario::make_decider("amos", nullptr);
  const double p_star = util::golden_ratio_guarantee();

  std::cout << "amos decider with p = " << p_star << "\n"
            << "p solves p = 1 - p^2: both error modes equal "
            << util::golden_ratio_guarantee() << "\n\n";

  local::BatchRunner runner;
  util::Table table({"selected", "member?", "Pr[all accept] measured",
                     "p^s theory"});
  for (int s : {0, 1, 2, 3, 6}) {
    local::Labeling output(n, 0);
    for (int i = 0; i < s; ++i) {
      output[static_cast<graph::NodeId>(i * 5)] = lang::Amos::kSelected;
    }
    const stats::Estimate accept = runner.run(decide::acceptance_plan(
        "amos-accept", inst, output, *decider, 20000,
        static_cast<std::uint64_t>(s) + 1));
    table.new_row()
        .add_cell(s)
        .add_cell(s <= 1 ? "yes" : "no")
        .add_cell(accept.p_hat, 4)
        .add_cell(std::pow(p_star, s), 4);
  }
  table.print(std::cout);
  std::cout << "\nMembers are accepted with probability >= 0.618; already\n"
               "two selected nodes are rejected with probability >= 0.618\n"
               "— a 2-sided-error BPLD decider with zero communication.\n";
  return 0;
}
