// lll_demo: the constructive Lovász Local Lemma as a LOCAL task.
//
//   $ ./lll_demo
//
// The LLL system: each node holds a bit; the bad event at v fires when all
// of N[v] agree. The demo (1) checks the symmetric LLL condition across
// graph families, (2) constructs satisfying assignments by distributed
// Moser-Tardos resampling, and (3) shows the f-resilient face from the
// paper's section 4: on consecutive-identity rings, order-invariant
// algorithms cannot keep the number of fired events below any fixed f.
#include <iostream>

#include "algo/moser_tardos.h"
#include "algo/order_invariant.h"
#include "core/hard_instances.h"
#include "graph/generators.h"
#include "lang/lll.h"
#include "util/table.h"

int main() {
  using namespace lnc;
  const lang::LllAvoidance lll;

  util::Table table({"graph", "condition", "phases", "resamplings",
                     "satisfied?"});
  struct Family {
    std::string name;
    local::Instance inst;
  };
  std::vector<Family> families;
  families.push_back({"hypercube d=8",
                      local::make_instance(graph::hypercube(8),
                                           ident::random_permutation(256, 1))});
  families.push_back(
      {"random 5-regular n=200",
       local::make_instance(graph::random_regular(200, 5, 2),
                            ident::random_permutation(200, 2))});
  families.push_back({"ring n=48", core::consecutive_ring(48)});
  for (const Family& family : families) {
    const rand::PhiloxCoins coins(42, rand::Stream::kConstruction);
    const algo::MoserTardosResult result =
        algo::run_moser_tardos(family.inst, coins, 100000);
    table.new_row()
        .add_cell(family.name)
        .add_cell(lang::LllAvoidance::lll_condition_holds(family.inst.g)
                      ? "holds"
                      : "fails")
        .add_cell(result.phases)
        .add_cell(std::uint64_t{result.total_resamplings})
        .add_cell(result.success &&
                          lll.contains(family.inst, result.assignment)
                      ? "yes"
                      : "no");
  }
  table.print(std::cout);

  // The f-resilient face: every 1-round order-invariant binary algorithm
  // on the consecutive ring fires ~n events.
  const graph::NodeId n = 64;
  const local::Instance ring = core::consecutive_ring(n);
  const auto tables = algo::enumerate_tables(3, 2, 0, 64);
  std::size_t best = n;
  for (const auto& t : tables) {
    const algo::RankPatternRingAlgorithm alg(1, t);
    best = std::min(best,
                    lll.count_bad_balls(ring, local::run_ball_algorithm(
                                                  ring, alg)));
  }
  std::cout << "\nbest order-invariant 1-round algorithm on C_" << n
            << " (consecutive ids) still fires " << best
            << " events — no fixed f survives growing n (Corollary 1).\n";
  return 0;
}
