// lll_demo: the constructive Lovász Local Lemma as a LOCAL task.
//
//   $ ./lll_demo
//
// The LLL system: each node holds a bit; the bad event at v fires when all
// of N[v] agree. The demo (1) checks the symmetric LLL condition across
// graph families from the topology registry, (2) constructs satisfying
// assignments by the registered Moser-Tardos construction, and (3) shows
// the f-resilient face from the paper's section 4: on consecutive-identity
// rings, order-invariant algorithms cannot keep the number of fired events
// below any fixed f.
#include <iostream>

#include "algo/order_invariant.h"
#include "lang/lll.h"
#include "local/runner.h"
#include "scenario/registry.h"
#include "stats/montecarlo.h"
#include "util/table.h"

int main() {
  using namespace lnc;
  const auto language = scenario::make_language("lll-avoidance");
  const lang::LclLanguage& lll = *scenario::lcl_core(*language);
  const auto moser_tardos = scenario::make_construction("moser-tardos");

  util::Table table({"graph", "condition", "rounds", "satisfied?"});
  struct Family {
    std::string name;
    local::Instance inst;
  };
  std::vector<Family> families;
  families.push_back(
      {"hypercube d=8", scenario::build_instance("hypercube", 256, {}, 1)});
  families.push_back(
      {"random 5-regular n=200",
       scenario::build_instance("random-regular", 200, {{"degree", 5}}, 2)});
  families.push_back({"ring n=48", scenario::build_instance("hard-ring", 48)});
  local::WorkerArena arena;
  for (const Family& family : families) {
    local::TrialEnv env;
    env.seed = stats::trial_seed(42, 0);
    env.arena = &arena;
    local::Labeling assignment;
    const auto outcome = moser_tardos->run(family.inst, env, assignment);
    table.new_row()
        .add_cell(family.name)
        .add_cell(lang::LllAvoidance::lll_condition_holds(family.inst.g)
                      ? "holds"
                      : "fails")
        .add_cell(outcome.rounds)
        .add_cell(lll.contains(family.inst, assignment) ? "yes" : "no");
  }
  table.print(std::cout);

  // The f-resilient face: every 1-round order-invariant binary algorithm
  // on the consecutive ring fires ~n events.
  const graph::NodeId n = 64;
  const local::Instance ring = scenario::build_instance("hard-ring", n);
  const auto tables = algo::enumerate_tables(3, 2, 0, 64);
  std::size_t best = n;
  for (const auto& t : tables) {
    const algo::RankPatternRingAlgorithm alg(1, t);
    best = std::min(best,
                    lll.count_bad_balls(ring, local::run_ball_algorithm(
                                                  ring, alg)));
  }
  std::cout << "\nbest order-invariant 1-round algorithm on C_" << n
            << " (consecutive ids) still fires " << best
            << " events — no fixed f survives growing n (Corollary 1).\n";
  return 0;
}
