// resilient_vs_slack: the paper's headline dichotomy on one screen.
//
//   $ ./resilient_vs_slack
//
// The SAME zero-round Monte-Carlo coloring algorithm:
//   * solves the eps-slack relaxation of ring 3-coloring with probability
//     -> 1 (for eps above the 5/9 conflict rate) — randomization HELPS;
//   * fails the f-resilient relaxation essentially always as n grows —
//     and Theorem 1 says no other constant-round Monte-Carlo algorithm
//     can do better, because the f-resilient language is in BPLD (the
//     Corollary-1 decider) while eps-slack is only in BPLD#node.
// All components come from the scenario registry.
#include <iostream>

#include "decide/evaluate.h"
#include "local/experiment.h"
#include "scenario/registry.h"
#include "util/table.h"

int main() {
  using namespace lnc;

  const double eps = 0.65;      // above the 5/9 threshold
  const double faults = 4;      // any fixed budget loses eventually

  const auto base = scenario::make_language("coloring", {{"colors", 3}});
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();

  std::cout << "zero-round uniform 3-coloring vs two relaxations of ring\n"
            << "3-coloring: slack(eps=0.65) and 4-resilient.\n\n";

  local::BatchRunner runner;
  util::Table table({"n", "Pr[slack ok]", "Pr[resilient ok]",
                     "Pr[decider catches failure]"});
  for (graph::NodeId n : {20u, 60u, 180u, 540u}) {
    const local::Instance inst = scenario::build_instance("hard-ring", n);
    const auto slack = scenario::make_language(
        "slack-coloring", {{"colors", 3}, {"eps", eps}});
    const auto resilient = scenario::make_language(
        "resilient-coloring", {{"colors", 3}, {"faults", faults}});
    const auto decider =
        scenario::make_decider("resilient", base.get(), {{"faults", faults}});

    const stats::Estimate slack_ok = runner.run(local::construction_plan(
        "slack-ok", inst, coloring,
        [&slack](const local::Instance& instance,
                 const local::Labeling& y) {
          return slack->contains(instance, y);
        },
        800, n));
    const stats::Estimate resilient_ok = runner.run(local::construction_plan(
        "resilient-ok", inst, coloring,
        [&resilient](const local::Instance& instance,
                     const local::Labeling& y) {
          return resilient->contains(instance, y);
        },
        800, n + 1));
    // Caught = C misses the relaxation AND D notices — a bespoke trial
    // combining both checks, still declared as a plan.
    const stats::Estimate caught = runner.run(local::custom_plan(
        "decider-catches", 800, n + 2, [&](const local::TrialEnv& env) {
          const rand::PhiloxCoins c = env.construction_coins();
          const rand::PhiloxCoins d = env.decision_coins();
          local::Labeling& y = env.arena->labeling();
          local::run_ball_algorithm_into(inst, coloring, c, y);
          if (resilient->contains(inst, y)) return false;
          return !decide::evaluate(inst, y, *decider, d).accepted;
        }));
    table.new_row()
        .add_cell(std::uint64_t{n})
        .add_cell(slack_ok.p_hat, 4)
        .add_cell(resilient_ok.p_hat, 4)
        .add_cell(caught.p_hat, 4);
  }
  table.print(std::cout);
  std::cout
      << "\nReading: the slack column climbs toward 1 with n; the\n"
         "resilient column collapses to 0; and the BPLD decider keeps\n"
         "catching the failures — which is exactly the hypothesis\n"
         "Theorem 1 turns into 'randomization does not help here'.\n";
  return 0;
}
