// derandomization_demo: Theorem 1's proof engine, run for real.
//
//   $ ./derandomization_demo
//
// Walks the proof's pipeline on concrete objects:
//   1. hard instances H_1..H_nu (consecutive rings, disjoint identities,
//      diameter >= D = 2*mu*(t+t')),
//   2. Claim-5 anchor selection u_i (the node whose FAR neighborhood
//      rejects most),
//   3. the double-subdivision + cycle glue,
//   4. the boosted failure: acceptance of D on C(glued G) collapses as nu
//      grows, contradicting any claimed success probability r — hence no
//      constant-round Monte-Carlo algorithm for the BPLD language exists
//      (here: 1-resilient ring 3-coloring).
// Also exports the nu = 3 glue as GraphViz DOT for inspection.
#include <fstream>
#include <iostream>

#include "core/boost_params.h"
#include "core/critical_strings.h"
#include "core/glue.h"
#include "core/hard_instances.h"
#include "decide/resilient_decider.h"
#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "scenario/registry.h"
#include "util/table.h"

int main() {
  using namespace lnc;

  // Components by name: the same catalogue lnc_sweep exposes.
  const auto base = scenario::make_language("coloring", {{"colors", 3}});
  const auto relaxed = scenario::make_language(
      "resilient-coloring", {{"colors", 3}, {"faults", 1}});
  const auto construction =
      scenario::make_construction("rand-coloring", {{"colors", 3}});
  const local::RandomizedBallAlgorithm& coloring =
      *construction->ball_algorithm();
  const auto decider_ptr =
      scenario::make_decider("resilient", base.get(), {{"faults", 1}});
  const decide::RandomizedDecider& decider = *decider_ptr;
  const double p = decide::ResilientDecider::default_p(1);

  core::BoostParameters params;
  params.p = p;
  params.t = 0;
  params.t_prime = 1;
  params.r = 0.05;

  std::cout << "L = 1-resilient ring 3-coloring (in BPLD by Corollary 1)\n"
            << "C = zero-round uniform coloring, D = resilient decider\n"
            << "p = " << p << ", mu = " << params.mu()
            << ", D_min = " << params.min_diameter() << "\n\n";

  // Step 1-2: hard instances and Claim-5 anchors.
  const std::size_t nu = 5;
  const auto parts = core::claim2_sequence(nu, params.min_diameter());
  const stats::Estimate beta =
      core::estimate_beta(parts[0], coloring, *relaxed, 1500, 3);
  params.beta = beta.p_hat;
  std::cout << "measured beta (Claim 2 floor): " << beta.p_hat << "\n";

  std::vector<graph::NodeId> anchors;
  for (std::size_t i = 0; i < nu; ++i) {
    const auto scattered = graph::scattered_nodes(
        parts[i].g, 2 * 1, static_cast<std::size_t>(params.mu()));
    const core::Claim5Report report = core::verify_claim5(
        parts[i], coloring, decider, scattered, 1, params.beta, p,
        params.mu(), 400, 17 + i);
    anchors.push_back(report.best_anchor());
  }
  std::cout << "Claim-5 anchors: ";
  for (graph::NodeId u : anchors) std::cout << u << ' ';
  std::cout << "\n\n";

  // Step 3-4: glue prefixes of the sequence and measure the collapse.
  local::BatchRunner runner;
  util::Table table({"nu", "glued n", "accept (meas)", "theory ceiling"});
  for (std::size_t k = 2; k <= nu; ++k) {
    const std::span<const local::Instance> prefix(parts.data(), k);
    const std::span<const graph::NodeId> prefix_anchors(anchors.data(), k);
    const core::GluedInstance glued =
        core::theorem1_glue(prefix, prefix_anchors);
    const stats::Estimate accept =
        runner.run(decide::construct_then_decide_plan(
            "glued-accept", glued.instance, coloring, decider, 1200,
            100 + k));
    table.new_row()
        .add_cell(std::uint64_t{k})
        .add_cell(std::uint64_t{glued.instance.node_count()})
        .add_cell(accept.p_hat, 4)
        .add_cell(params.glued_acceptance_bound(k), 4);
    if (k == 3) {
      std::ofstream dot("glued_nu3.dot");
      graph::write_dot(dot, glued.instance.g);
      std::cout << "(wrote glued_nu3.dot for nu = 3)\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nAcceptance collapses geometrically: a construction\n"
               "algorithm with success probability r would contradict\n"
               "this within nu' = " << params.nu_prime()
            << " glued instances (Theorem 1's final step).\n";
  return 0;
}
