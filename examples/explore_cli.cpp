// explore_cli: run any (family, algorithm) combination from the command
// line and print outputs, round counts, and verification verdicts — a
// small driver for poking at the library without writing code.
//
//   usage: explore_cli <family> <n> <algorithm> [seed]
//
//   family    : ring | grid | tree | regular3 | hypercube | petersen
//   algorithm : cv        Cole-Vishkin 3-coloring   (rings only)
//               greedy    greedy (Delta+1)-coloring by identity
//               luby      Luby's MIS
//               matching  randomized maximal matching
//               rand3     zero-round uniform 3-coloring
//               mt        Moser-Tardos LLL resampling
#include <cstdlib>
#include <iostream>
#include <string>

#include "algo/cole_vishkin.h"
#include "algo/greedy_by_id.h"
#include "algo/luby_mis.h"
#include "algo/moser_tardos.h"
#include "algo/rand_coloring.h"
#include "algo/rand_matching.h"
#include "decide/evaluate.h"
#include "decide/lcl_decider.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "lang/coloring.h"
#include "lang/lll.h"
#include "lang/matching.h"
#include "lang/mis.h"
#include "util/logstar.h"

namespace {

using namespace lnc;

[[noreturn]] void usage() {
  std::cerr << "usage: explore_cli <ring|grid|tree|regular3|hypercube|"
               "petersen> <n> <cv|greedy|luby|matching|rand3|mt> [seed]\n";
  std::exit(2);
}

graph::Graph make_family(const std::string& family, graph::NodeId n,
                         std::uint64_t seed) {
  if (family == "ring") return graph::cycle(n);
  if (family == "grid") {
    graph::NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return graph::grid(side, side);
  }
  if (family == "tree") return graph::random_tree_bounded(n, 3, seed);
  if (family == "regular3") return graph::random_regular(n, 3, seed);
  if (family == "hypercube") {
    int d = 1;
    while ((graph::NodeId{1} << (d + 1)) <= n) ++d;
    return graph::hypercube(d);
  }
  if (family == "petersen") return graph::petersen();
  usage();
}

void report(const std::string& what, int rounds, bool valid,
            const local::Instance& inst, const local::Labeling& output) {
  std::cout << what << ": rounds = " << rounds
            << ", valid = " << (valid ? "yes" : "NO") << "\n  output head:";
  for (graph::NodeId v = 0; v < std::min<graph::NodeId>(12, inst.node_count());
       ++v) {
    std::cout << ' ' << output[v];
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string family = argv[1];
  const auto n = static_cast<graph::NodeId>(std::atoi(argv[2]));
  const std::string algorithm = argv[3];
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  if (n < 3) usage();

  graph::Graph g = make_family(family, n, seed);
  const graph::NodeId actual_n = g.node_count();
  local::Instance inst = local::make_instance(
      std::move(g), ident::random_permutation(actual_n, seed));

  std::cout << "family " << family << ": n = " << actual_n
            << ", m = " << inst.g.edge_count()
            << ", max degree = " << inst.g.max_degree()
            << ", diameter = " << graph::diameter(inst.g) << "\n";

  const rand::PhiloxCoins coins(seed, rand::Stream::kConstruction);

  if (algorithm == "cv") {
    if (family != "ring") {
      std::cerr << "cv needs the ring family\n";
      return 2;
    }
    // Cole-Vishkin needs the canonical orientation: rebuild consecutive.
    inst = local::make_instance(graph::cycle(actual_n),
                                ident::random_permutation(actual_n, seed));
    const local::EngineResult r =
        algo::run_cole_vishkin(inst, util::floor_log2(actual_n) + 1);
    report("cole-vishkin", r.rounds,
           lang::ProperColoring(3).contains(inst, r.output), inst, r.output);
  } else if (algorithm == "greedy") {
    const local::EngineResult r =
        run_engine(inst, algo::GreedyColoringFactory{});
    report("greedy coloring", r.rounds,
           lang::ProperColoring(static_cast<int>(inst.g.max_degree()) + 1)
               .contains(inst, r.output),
           inst, r.output);
  } else if (algorithm == "luby") {
    const local::EngineResult r = algo::run_luby_mis(inst, coins);
    report("luby mis", r.rounds,
           lang::MaximalIndependentSet{}.contains(inst, r.output), inst,
           r.output);
  } else if (algorithm == "matching") {
    const local::EngineResult r = algo::run_rand_matching(inst, coins);
    report("rand matching", r.rounds,
           lang::MaximalMatching{}.contains(inst, r.output), inst, r.output);
  } else if (algorithm == "rand3") {
    const local::Labeling y = local::run_ball_algorithm(
        inst, algo::UniformRandomColoring(3), coins);
    const std::size_t bad =
        lang::ProperColoring(3).count_bad_balls(inst, y);
    report("uniform random 3-coloring", 0, bad == 0, inst, y);
    std::cout << "  bad balls: " << bad << " of " << actual_n << "\n";
  } else if (algorithm == "mt") {
    const algo::MoserTardosResult r = algo::run_moser_tardos(inst, coins);
    report("moser-tardos", 4 * r.phases,
           r.success && lang::LllAvoidance{}.contains(inst, r.assignment),
           inst, r.assignment);
    std::cout << "  phases: " << r.phases
              << ", resamplings: " << r.total_resamplings << "\n";
  } else {
    usage();
  }
  return 0;
}
