// explore_cli: run any registered (topology, construction) combination
// from the command line and print outputs, round counts, and verification
// verdicts — a small driver for poking at the library without writing
// code. Components resolve from the scenario registry; `lnc_sweep --list`
// prints the full catalogue of valid names.
//
//   usage: explore_cli <topology> <n> <construction> [seed] [language]
//
//   topology     : ring | hard-ring | grid | torus | hypercube | gnp |
//                  random-regular | random-tree | binary-tree | petersen | ...
//   construction : cole-vishkin | greedy-coloring | greedy-mis | luby-mis |
//                  rand-matching | rand-coloring | weak-color-mc |
//                  moser-tardos | select-id-below | ...
//   language     : verification language (defaults to the construction's
//                  natural target, e.g. luby-mis -> mis)
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/metrics.h"
#include "rand/splitmix.h"
#include "scenario/registry.h"
#include "stats/montecarlo.h"

namespace {

using namespace lnc;

[[noreturn]] void usage() {
  std::cerr << "usage: explore_cli <topology> <n> <construction> [seed] "
               "[language]\n       (run `lnc_sweep --list` for the "
               "catalogue of registered names)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string topology = argv[1];
  const auto n = static_cast<std::uint64_t>(std::atoll(argv[2]));
  const std::string construction_name = argv[3];
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const scenario::ConstructionEntry* construction_entry =
      scenario::constructions().find(construction_name);
  if (scenario::topologies().find(topology) == nullptr ||
      construction_entry == nullptr) {
    std::cerr << "unknown component name (run `lnc_sweep --list`)\n";
    return 2;
  }

  std::string language_name;
  if (argc > 5) {
    language_name = argv[5];
  } else if (!construction_entry->default_language.empty()) {
    language_name = construction_entry->default_language;
  } else {
    std::cerr << "no default language for '" << construction_name
              << "'; pass one explicitly\n";
    return 2;
  }
  if (scenario::languages().find(language_name) == nullptr) {
    std::cerr << "unknown language '" << language_name
              << "' (run `lnc_sweep --list`)\n";
    return 2;
  }
  if (construction_entry->ring_only &&
      !scenario::is_canonical_ring(topology)) {
    std::cerr << construction_name
              << " requires the canonical ring topology\n";
    return 2;
  }

  const local::Instance inst =
      scenario::build_instance(topology, n, {}, seed);
  std::cout << "topology " << topology << ": n = " << inst.node_count()
            << ", m = " << inst.g.edge_count()
            << ", max degree = " << inst.g.max_degree()
            << ", diameter = " << graph::diameter(inst.g) << "\n";

  // (Delta+1)-coloring needs an instance-dependent palette.
  scenario::ParamMap language_params;
  if (construction_name == "greedy-coloring") {
    language_params["colors"] =
        static_cast<double>(inst.g.max_degree()) + 1;
  }
  const auto language =
      scenario::make_language(language_name, language_params);
  const auto construction =
      scenario::make_construction(construction_name);

  // One trial with the standard seed derivation, exactly as a sweep's
  // trial 0 would run it.
  local::WorkerArena arena;
  local::TrialEnv env;
  env.index = 0;
  env.seed = stats::trial_seed(seed, 0);
  env.arena = &arena;
  local::Labeling output;
  const auto outcome = construction->run(inst, env, output);
  const bool valid = language->contains(inst, output);

  std::cout << construction->name() << ": rounds = " << outcome.rounds
            << ", in " << language->name() << " = " << (valid ? "yes" : "NO")
            << "\n  output head:";
  const auto head = std::min<graph::NodeId>(12, inst.node_count());
  for (graph::NodeId v = 0; v < head; ++v) std::cout << ' ' << output[v];
  std::cout << "\n";
  return valid ? 0 : 1;
}
