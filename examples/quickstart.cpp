// Quickstart: build a network, run a LOCAL construction algorithm, verify
// the result with a local decider — the library's core loop in ~40 lines,
// with every component resolved by name from the scenario registry.
//
//   $ ./quickstart [n]
//
// Builds the n-node ring with consecutive identities, 3-colors it with
// Cole-Vishkin in O(log* n) rounds, and checks the coloring with the
// 1-round LD decider.
#include <cstdlib>
#include <iostream>

#include "decide/evaluate.h"
#include "scenario/registry.h"
#include "util/logstar.h"

int main(int argc, char** argv) {
  using namespace lnc;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 128;

  // An instance is (G, x, id): here the cycle C_n, no inputs, and the
  // consecutive identity assignment 1..n (the paper's hard case).
  const local::Instance inst = scenario::build_instance("ring", n);

  // Construct: Cole-Vishkin 3-coloring; the engine counts rounds.
  const auto cole_vishkin = scenario::make_construction("cole-vishkin");
  local::WorkerArena arena;
  local::TrialEnv env;
  env.arena = &arena;
  local::Labeling colors;
  const auto run = cole_vishkin->run(inst, env, colors);

  // Decide: the radius-1 LD decider for proper 3-coloring.
  const auto language = scenario::make_language("coloring", {{"colors", 3}});
  const auto decider = scenario::make_decider("lcl", language.get());
  const rand::PhiloxCoins no_coins(0, rand::Stream::kDecision);
  const decide::DecisionOutcome verdict =
      decide::evaluate(inst, colors, *decider, no_coins);

  std::cout << "ring size        : " << n << "\n"
            << "log*(n)          : " << util::log_star(n) << "\n"
            << "rounds used      : " << run.rounds << "\n"
            << "properly colored : " << (verdict.accepted ? "yes" : "no")
            << "\n"
            << "first ten colors : ";
  for (graph::NodeId v = 0; v < std::min<graph::NodeId>(10, n); ++v) {
    std::cout << colors[v] << ' ';
  }
  std::cout << "\n";
  return verdict.accepted ? 0 : 1;
}
