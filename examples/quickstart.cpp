// Quickstart: build a network, run a LOCAL construction algorithm, verify
// the result with a local decider — the library's core loop in ~40 lines.
//
//   $ ./quickstart [n]
//
// Builds the n-node ring with consecutive identities, 3-colors it with
// Cole-Vishkin in O(log* n) rounds, and checks the coloring with the
// 1-round LD decider.
#include <cstdlib>
#include <iostream>

#include "algo/cole_vishkin.h"
#include "decide/evaluate.h"
#include "decide/lcl_decider.h"
#include "graph/generators.h"
#include "lang/coloring.h"
#include "local/instance.h"
#include "util/logstar.h"

int main(int argc, char** argv) {
  using namespace lnc;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 128;

  // An instance is (G, x, id): here the cycle C_n, no inputs, and the
  // consecutive identity assignment 1..n (the paper's hard case).
  const local::Instance inst =
      local::make_instance(graph::cycle(n), ident::consecutive(n));

  // Construct: Cole-Vishkin 3-coloring; the engine counts rounds.
  const local::EngineResult result =
      algo::run_cole_vishkin(inst, util::floor_log2(n) + 1);

  // Decide: the radius-1 LD decider for proper 3-coloring.
  const lang::ProperColoring language(3);
  const decide::LclDecider decider(language);
  const decide::DecisionOutcome verdict =
      decide::evaluate(inst, result.output, decider);

  std::cout << "ring size        : " << n << "\n"
            << "log*(n)          : " << util::log_star(n) << "\n"
            << "rounds used      : " << result.rounds << "\n"
            << "properly colored : " << (verdict.accepted ? "yes" : "no")
            << "\n"
            << "first ten colors : ";
  for (graph::NodeId v = 0; v < std::min<graph::NodeId>(10, n); ++v) {
    std::cout << result.output[v] << ' ';
  }
  std::cout << "\n";
  return verdict.accepted ? 0 : 1;
}
