// SplitMix64: Steele, Lea & Flood's 64-bit mixing function. Used for seed
// derivation and cheap stateless hashing; the statistically strong
// per-(node, round, draw) streams come from Philox (philox.h).
#pragma once

#include <cstdint>

namespace lnc::rand {

/// One application of the SplitMix64 output mix to `z + golden gamma`.
/// Stateless: suitable for hashing structured keys into seeds.
constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Combines two 64-bit values into one seed (order-sensitive).
constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(splitmix64(a) ^ (b + 0x9E3779B97F4A7C15ULL));
}

/// Small stateful generator for non-critical uses (shuffles in generators).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) via Lemire-style multiply-shift with
  /// rejection to remove modulo bias; bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Rejection sampling on the top bits keeps the distribution exact.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace lnc::rand
