#include "rand/philox.h"

namespace lnc::rand {
namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t product =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key) noexcept {
  std::array<std::uint32_t, 4> c = counter;
  std::array<std::uint32_t, 2> k = key;
  for (int round = 0; round < 10; ++round) {
    std::uint32_t hi0, lo0, hi1, lo1;
    mulhilo(kMul0, c[0], hi0, lo0);
    mulhilo(kMul1, c[2], hi1, lo1);
    c = {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
    k[0] += kWeyl0;
    k[1] += kWeyl1;
  }
  return c;
}

std::uint64_t philox_u64(std::uint64_t key, std::uint64_t counter_hi,
                         std::uint64_t counter_lo) noexcept {
  const std::array<std::uint32_t, 4> counter = {
      static_cast<std::uint32_t>(counter_lo),
      static_cast<std::uint32_t>(counter_lo >> 32),
      static_cast<std::uint32_t>(counter_hi),
      static_cast<std::uint32_t>(counter_hi >> 32)};
  const std::array<std::uint32_t, 2> k = {
      static_cast<std::uint32_t>(key),
      static_cast<std::uint32_t>(key >> 32)};
  const std::array<std::uint32_t, 4> out = philox4x32(counter, k);
  return (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
}

}  // namespace lnc::rand
