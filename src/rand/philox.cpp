#include "rand/philox.h"

#include <cstddef>

#if defined(__x86_64__) && defined(__GNUC__)
#define LNC_PHILOX_X86_SIMD 1
#include <immintrin.h>
#endif

namespace lnc::rand {
namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t product =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key) noexcept {
  std::array<std::uint32_t, 4> c = counter;
  std::array<std::uint32_t, 2> k = key;
  for (int round = 0; round < 10; ++round) {
    std::uint32_t hi0, lo0, hi1, lo1;
    mulhilo(kMul0, c[0], hi0, lo0);
    mulhilo(kMul1, c[2], hi1, lo1);
    c = {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
    k[0] += kWeyl0;
    k[1] += kWeyl1;
  }
  return c;
}

std::uint64_t philox_u64(std::uint64_t key, std::uint64_t counter_hi,
                         std::uint64_t counter_lo) noexcept {
  const std::array<std::uint32_t, 4> counter = {
      static_cast<std::uint32_t>(counter_lo),
      static_cast<std::uint32_t>(counter_lo >> 32),
      static_cast<std::uint32_t>(counter_hi),
      static_cast<std::uint32_t>(counter_hi >> 32)};
  const std::array<std::uint32_t, 2> k = {
      static_cast<std::uint32_t>(key),
      static_cast<std::uint32_t>(key >> 32)};
  const std::array<std::uint32_t, 4> out = philox4x32(counter, k);
  return (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
}

namespace {

void philox_u64_batch_portable(std::uint64_t key,
                               const std::uint64_t* counter_hi,
                               const std::uint64_t* counter_lo,
                               std::uint64_t* out,
                               std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = philox_u64(key, counter_hi[i], counter_lo[i]);
  }
}

#ifdef LNC_PHILOX_X86_SIMD

// SIMD lanes carry one 32-bit counter/key word per 64-bit element: the
// value lives in the low half, which is exactly what vpmuludq multiplies,
// and the high half only ever holds garbage on c0/c2 (it is stripped by
// the multiply and the final mask, and c1/c3 are rebuilt clean from the
// product words each round). The Weyl key increments use 32-bit lane adds
// so the key words wrap mod 2^32 like the scalar code's uint32_t adds.
//
// Both kernels produce philox_u64's output bit for bit — asserted against
// the serial path in tests/vector_engine_test.cpp.

__attribute__((target("avx2"))) void philox_u64_batch_avx2(
    std::uint64_t key, const std::uint64_t* counter_hi,
    const std::uint64_t* counter_lo, std::uint64_t* out,
    std::size_t count) noexcept {
  const __m256i mul0 = _mm256_set1_epi64x(kMul0);
  const __m256i mul1 = _mm256_set1_epi64x(kMul1);
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i weyl0 = _mm256_set1_epi64x(kWeyl0);
  const __m256i weyl1 = _mm256_set1_epi64x(kWeyl1);
  const __m256i key0 = _mm256_set1_epi64x(static_cast<std::uint32_t>(key));
  const __m256i key1 =
      _mm256_set1_epi64x(static_cast<std::uint32_t>(key >> 32));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i clo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counter_lo + i));
    const __m256i chi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counter_hi + i));
    __m256i c0 = _mm256_and_si256(clo, mask32);
    __m256i c1 = _mm256_srli_epi64(clo, 32);
    __m256i c2 = _mm256_and_si256(chi, mask32);
    __m256i c3 = _mm256_srli_epi64(chi, 32);
    __m256i k0 = key0;
    __m256i k1 = key1;
    for (int round = 0; round < 10; ++round) {
      const __m256i p0 = _mm256_mul_epu32(mul0, c0);
      const __m256i p1 = _mm256_mul_epu32(mul1, c2);
      const __m256i hi0 = _mm256_srli_epi64(p0, 32);
      const __m256i lo0 = _mm256_and_si256(p0, mask32);
      const __m256i hi1 = _mm256_srli_epi64(p1, 32);
      const __m256i lo1 = _mm256_and_si256(p1, mask32);
      c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
      c1 = lo1;
      c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
      c3 = lo0;
      k0 = _mm256_add_epi32(k0, weyl0);
      k1 = _mm256_add_epi32(k1, weyl1);
    }
    const __m256i word = _mm256_or_si256(_mm256_slli_epi64(c1, 32),
                                         _mm256_and_si256(c0, mask32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), word);
  }
  for (; i < count; ++i) {
    out[i] = philox_u64(key, counter_hi[i], counter_lo[i]);
  }
}

// Two interleaved 8-lane blocks: the 10-round mul chain is latency-bound,
// and a second independent block roughly doubles throughput (~2.5 ns/draw
// vs ~12.7 serial on the machines this was tuned on).
__attribute__((target("avx512f"))) void philox_u64_batch_avx512(
    std::uint64_t key, const std::uint64_t* counter_hi,
    const std::uint64_t* counter_lo, std::uint64_t* out,
    std::size_t count) noexcept {
  const __m512i mul0 = _mm512_set1_epi64(kMul0);
  const __m512i mul1 = _mm512_set1_epi64(kMul1);
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i weyl0 = _mm512_set1_epi64(kWeyl0);
  const __m512i weyl1 = _mm512_set1_epi64(kWeyl1);
  const __m512i key0 = _mm512_set1_epi64(static_cast<std::uint32_t>(key));
  const __m512i key1 = _mm512_set1_epi64(static_cast<std::uint32_t>(key >> 32));
  constexpr int kBlocks = 2;
  std::size_t i = 0;
  for (; i + 8 * kBlocks <= count; i += 8 * kBlocks) {
    __m512i c0[kBlocks], c1[kBlocks], c2[kBlocks], c3[kBlocks];
    for (int b = 0; b < kBlocks; ++b) {
      const __m512i clo = _mm512_loadu_si512(counter_lo + i + 8 * b);
      const __m512i chi = _mm512_loadu_si512(counter_hi + i + 8 * b);
      c0[b] = _mm512_and_si512(clo, mask32);
      c1[b] = _mm512_srli_epi64(clo, 32);
      c2[b] = _mm512_and_si512(chi, mask32);
      c3[b] = _mm512_srli_epi64(chi, 32);
    }
    __m512i k0 = key0;
    __m512i k1 = key1;
    for (int round = 0; round < 10; ++round) {
      for (int b = 0; b < kBlocks; ++b) {
        const __m512i p0 = _mm512_mul_epu32(mul0, c0[b]);
        const __m512i p1 = _mm512_mul_epu32(mul1, c2[b]);
        const __m512i hi0 = _mm512_srli_epi64(p0, 32);
        const __m512i lo0 = _mm512_and_si512(p0, mask32);
        const __m512i hi1 = _mm512_srli_epi64(p1, 32);
        const __m512i lo1 = _mm512_and_si512(p1, mask32);
        c0[b] = _mm512_xor_si512(_mm512_xor_si512(hi1, c1[b]), k0);
        c1[b] = lo1;
        c2[b] = _mm512_xor_si512(_mm512_xor_si512(hi0, c3[b]), k1);
        c3[b] = lo0;
      }
      k0 = _mm512_add_epi32(k0, weyl0);
      k1 = _mm512_add_epi32(k1, weyl1);
    }
    for (int b = 0; b < kBlocks; ++b) {
      const __m512i word = _mm512_or_si512(_mm512_slli_epi64(c1[b], 32),
                                           _mm512_and_si512(c0[b], mask32));
      _mm512_storeu_si512(out + i + 8 * b, word);
    }
  }
  for (; i < count; ++i) {
    out[i] = philox_u64(key, counter_hi[i], counter_lo[i]);
  }
}

#endif  // LNC_PHILOX_X86_SIMD

using BatchFn = void (*)(std::uint64_t, const std::uint64_t*,
                         const std::uint64_t*, std::uint64_t*,
                         std::size_t) noexcept;

BatchFn pick_batch_kernel() noexcept {
#ifdef LNC_PHILOX_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) return philox_u64_batch_avx512;
  if (__builtin_cpu_supports("avx2")) return philox_u64_batch_avx2;
#endif
  return philox_u64_batch_portable;
}

}  // namespace

void philox_u64_batch(std::uint64_t key, const std::uint64_t* counter_hi,
                      const std::uint64_t* counter_lo, std::uint64_t* out,
                      std::size_t count) noexcept {
  static const BatchFn kernel = pick_batch_kernel();
  kernel(key, counter_hi, counter_lo, out, count);
}

}  // namespace lnc::rand
