// Coin sequences for Monte-Carlo LOCAL algorithms.
//
// The paper models a randomized algorithm's randomness as a multi-set of
// private bit-strings indexed by node identity (section 3, "Rand(C)" and
// "Rand(D)"). CoinProvider reifies that object: a draw is addressed by
// (node identity, draw index) and the whole sequence is determined by a
// 64-bit seed and a stream tag separating the construction algorithm C
// from the decision algorithm D running on the same instance.
//
// Fixing a random string sigma  ==  fixing a seed. Replaying the same seed
// on the same identities yields identical coins even when the surrounding
// graph changes — the property the gluing argument of Theorem 1 exploits.
#pragma once

#include <atomic>
#include <cstdint>

#include "rand/philox.h"
#include "rand/splitmix.h"

namespace lnc::rand {

/// Stream tags keep the construction and decision algorithms' coins
/// independent even when run with the same seed on the same instance.
enum class Stream : std::uint64_t {
  kConstruction = 0x433A,  // "C:"
  kDecision = 0x443A,      // "D:"
  kAux = 0x413A,           // "A:" free for tests/experiments
  kFault = 0x463A,         // "F:" adversity draws (fault models)
};

/// Immutable source of coins: a pure function of (identity, draw index).
class CoinProvider {
 public:
  virtual ~CoinProvider() = default;

  /// 64 uniform bits for draw number `draw_index` at the node with the given
  /// identity. Must be a pure function (thread-safe, no state).
  virtual std::uint64_t draw(std::uint64_t identity,
                             std::uint64_t draw_index) const = 0;
};

/// The production provider: Philox4x32-10 keyed by (seed, stream).
class PhiloxCoins final : public CoinProvider {
 public:
  PhiloxCoins(std::uint64_t seed, Stream stream) noexcept
      : key_(mix_keys(seed, static_cast<std::uint64_t>(stream))) {}

  std::uint64_t draw(std::uint64_t identity,
                     std::uint64_t draw_index) const override {
    return philox_u64(key_, identity, draw_index);
  }

  std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_;
};

/// Decorator counting total draws (thread-safe); used by tests asserting
/// that zero-round deciders consume the expected number of coins.
class CountingCoins final : public CoinProvider {
 public:
  explicit CountingCoins(const CoinProvider& inner) noexcept
      : inner_(inner) {}

  std::uint64_t draw(std::uint64_t identity,
                     std::uint64_t draw_index) const override {
    draws_.fetch_add(1, std::memory_order_relaxed);
    return inner_.draw(identity, draw_index);
  }

  std::uint64_t total_draws() const noexcept {
    return draws_.load(std::memory_order_relaxed);
  }

 private:
  const CoinProvider& inner_;
  mutable std::atomic<std::uint64_t> draws_{0};
};

/// Per-node random facade handed to node algorithms: sequential draws from
/// the provider under the node's identity. Not thread-safe per instance;
/// each node in each trial owns its own NodeRng.
class NodeRng {
 public:
  NodeRng(const CoinProvider& provider, std::uint64_t identity) noexcept
      : provider_(&provider), identity_(identity) {}

  std::uint64_t next_u64() { return provider_->draw(identity_, counter_++); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p): true with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::uint64_t draws_used() const noexcept { return counter_; }
  std::uint64_t identity() const noexcept { return identity_; }

 private:
  const CoinProvider* provider_;
  std::uint64_t identity_;
  std::uint64_t counter_ = 0;
};

/// Hash of the full coin prefix a node consumed — a compact fingerprint of
/// the node's private random string, used by the critical-strings
/// experiment (E8) to certify that two executions used identical coins.
std::uint64_t coin_fingerprint(const CoinProvider& provider,
                               std::uint64_t identity,
                               std::uint64_t prefix_length);

}  // namespace lnc::rand
