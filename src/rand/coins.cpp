#include "rand/coins.h"

namespace lnc::rand {

std::uint64_t coin_fingerprint(const CoinProvider& provider,
                               std::uint64_t identity,
                               std::uint64_t prefix_length) {
  std::uint64_t h = 0x6C6E633A636F696EULL;  // "lnc:coin"
  for (std::uint64_t i = 0; i < prefix_length; ++i) {
    h = mix_keys(h, provider.draw(identity, i));
  }
  return h;
}

}  // namespace lnc::rand
