// Philox4x32-10 counter-based pseudorandom function (Salmon et al., SC'11).
// A counter-based generator makes every random draw a pure function of
// (key, counter). liblnc keys streams by (seed, stream tag) and counts by
// (node identity, draw index), so a Monte-Carlo execution is a deterministic
// function of the instance and a 64-bit seed. This is exactly the paper's
// "random bit-string sigma in Rand(C)": fixing sigma == fixing the seed,
// and replaying C_sigma on a node embedded into a different graph yields
// the same coins because the node keeps its identity (Claims 4 and 5).
#pragma once

#include <array>
#include <cstdint>

namespace lnc::rand {

/// One Philox4x32-10 block: 128-bit counter, 64-bit key -> 128 output bits.
std::array<std::uint32_t, 4> philox4x32(
    const std::array<std::uint32_t, 4>& counter,
    const std::array<std::uint32_t, 2>& key) noexcept;

/// Convenience: 64 output bits from 64-bit (key, hi, lo) inputs.
/// hi/lo form the 128-bit counter; key is expanded to the two key words.
std::uint64_t philox_u64(std::uint64_t key, std::uint64_t counter_hi,
                         std::uint64_t counter_lo) noexcept;

/// Bulk philox_u64 under ONE key: out[i] = philox_u64(key, counter_hi[i],
/// counter_lo[i]), bit for bit. Counter-based generation makes every draw
/// a pure function of its inputs, so the lanes are independent and this
/// is free to compute them in any order or width — the implementation
/// dispatches at runtime to an AVX-512 or AVX2 kernel when the CPU has
/// one (4-5x the serial throughput) and otherwise falls back to a plain
/// loop. This is the vector engine's draw-pass primitive: a lockstep
/// trial batch gathers its pending (identity, draw-index) pairs and fills
/// them in one call instead of paying the serial philox latency per node.
void philox_u64_batch(std::uint64_t key, const std::uint64_t* counter_hi,
                      const std::uint64_t* counter_lo, std::uint64_t* out,
                      std::size_t count) noexcept;

}  // namespace lnc::rand
