// Iterated logarithm log*(n): the number of times log2 must be applied to n
// before the result drops to <= 1. This is the complexity scale of Linial's
// ring-coloring lower bound (paper, section 1.1) and of Cole-Vishkin's
// matching upper bound, measured by experiment E3.
#pragma once

#include <cstdint>

namespace lnc::util {

/// Number of times x must be replaced by floor(log2(x)) until x <= 1.
/// log_star(0) == log_star(1) == 0, log_star(2) == 1, log_star(4) == 2,
/// log_star(16) == 3, log_star(65536) == 4.
int log_star(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1; 0 for x == 0.
int floor_log2(std::uint64_t x) noexcept;

/// Smallest n with log_star(n) > s, i.e. the threshold where one more
/// Cole-Vishkin halving round becomes necessary. Saturates at UINT64_MAX.
std::uint64_t log_star_threshold(int s) noexcept;

}  // namespace lnc::util
