#include "util/logstar.h"

#include <limits>

namespace lnc::util {

int floor_log2(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

int log_star(std::uint64_t x) noexcept {
  int iterations = 0;
  while (x > 1) {
    x = static_cast<std::uint64_t>(floor_log2(x));
    ++iterations;
  }
  return iterations;
}

std::uint64_t log_star_threshold(int s) noexcept {
  // The smallest n with log_star(n) == s+1 is obtained by iterated
  // exponentiation: t(0) = 2, t(i+1) = 2^t(i); threshold(s) = t(s).
  // log_star(2) = 1, log_star(4) = 2, log_star(16) = 3, log_star(65536) = 4.
  std::uint64_t v = 2;
  for (int i = 0; i < s; ++i) {
    if (v >= 64) return std::numeric_limits<std::uint64_t>::max();
    v = std::uint64_t{1} << v;
  }
  return v;
}

}  // namespace lnc::util
