#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.h"
#include "util/string_util.h"

namespace lnc::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LNC_EXPECTS(!headers_.empty());
}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add_cell(std::string value) {
  LNC_EXPECTS(!rows_.empty());
  LNC_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

Table& Table::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(std::int64_t value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(int value) { return add_cell(std::to_string(value)); }

Table& Table::add_row(std::vector<std::string> cells) {
  LNC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  if (row >= rows_.size() || col >= rows_[row].size()) {
    throw std::out_of_range("Table::at out of range");
  }
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = cells[c];
      if (cell.find(',') != std::string::npos ||
          cell.find('"') != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_json(std::ostream& os,
                       const std::string& extra_members) const {
  auto emit_string = [&](const std::string& s) {
    os << '"' << json_escape(s) << '"';
  };
  auto emit_array = [&](const std::vector<std::string>& cells) {
    os << '[';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ", ";
      emit_string(cells[c]);
    }
    os << ']';
  };
  os << "{\"headers\": ";
  emit_array(headers_);
  os << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ", ";
    emit_array(rows_[r]);
  }
  os << "]";
  if (!extra_members.empty()) os << ", " << extra_members;
  os << "}\n";
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace lnc::util
