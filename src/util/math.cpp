#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lnc::util {

double golden_ratio_guarantee() noexcept { return (std::sqrt(5.0) - 1.0) / 2.0; }

double amos_guarantee(double p) noexcept {
  return std::min(p, 1.0 - p * p);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

std::uint64_t saturating_pow(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < exp; ++i) {
    if (base != 0 &&
        result > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result *= base;
  }
  return result;
}

bool approx_equal(double a, double b, double tol) noexcept {
  return std::fabs(a - b) <= tol;
}

}  // namespace lnc::util
