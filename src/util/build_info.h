// Build / epoch identity for cache versioning and diagnostics.
//
// Two facts let a cached result be trusted or distrusted at a glance:
//
//  * The SEED-STREAM EPOCH: a hand-bumped integer that changes whenever
//    the mapping (base_seed, trial index) -> Philox stream changes —
//    i.e. whenever old tallies can no longer be merged bit-identically
//    with new ones. It is baked into every cache key, so an epoch bump
//    silently invalidates the whole store instead of corrupting it.
//
//  * The BINARY REV: the git revision the binary was built from, where
//    available ("unknown" otherwise). Recorded in result files and
//    cache entries for diagnosis only — two revs at the same epoch are
//    bit-compatible by contract, so the rev is deliberately NOT hashed
//    into cache keys.
#pragma once

#include <cstdint>
#include <string>

namespace lnc::util {

/// Bump when the per-trial seed derivation (stats::trial_seed, the seed
/// tags in local/batch_runner.h, or the Philox core) changes
/// incompatibly. Old cache entries then miss instead of merging wrong.
inline constexpr std::uint64_t kSeedStreamEpoch = 1;

/// The epoch as a runtime value (same as kSeedStreamEpoch; exists so
/// call sites read uniformly next to build_rev()).
std::uint64_t seed_stream_epoch();

/// Short git revision baked in at configure time via LNC_BUILD_REV,
/// or "unknown" when the build tree had no git metadata.
std::string build_rev();

/// One-line identity for --help / --version output, e.g.
/// "seed-stream epoch 1, build rev a1b2c3d".
std::string build_identity();

}  // namespace lnc::util
