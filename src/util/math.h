// Small numeric helpers shared by the deciders, the boosting-parameter
// formulas of Theorem 1, and the Monte-Carlo estimators.
#pragma once

#include <cstdint>
#include <utility>

namespace lnc::util {

/// Golden-ratio decider guarantee from the paper's amos example
/// (section 2.3.1): p* = (sqrt(5)-1)/2, the unique p with p = 1 - p^2.
double golden_ratio_guarantee() noexcept;

/// min(p, 1 - p^2): the guarantee achieved by the amos decider when every
/// selected node accepts with probability p. Maximized at p*.
double amos_guarantee(double p) noexcept;

/// Wilson score interval for a binomial proportion: given `successes` out of
/// `trials`, returns [lo, hi] such that the true probability lies inside
/// with approximately `z`-sigma confidence (z = 1.96 ~ 95%).
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96) noexcept;

/// Integer power with saturation at UINT64_MAX.
std::uint64_t saturating_pow(std::uint64_t base, std::uint64_t exp) noexcept;

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// True when |a - b| <= tol.
bool approx_equal(double a, double b, double tol = 1e-9) noexcept;

}  // namespace lnc::util
