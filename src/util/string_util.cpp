#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace lnc::util {

std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept {
  if (text.empty() || text.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_finite_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string owned(text);  // strtod needs a terminator
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<double> parse_nonnegative_double(std::string_view text) {
  const std::optional<double> value = parse_finite_double(text);
  if (!value || *value < 0) return std::nullopt;
  return value;
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string json_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      // Named escapes for the remaining common controls — the project's
      // own parser (scenario/spec_json.cpp) reads these back, so escaped
      // text survives the freeze/reload round trips (spec and manifest
      // files) that \u00XX would break.
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const auto code = static_cast<unsigned char>(ch);
          out += "\\u00";
          out.push_back(kHex[code >> 4]);
          out.push_back(kHex[code & 0xF]);
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace lnc::util
