#include "util/string_util.h"

#include <cctype>

namespace lnc::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace lnc::util
