#include "util/string_util.h"

#include <cctype>

namespace lnc::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string json_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const auto code = static_cast<unsigned char>(ch);
          out += "\\u00";
          out.push_back(kHex[code >> 4]);
          out.push_back(kHex[code & 0xF]);
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace lnc::util
