// String helpers used by graph IO and table emission.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lnc::util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by util::Table::print_json and
/// the scenario sweep emitters.
std::string json_escape(std::string_view text);

}  // namespace lnc::util
