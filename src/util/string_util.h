// String helpers used by graph IO and table emission.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lnc::util {

/// Strict non-negative integer parse: digits only, no sign, no trailing
/// garbage, no overflow. Nullopt otherwise — std::stoul would accept
/// "-1" and wrap it to ULONG_MAX, which is how a typo'd flag becomes a
/// 4-billion-shard request (the CLIs' numeric flags all route through
/// this).
std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept;

/// Strict finite double parse: any sign, but the whole string must be
/// consumed and the value finite. Nullopt otherwise ("0.5x" must not
/// silently become 0.5).
std::optional<double> parse_finite_double(std::string_view text);

/// parse_finite_double restricted to values >= 0 ("5m"/"-5" are not
/// timeouts).
std::optional<double> parse_nonnegative_double(std::string_view text);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by util::Table::print_json and
/// the scenario sweep emitters.
std::string json_escape(std::string_view text);

}  // namespace lnc::util
