// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations abort with a source location;
// checks stay on in release builds because the library is the measuring
// instrument for the experiments — silent corruption would invalidate data.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lnc::util {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "lnc: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace lnc::util

#define LNC_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::lnc::util::contract_violation("precondition", #cond,         \
                                            __FILE__, __LINE__))

#define LNC_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::lnc::util::contract_violation("postcondition", #cond,        \
                                            __FILE__, __LINE__))

#define LNC_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::lnc::util::contract_violation("invariant", #cond, __FILE__,  \
                                            __LINE__))
