#include "util/file_util.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace lnc::util {

namespace {

// Last path component's parent, for "did you forget to mkdir?" hints.
// "shard.json" -> "." so the stat below still answers sensibly.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool is_directory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

// errno -> human-readable suffix. Captured eagerly by callers because
// any later syscall (remove of the tmp file, stat for diagnostics)
// clobbers errno.
std::string errno_detail(int err) {
  if (err == 0) return {};
  std::string detail = ": ";
  detail += std::strerror(err);
  if (err == ENOSPC || err == EDQUOT)
    detail += " (disk full or quota exceeded — partial write discarded)";
  return detail;
}

}  // namespace

std::string write_file_atomic(const std::string& path,
                              const std::string& contents) {
  // The two failures users actually hit are a missing output directory
  // and a target that is itself a directory. Both produce useless
  // "cannot write" messages from the stream layer, so name them first.
  const std::string parent = parent_dir(path);
  if (!path_exists(parent))
    return "cannot write '" + path + "': parent directory '" + parent +
           "' does not exist";
  if (!is_directory(parent))
    return "cannot write '" + path + "': parent path '" + parent +
           "' is not a directory";
  if (is_directory(path))
    return "cannot write '" + path + "': path is a directory";

  // Unique per process AND per call: concurrent writers (two supervisor
  // threads, or a straggler process surviving its kill on a shared
  // filesystem) each write their own tmp file, and the LAST rename wins
  // whole — never a torn mix.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    errno = 0;
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (out) {
      out.write(contents.data(),
                static_cast<std::streamsize>(contents.size()));
      // Close EXPLICITLY and re-check: NFS, ENOSPC and quota errors can
      // surface only at close, and the destructor would swallow them —
      // renaming after a silently short write would break the
      // all-or-nothing contract.
      out.close();
    }
    if (!out) {
      const int err = errno;
      std::remove(tmp.c_str());
      return "cannot write '" + path + "'" + errno_detail(err);
    }
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return "cannot move '" + tmp + "' into place at '" + path + "'" +
           errno_detail(err);
  }
  return {};
}

std::string read_file(const std::string& path, std::string& contents) {
  if (is_directory(path))
    return "cannot read '" + path + "': path is a directory";
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const int err = errno;
    if (err == ENOENT || !path_exists(path))
      return "cannot read '" + path + "': no such file";
    return "cannot read '" + path + "'" + errno_detail(err);
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    const int err = errno;
    return "read of '" + path + "' failed" + errno_detail(err);
  }
  contents = text.str();
  return {};
}

}  // namespace lnc::util
