#include "util/file_util.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lnc::util {

std::string write_file_atomic(const std::string& path,
                              const std::string& contents) {
  // Unique per process AND per call: concurrent writers (two supervisor
  // threads, or a straggler process surviving its kill on a shared
  // filesystem) each write their own tmp file, and the LAST rename wins
  // whole — never a torn mix.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (out) {
      out.write(contents.data(),
                static_cast<std::streamsize>(contents.size()));
      // Close EXPLICITLY and re-check: NFS and quota errors can surface
      // only at close, and the destructor would swallow them — renaming
      // after a silently short write would break the all-or-nothing
      // contract.
      out.close();
    }
    if (!out) {
      std::remove(tmp.c_str());
      return "cannot write '" + path + "'";
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "cannot move '" + tmp + "' into place at '" + path + "'";
  }
  return {};
}

std::string read_file(const std::string& path, std::string& contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot read '" + path + "'";
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) return "read of '" + path + "' failed";
  contents = text.str();
  return {};
}

}  // namespace lnc::util
