// Aligned console tables with optional CSV emission. The E-series benchmark
// binaries print the paper's reproduced "tables and figures" through this
// formatter so that bench output is diffable and machine-readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lnc::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering pads columns to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls append to it.
  Table& new_row();

  Table& add_cell(std::string value);
  Table& add_cell(double value, int precision = 4);
  Table& add_cell(std::uint64_t value);
  Table& add_cell(std::int64_t value);
  Table& add_cell(int value);

  /// Convenience: append a full row at once.
  Table& add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return headers_.size(); }

  /// Cell accessor (row, col); throws std::out_of_range when out of bounds.
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Renders with space padding and a header separator line.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  /// Renders as JSON: {"headers": [...], "rows": [[...], ...]} — the
  /// machine-readable form the bench binaries export per PR so table
  /// trajectories can be diffed and plotted. `extra_members`, when
  /// non-empty, is a raw JSON fragment (e.g. "\"telemetry\": {...}")
  /// appended as additional top-level members.
  void print_json(std::ostream& os,
                  const std::string& extra_members = {}) const;

  /// Renders to a string via print().
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero stripping).
std::string format_double(double value, int precision);

}  // namespace lnc::util
