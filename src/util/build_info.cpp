#include "util/build_info.h"

namespace lnc::util {

std::uint64_t seed_stream_epoch() { return kSeedStreamEpoch; }

std::string build_rev() {
#ifdef LNC_BUILD_REV
  return LNC_BUILD_REV;
#else
  return "unknown";
#endif
}

std::string build_identity() {
  return "seed-stream epoch " + std::to_string(seed_stream_epoch()) +
         ", build rev " + build_rev();
}

}  // namespace lnc::util
