// Wall-clock timer for the engine-scaling experiment (E12) and example
// programs. Benchmarks proper use google-benchmark; this is for coarse
// reporting only.
#pragma once

#include <chrono>

namespace lnc::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lnc::util
