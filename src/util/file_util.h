// Whole-file read/write — the primitives behind every persistent
// artifact of a distributed run (spec freeze, manifest, shard results,
// merged output). Writes are atomic: a reader, a resumed coordinator, or
// a straggler racing a re-run can observe the complete old bytes or the
// complete new bytes, never a torn file.
#pragma once

#include <string>

namespace lnc::util {

/// Writes `contents` to `path` via a UNIQUE tmp file + rename (unique per
/// process and call, so two surviving writers racing on a shared
/// filesystem cannot truncate each other's tmp mid-write). Returns an
/// empty string on success, else a human-readable error; on failure the
/// tmp file is cleaned up and `path` is untouched.
std::string write_file_atomic(const std::string& path,
                              const std::string& contents);

/// Reads the whole file into `contents`. Returns an empty string on
/// success, else a human-readable error naming the path.
std::string read_file(const std::string& path, std::string& contents);

}  // namespace lnc::util
