// Fault models: the adversity axis (ROADMAP) for resilience sweeps.
//
// The paper's executions assume perfectly reliable synchronous delivery;
// the randomized-network-coding literature (PAPERS.md, Chen & Kishore)
// studies the same protocols coordinating over links that are NOT
// reliable. A FaultModel is a pure, replayable adversary: every fault it
// realizes — a message lost, a node crash-stopped, an edge down for one
// round — is a deterministic function of a dedicated Philox coin stream
// (TrialEnv::fault_coins(), Stream::kFault) and the identities involved,
// never of execution order. That keeps faulty runs bit-identical across
// thread counts, shard partitions, and --trial-range slices — the same
// contract every other layer of the stack already guarantees.
//
// Two execution paths consume a model differently:
//
//  * the MESSAGE ENGINE (local/engine.cpp) resolves faults round by
//    round: crash_round() silences a node from its crash round onward,
//    drops_delivery() / edge_down() suppress individual deliveries.
//    Engine rounds are 1-based, so round index 0 is never drawn there;
//  * the BALL PATH (ball collection + decider evaluation) has no rounds.
//    It realizes a per-trial FAULT SUBGRAPH from the reserved round-0
//    slots: ball_node_failed() erases crashed nodes, ball_edge_fault()
//    erases faulty edges, and BallCensor adapts both to graph::BallFilter
//    so collection happens inside the realized subgraph. The predicates
//    are pure and hop-free, so censored collection stays well-defined and
//    reusable; telemetry is charged once per trial by a separate sweep
//    (local/experiment.cpp), never by the predicates themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "graph/ball.h"
#include "rand/coins.h"

namespace lnc::fault {

/// Sentinel crash round: the node never crashes.
inline constexpr std::uint64_t kNeverCrashes = ~std::uint64_t{0};

/// What the realized fault subgraph says about an edge (ball path).
enum class EdgeFault {
  kNone,     ///< edge intact
  kDropped,  ///< delivery over the edge lost (charges messages_dropped)
  kChurned,  ///< edge deactivated (charges edges_churned)
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  virtual std::string_view name() const noexcept = 0;

  /// True only for the `none` model: a trivial model must realize no
  /// faults, and the harness bypasses the fault machinery entirely (the
  /// bit-stability contract with pre-fault runs depends on it).
  virtual bool trivial() const noexcept { return false; }

  /// First 1-based round at which the node with this identity is crashed
  /// (silent from that round onward), or kNeverCrashes.
  virtual std::uint64_t crash_round(
      const rand::CoinProvider& coins, std::uint64_t identity) const {
    (void)coins;
    (void)identity;
    return kNeverCrashes;
  }

  /// Whether the delivery sender -> receiver in 1-based round `round` is
  /// lost. Directed: the two directions of an edge drop independently.
  virtual bool drops_delivery(const rand::CoinProvider& coins,
                              std::uint64_t sender, std::uint64_t receiver,
                              std::uint64_t round) const {
    (void)coins;
    (void)sender;
    (void)receiver;
    (void)round;
    return false;
  }

  /// Whether the undirected edge {a, b} is down for the whole 1-based
  /// round `round` (both directions suppressed). Symmetric in a, b.
  virtual bool edge_down(const rand::CoinProvider& coins, std::uint64_t id_a,
                         std::uint64_t id_b, std::uint64_t round) const {
    (void)coins;
    (void)id_a;
    (void)id_b;
    (void)round;
    return false;
  }

  /// Ball path: whether this node is failed in the trial's realized fault
  /// subgraph. Default: crashed at any round == failed — every node the
  /// engine would eventually silence is censored from balls, a consistent
  /// superset ("crashed between phases") that keeps the two paths' crash
  /// draws shared.
  virtual bool ball_node_failed(const rand::CoinProvider& coins,
                                std::uint64_t identity) const {
    return crash_round(coins, identity) != kNeverCrashes;
  }

  /// Ball path: the realized state of undirected edge {a, b}. Symmetric
  /// in a, b; models draw from the reserved round-0 slots so the engine
  /// rounds (>= 1) never collide.
  virtual EdgeFault ball_edge_fault(const rand::CoinProvider& coins,
                                    std::uint64_t id_a,
                                    std::uint64_t id_b) const {
    (void)coins;
    (void)id_a;
    (void)id_b;
    return EdgeFault::kNone;
  }
};

/// The four builtins behind the `faults` registry (scenario/builtins.cpp
/// owns the registry entries and param schemas; these are the models).
std::shared_ptr<const FaultModel> make_none();
std::shared_ptr<const FaultModel> make_drop(double p_loss);
std::shared_ptr<const FaultModel> make_crash(double p_crash,
                                             std::uint64_t crash_round_cap);
std::shared_ptr<const FaultModel> make_churn(double p_churn);

/// Adapts a FaultModel + the trial's fault coins to graph::BallFilter, so
/// ball collection happens inside the trial's realized fault subgraph.
/// `identity` maps an original graph index to the node identity the model
/// keys its draws by (the same identities the engine path uses, so both
/// paths censor the same nodes). Pure; safe to query repeatedly.
class BallCensor final : public graph::BallFilter {
 public:
  using IdentityFn = std::function<std::uint64_t(graph::NodeId)>;

  BallCensor(const FaultModel& model, const rand::CoinProvider& coins,
             IdentityFn identity)
      : model_(&model), coins_(&coins), identity_(std::move(identity)) {}

  bool node_blocked(graph::NodeId v) const override {
    return model_->ball_node_failed(*coins_, identity_(v));
  }

  bool edge_blocked(graph::NodeId a, graph::NodeId b) const override {
    return model_->ball_edge_fault(*coins_, identity_(a), identity_(b)) !=
           EdgeFault::kNone;
  }

 private:
  const FaultModel* model_;
  const rand::CoinProvider* coins_;
  IdentityFn identity_;
};

}  // namespace lnc::fault
