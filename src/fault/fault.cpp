#include "fault/fault.h"

#include <algorithm>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::fault {
namespace {

// Sub-stream tags: every draw a model makes goes through the ONE fault
// CoinProvider, addressed as draw(mix_keys(tag, entity-key), slot). The
// tags keep the crash / drop / churn address spaces disjoint even when a
// spec's identities collide with each other numerically.
constexpr std::uint64_t kCrashTag = 0xFA0C;  // per-node crash draws
constexpr std::uint64_t kDropTag = 0xFA0D;   // per-(delivery, round) draws
constexpr std::uint64_t kChurnTag = 0xFA0E;  // per-(edge, round) draws

/// p as a 64-bit acceptance threshold: draw < threshold(p) happens with
/// probability p (to within 2^-64). Short-circuits keep p = 0 exactly
/// never and p = 1 exactly always, independent of rounding.
bool bernoulli(double p, std::uint64_t draw) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double scaled = p * 0x1.0p64;
  if (scaled >= 0x1.0p64) return true;
  return draw < static_cast<std::uint64_t>(scaled);
}

/// Order-free key for the undirected edge {a, b}.
std::uint64_t edge_key(std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  return rand::mix_keys(tag, rand::mix_keys(std::min(a, b), std::max(a, b)));
}

class NoneModel final : public FaultModel {
 public:
  std::string_view name() const noexcept override { return "none"; }
  bool trivial() const noexcept override { return true; }
};

class DropModel final : public FaultModel {
 public:
  explicit DropModel(double p_loss) : p_loss_(p_loss) {}

  std::string_view name() const noexcept override { return "drop"; }

  bool drops_delivery(const rand::CoinProvider& coins, std::uint64_t sender,
                      std::uint64_t receiver,
                      std::uint64_t round) const override {
    // Directed key: the two deliveries across one edge are independent.
    const std::uint64_t key =
        rand::mix_keys(kDropTag, rand::mix_keys(sender, receiver));
    return bernoulli(p_loss_, coins.draw(key, round));
  }

  EdgeFault ball_edge_fault(const rand::CoinProvider& coins,
                            std::uint64_t id_a,
                            std::uint64_t id_b) const override {
    // Round-free path: ONE symmetric draw per edge per trial from the
    // reserved round-0 slot (the engine only draws rounds >= 1). The
    // view delivered over a lossy edge is either lost or not; the two
    // directions collapsing into one draw is the model, not a shortcut.
    const std::uint64_t key = edge_key(kDropTag, id_a, id_b);
    return bernoulli(p_loss_, coins.draw(key, 0)) ? EdgeFault::kDropped
                                                  : EdgeFault::kNone;
  }

 private:
  double p_loss_;
};

class CrashModel final : public FaultModel {
 public:
  CrashModel(double p_crash, std::uint64_t crash_round_cap)
      : p_crash_(p_crash), cap_(crash_round_cap) {
    LNC_EXPECTS(cap_ >= 1);
  }

  std::string_view name() const noexcept override { return "crash"; }

  std::uint64_t crash_round(const rand::CoinProvider& coins,
                            std::uint64_t identity) const override {
    const std::uint64_t key = rand::mix_keys(kCrashTag, identity);
    if (!bernoulli(p_crash_, coins.draw(key, 0))) return kNeverCrashes;
    // Crash round uniform-ish in [1, cap] (draw 1; modulo bias is
    // irrelevant to the model, determinism is what matters).
    return 1 + coins.draw(key, 1) % cap_;
  }

 private:
  double p_crash_;
  std::uint64_t cap_;
};

class ChurnModel final : public FaultModel {
 public:
  explicit ChurnModel(double p_churn) : p_churn_(p_churn) {}

  std::string_view name() const noexcept override { return "churn"; }

  bool edge_down(const rand::CoinProvider& coins, std::uint64_t id_a,
                 std::uint64_t id_b, std::uint64_t round) const override {
    return bernoulli(p_churn_, coins.draw(edge_key(kChurnTag, id_a, id_b),
                                          round));
  }

  EdgeFault ball_edge_fault(const rand::CoinProvider& coins,
                            std::uint64_t id_a,
                            std::uint64_t id_b) const override {
    // Reserved round-0 slot, same stream as the engine's per-round draws.
    return edge_down(coins, id_a, id_b, 0) ? EdgeFault::kChurned
                                           : EdgeFault::kNone;
  }

 private:
  double p_churn_;
};

}  // namespace

std::shared_ptr<const FaultModel> make_none() {
  return std::make_shared<const NoneModel>();
}

std::shared_ptr<const FaultModel> make_drop(double p_loss) {
  return std::make_shared<const DropModel>(p_loss);
}

std::shared_ptr<const FaultModel> make_crash(double p_crash,
                                             std::uint64_t crash_round_cap) {
  return std::make_shared<const CrashModel>(p_crash, crash_round_cap);
}

std::shared_ptr<const FaultModel> make_churn(double p_churn) {
  return std::make_shared<const ChurnModel>(p_churn);
}

}  // namespace lnc::fault
