// Lightweight hierarchical tracing: RAII spans recorded into per-thread
// buffers and emitted as Chrome trace-event JSON ("traceEvents" complete
// events), loadable in Perfetto / chrome://tracing.
//
// Design contract, shared by the whole obs layer:
//  - Observability is TIMING-ONLY. Nothing recorded here may feed back
//    into tallies, deterministic telemetry counters, or cache keys; a run
//    with tracing on is bit-identical (on the deterministic fields) to a
//    run with tracing off.
//  - Near-zero overhead when disabled: constructing a Span while the
//    recorder is off is a single relaxed atomic load and nothing else.
//  - Lock-free per worker when enabled: each thread appends to its own
//    buffer; the process-wide registry lock is taken only on a thread's
//    FIRST event (buffer registration) and when serializing.
//
// Serialization (to_json / write_file) must not race with recording:
// call it after worker threads have been joined, as lnc_sweep and
// lnc_launch do at process exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lnc::obs {

/// Microseconds since the process trace epoch (steady clock; first use
/// pins the epoch). All span timestamps share this basis.
std::uint64_t now_micros() noexcept;

class TraceRecorder {
 public:
  /// Per-thread event cap; beyond it events are counted as dropped
  /// instead of recorded, bounding trace memory on giga-trial runs.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 18;

  static TraceRecorder& instance();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a completed span. `name` must have static storage duration
  /// (it is kept by pointer). `args_json` is either empty or a JSON
  /// object body (e.g. "\"n\": 4096") spliced into the event's "args".
  void record(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
              std::string args_json = {});

  /// Chrome trace-event JSON: {"traceEvents": [...]} with events sorted
  /// by start timestamp (stable across thread interleavings up to the
  /// recorded times themselves).
  std::string to_json() const;

  /// Atomically writes to_json() to `path`. Returns false and fills
  /// `*error` on failure.
  bool write_file(const std::string& path, std::string* error) const;

  std::size_t event_count() const;
  std::size_t dropped_count() const;

  /// Clears recorded events (buffers stay registered so thread-local
  /// pointers remain valid). Test helper; not used on the hot path.
  void clear();

 private:
  struct Event {
    const char* name;
    std::uint64_t start_us;
    std::uint64_t dur_us;
    std::string args_json;
  };
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
  };

  TraceRecorder() = default;
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_guard_;  // guards buffers_ (the vector only)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Helpers building one-key "args" bodies for Span: `span_args("n", 4096)`
/// yields `"n": 4096`; string values are JSON-escaped.
std::string span_args(const char* key, const std::string& value);
std::string span_args(const char* key, std::uint64_t value);

/// RAII span: captures the start time at construction, records on
/// destruction. When the recorder is disabled at construction the span is
/// inert (destruction does nothing), so a toggle mid-span records nothing
/// partial.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : Span(name, std::string()) {}
  Span(const char* name, std::string args_json) noexcept
      : name_(name), armed_(TraceRecorder::instance().enabled()) {
    if (armed_) {
      args_json_ = std::move(args_json);
      start_us_ = now_micros();
    }
  }
  ~Span() {
    if (armed_) {
      const std::uint64_t end = now_micros();
      TraceRecorder::instance().record(name_, start_us_, end - start_us_,
                                       std::move(args_json_));
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::string args_json_;
  std::uint64_t start_us_ = 0;
  bool armed_;
};

}  // namespace lnc::obs
