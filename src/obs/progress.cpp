#include "obs/progress.h"

#include <cstdio>

#include "obs/trace.h"

namespace lnc::obs {
namespace {

std::atomic<Progress*> g_node_progress{nullptr};

std::string format_compact(double value) {
  char buf[32];
  if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  }
  return buf;
}

}  // namespace

Progress::Progress(std::string label, std::uint64_t total, std::string unit,
                   std::ostream* out, double min_interval_seconds)
    : label_(std::move(label)),
      unit_(std::move(unit)),
      total_(total),
      out_(out),
      min_interval_us_(
          static_cast<std::uint64_t>(min_interval_seconds * 1e6)),
      start_us_(now_micros()),
      last_print_us_(start_us_),
      window_us_(start_us_) {}

Progress::~Progress() { finish(); }

void Progress::tick(std::uint64_t delta) {
  done_.fetch_add(delta, std::memory_order_relaxed);
  const std::uint64_t now = now_micros();
  std::uint64_t last = last_print_us_.load(std::memory_order_relaxed);
  if (now - last < min_interval_us_) return;
  // One thread wins the interval; the rest return without blocking on
  // the print lock.
  if (!last_print_us_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  print_line(/*final=*/false);
}

void Progress::finish() {
  std::lock_guard<std::mutex> guard(print_guard_);
  if (finished_) return;
  finished_ = true;
  if (done_.load(std::memory_order_relaxed) == 0 && total_ == 0) return;
  if (out_ == nullptr) return;
  std::ostream& os = *out_;
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t now = now_micros();
  const double elapsed = static_cast<double>(now - start_us_) * 1e-6;
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                    : 0.0;
  os << "progress[" << label_ << "]: " << done;
  if (total_ > 0) os << "/" << total_ << " " << unit_ << " 100.0%";
  else os << " " << unit_;
  os << " " << format_compact(rate) << " " << unit_ << "/s done in "
     << format_compact(elapsed) << "s\n";
  os.flush();
}

void Progress::print_line(bool) {
  std::lock_guard<std::mutex> guard(print_guard_);
  if (finished_ || out_ == nullptr) return;
  std::ostream& os = *out_;
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t now = now_micros();
  // Instantaneous throughput over the window since the last heartbeat;
  // ETA from the overall average, which is steadier.
  const double window_seconds =
      static_cast<double>(now - window_us_) * 1e-6;
  const double window_rate =
      window_seconds > 0.0
          ? static_cast<double>(done - window_done_) / window_seconds
          : 0.0;
  const double elapsed = static_cast<double>(now - start_us_) * 1e-6;
  const double average_rate =
      elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  window_done_ = done;
  window_us_ = now;
  os << "progress[" << label_ << "]: " << done;
  if (total_ > 0) {
    const double percent =
        100.0 * static_cast<double>(done) / static_cast<double>(total_);
    os << "/" << total_ << " " << unit_ << " " << format_compact(percent)
       << "%";
  } else {
    os << " " << unit_;
  }
  os << " " << format_compact(window_rate) << " " << unit_ << "/s";
  if (total_ > done && average_rate > 0.0) {
    const double eta =
        static_cast<double>(total_ - done) / average_rate;
    os << " eta " << format_compact(eta) << "s";
  }
  os << "\n";
  os.flush();
}

void install_node_progress(Progress* progress) noexcept {
  g_node_progress.store(progress, std::memory_order_release);
}

void node_progress_tick(std::uint64_t delta) noexcept {
  Progress* progress = g_node_progress.load(std::memory_order_acquire);
  if (progress != nullptr) progress->tick(delta);
}

}  // namespace lnc::obs
