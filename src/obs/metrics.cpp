#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <initializer_list>
#include <sstream>
#include <stdexcept>

#include "scenario/spec_json.h"

namespace lnc::obs {
namespace {

/// Full round-trip precision, matching the sweep JSON convention.
std::string format_double(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

void warn_unknown_keys(const scenario::Json& json,
                       std::initializer_list<const char*> known,
                       const std::string& where,
                       std::vector<std::string>* warnings) {
  if (warnings == nullptr) return;
  for (const auto& [key, value] : json.as_object()) {
    bool found = false;
    for (const char* candidate : known) {
      if (key == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      warnings->push_back(where + ": unknown key '" + key + "' ignored");
    }
  }
}

std::atomic<bool> g_metrics_enabled{false};
thread_local MetricsRegistry* tl_worker_metrics = nullptr;

}  // namespace

int Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // nonpositive, and NaN via the negation
  if (std::isinf(value)) return kBucketCount - 1;
  const int exponent = std::ilogb(value);
  if (exponent < kMinExponent) return 1;
  if (exponent > kMaxExponent) return kBucketCount - 1;
  return 2 + (exponent - kMinExponent);
}

double Histogram::bucket_lower_bound(int index) noexcept {
  if (index <= 0) return -std::numeric_limits<double>::infinity();
  if (index == 1) return 0.0;
  return std::ldexp(1.0, index - 2 + kMinExponent);
}

void Histogram::observe(double value) noexcept {
  ++count_;
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (!std::isfinite(value)) return;  // ExactSum requires finite input
  sum_.add(value);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) noexcept {
  sum_.merge(other.sum_);
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\": " + std::to_string(count_);
  out += ", \"sum\": " + format_double(sum_.value());
  out += ", \"exact_sum\": \"" + sum_.to_hex() + "\"";
  if (std::isfinite(min_)) out += ", \"min\": " + format_double(min_);
  if (std::isfinite(max_)) out += ", \"max\": " + format_double(max_);
  out += ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(i) + ", " + std::to_string(n) + "]";
  }
  out += "]}";
  return out;
}

Histogram Histogram::from_json(const scenario::Json& json,
                               const std::string& where,
                               std::vector<std::string>* warnings) {
  warn_unknown_keys(json,
                    {"count", "sum", "exact_sum", "min", "max", "buckets"},
                    where, warnings);
  Histogram h;
  if (json.has("count")) h.count_ = json.at("count").as_uint64();
  // "sum" is presentational (the rounded double); the exact accumulator
  // is authoritative for merging.
  if (json.has("exact_sum")) {
    h.sum_ = stats::ExactSum::from_hex(json.at("exact_sum").as_string());
  }
  if (json.has("min")) h.min_ = json.at("min").as_number();
  if (json.has("max")) h.max_ = json.at("max").as_number();
  if (json.has("buckets")) {
    for (const scenario::Json& pair : json.at("buckets").as_array()) {
      const auto& cells = pair.as_array();
      if (cells.size() != 2) {
        throw std::runtime_error(where +
                                 ": histogram bucket entries must be "
                                 "[index, count] pairs");
      }
      const std::uint64_t index = cells[0].as_uint64();
      if (index >= static_cast<std::uint64_t>(kBucketCount)) {
        throw std::runtime_error(where + ": histogram bucket index " +
                                 std::to_string(index) + " out of range");
      }
      h.buckets_[static_cast<std::size_t>(index)] = cells[1].as_uint64();
    }
  }
  return h;
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histograms_[name].observe(value);
}

bool MetricsRegistry::empty() const noexcept {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first_section = true;
  auto open_section = [&](const char* name) {
    if (!first_section) out += ", ";
    first_section = false;
    out += "\"";
    out += name;
    out += "\": {";
  };
  if (!counters_.empty()) {
    open_section("counters");
    bool first = true;
    for (const auto& [name, value] : counters_) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + std::to_string(value);
    }
    out += "}";
  }
  if (!gauges_.empty()) {
    open_section("gauges");
    bool first = true;
    for (const auto& [name, value] : gauges_) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + format_double(value);
    }
    out += "}";
  }
  if (!histograms_.empty()) {
    open_section("histograms");
    bool first = true;
    for (const auto& [name, hist] : histograms_) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + hist.to_json();
    }
    out += "}";
  }
  out += "}";
  return out;
}

MetricsRegistry MetricsRegistry::from_json(const scenario::Json& json,
                                           const std::string& where,
                                           std::vector<std::string>* warnings) {
  warn_unknown_keys(json, {"counters", "gauges", "histograms"}, where,
                    warnings);
  MetricsRegistry registry;
  if (json.has("counters")) {
    for (const auto& [name, value] : json.at("counters").as_object()) {
      registry.counters_[name] = value.as_uint64();
    }
  }
  if (json.has("gauges")) {
    for (const auto& [name, value] : json.at("gauges").as_object()) {
      registry.gauges_[name] = value.as_number();
    }
  }
  if (json.has("histograms")) {
    for (const auto& [name, value] : json.at("histograms").as_object()) {
      registry.histograms_[name] = Histogram::from_json(
          value, where + ".histograms." + name, warnings);
    }
  }
  return registry;
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry* worker_metrics() noexcept { return tl_worker_metrics; }

WorkerMetricsScope::WorkerMetricsScope(MetricsRegistry* registry) noexcept
    : previous_(tl_worker_metrics) {
  tl_worker_metrics = registry;
}

WorkerMetricsScope::~WorkerMetricsScope() { tl_worker_metrics = previous_; }

}  // namespace lnc::obs
