#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/file_util.h"

namespace lnc::obs {
namespace {

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// JSON string escaping for span args (names are static identifiers and
/// never need escaping, but args may carry scenario names).
void append_escaped(std::string& out, const std::string& text) {
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
}

}  // namespace

std::uint64_t now_micros() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  // Pin the epoch before any span can capture a timestamp, so the first
  // recorded ts is small and nonnegative.
  (void)trace_epoch();
  return recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> guard(registry_guard_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer = buffers_.back().get();
  }
  return *buffer;
}

void TraceRecorder::record(const char* name, std::uint64_t start_us,
                           std::uint64_t dur_us, std::string args_json) {
  ThreadBuffer& buffer = local_buffer();
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      Event{name, start_us, dur_us, std::move(args_json)});
}

std::string TraceRecorder::to_json() const {
  struct Flat {
    const Event* event;
    std::uint32_t tid;
  };
  std::vector<Flat> flat;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> guard(registry_guard_);
    for (const auto& buffer : buffers_) {
      dropped += buffer->dropped;
      for (const Event& event : buffer->events) {
        flat.push_back(Flat{&event, buffer->tid});
      }
    }
  }
  // Sort by start time (longer spans first on ties, so parents precede
  // their children): monotonic "ts" across the file, and a stable order
  // for the well-formedness checker.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const Flat& a, const Flat& b) {
                     if (a.event->start_us != b.event->start_us) {
                       return a.event->start_us < b.event->start_us;
                     }
                     return a.event->dur_us > b.event->dur_us;
                   });
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Flat& item : flat) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"";
    out += item.event->name;
    out += "\", \"ph\": \"X\", \"ts\": ";
    out += std::to_string(item.event->start_us);
    out += ", \"dur\": ";
    out += std::to_string(item.event->dur_us);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(item.tid);
    if (!item.event->args_json.empty()) {
      out += ", \"args\": {";
      out += item.event->args_json;
      out += "}";
    }
    out += "}";
  }
  if (dropped > 0) {
    // Buffer saturation is itself observable: a zero-length marker event
    // carrying the drop count, rather than a silently truncated file.
    if (!first) out += ",";
    out += "\n  {\"name\": \"trace-buffer-saturated\", \"ph\": \"X\", "
           "\"ts\": ";
    out += std::to_string(now_micros());
    out += ", \"dur\": 0, \"pid\": 1, \"tid\": 1, \"args\": {\"dropped\": ";
    out += std::to_string(dropped);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::write_file(const std::string& path,
                               std::string* error) const {
  const std::string problem = util::write_file_atomic(path, to_json());
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    return false;
  }
  return true;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> guard(registry_guard_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->events.size();
  return count;
}

std::size_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> guard(registry_guard_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    count += static_cast<std::size_t>(buffer->dropped);
  }
  return count;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> guard(registry_guard_);
  for (const auto& buffer : buffers_) {
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string span_args(const char* key, const std::string& value) {
  std::string out = "\"";
  out += key;
  out += "\": \"";
  append_escaped(out, value);
  out += "\"";
  return out;
}

std::string span_args(const char* key, std::uint64_t value) {
  std::string out = "\"";
  out += key;
  out += "\": ";
  out += std::to_string(value);
  return out;
}

}  // namespace lnc::obs
