// Rate-limited live progress heartbeats for long runs: trials completed
// (sweeps), nodes streamed (implicit topologies), shards finished
// (fleets). Emits grep-stable lines of the form
//
//   progress[label]: 1234/5000 trials 24.7% 812.3 trials/s eta 4.6s
//   progress[label]: 52428800 nodes 1.3e+07 nodes/s        (unknown total)
//   progress[label]: 5000/5000 trials 100.0% 790.1 trials/s done in 6.3s
//
// to a caller-supplied stream (stderr by convention — result JSON and
// tables own stdout). tick() is thread-safe and costs one relaxed
// fetch_add plus a time check; printing is rate-limited to the configured
// interval, and finish() always prints a final line when any work was
// observed, so short runs still leave one heartbeat for CI to grep.
//
// Progress is timing-only observability: it never touches tallies,
// deterministic telemetry, or cache keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace lnc::obs {

class Progress {
 public:
  /// `total` may be 0 when unknown (no percentage / ETA, rate only).
  Progress(std::string label, std::uint64_t total, std::string unit,
           std::ostream* out, double min_interval_seconds = 1.0);
  ~Progress();
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Records `delta` completed units; prints a heartbeat if at least the
  /// minimum interval has elapsed since the last one.
  void tick(std::uint64_t delta = 1);

  /// Prints the final line (idempotent; skipped when nothing was ever
  /// ticked AND the total is unknown, so idle channels stay silent).
  void finish();

  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  void print_line(bool final);

  const std::string label_;
  const std::string unit_;
  const std::uint64_t total_;
  std::ostream* const out_;
  const std::uint64_t min_interval_us_;
  const std::uint64_t start_us_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> last_print_us_;
  // Rate window: units/time at the previous heartbeat, for instantaneous
  // throughput (guarded by print_guard_).
  std::uint64_t window_done_ = 0;
  std::uint64_t window_us_;
  bool finished_ = false;
  std::mutex print_guard_;
};

/// Global node-granularity channel: the implicit streaming loop sits
/// behind plan lambdas that cannot carry a sink, so the tool installs a
/// Progress here for the run's duration. tick forwarding is a single
/// relaxed load when nothing is installed.
void install_node_progress(Progress* progress) noexcept;
void node_progress_tick(std::uint64_t delta) noexcept;

}  // namespace lnc::obs
