// Mergeable run metrics: named counters, gauges, and log-bucketed latency
// histograms, accumulated lock-free per worker and merged across threads
// and shards exactly like local::Telemetry.
//
// Everything here is TIMING-ONLY observability: metrics never feed back
// into tallies, deterministic telemetry, or cache keys, and the merge of
// a set of registries is bit-identical regardless of merge order or
// partitioning (counters and bucket counts are integers; histogram sums
// use stats::ExactSum, the same order-free superaccumulator the value
// tallies use; gauges merge by max).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "stats/exact_sum.h"

namespace lnc::scenario {
struct Json;
}  // namespace lnc::scenario

namespace lnc::obs {

/// Log-bucketed histogram over nonnegative doubles (latencies in
/// seconds, rates in units/second). Buckets are powers of two:
///   bucket 0                  — value <= 0 (and non-finite input)
///   bucket 1                  — 0 < value < 2^-32 (underflow)
///   bucket 2 + (e + 32)       — 2^e <= value < 2^(e+1), e in [-32, 31]
/// with the top bucket absorbing everything >= 2^31. The exact sum rides
/// along so the mean survives merging without order dependence.
class Histogram {
 public:
  static constexpr int kMinExponent = -32;
  static constexpr int kMaxExponent = 31;
  static constexpr int kBucketCount =
      2 + (kMaxExponent - kMinExponent + 1);  // 66

  /// Bucket index for a value (exposed for the boundary tests).
  static int bucket_index(double value) noexcept;
  /// Inclusive lower bound of a bucket; bucket 0 has no lower bound
  /// (returns -infinity), bucket 1 returns 0.
  static double bucket_lower_bound(int index) noexcept;

  /// Records one observation. Non-finite values are counted in bucket 0
  /// (never added to the exact sum, which requires finite input).
  void observe(double value) noexcept;

  /// Order-free merge: bit-identical result for any merge order or
  /// shard partitioning of the same observation multiset.
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_.value(); }
  std::string sum_hex() const { return sum_.to_hex(); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  std::uint64_t bucket(int index) const { return buckets_.at(index); }

  /// JSON object form (sparse buckets as [index, count] pairs):
  ///   {"count": N, "sum": S, "exact_sum": "hex", "min": m, "max": M,
  ///    "buckets": [[33, 7], [34, 1]]}
  std::string to_json() const;
  /// Inverse; unknown keys append a warning "<where>: unknown key ...".
  static Histogram from_json(const scenario::Json& json,
                             const std::string& where,
                             std::vector<std::string>* warnings);

 private:
  // min/max cover FINITE observations only; the +inf/-inf sentinels make
  // merge order-free without an extra "seen anything" flag.
  stats::ExactSum sum_;
  std::uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBucketCount> buckets_{};
};

/// A named bag of counters (merge: sum), gauges (merge: max), and
/// histograms (merge: Histogram::merge). NOT thread-safe: use one
/// registry per worker and merge, exactly like local::Telemetry.
/// std::map keeps JSON key order deterministic.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta);
  void set_gauge(const std::string& name, double value);
  /// The named histogram, created empty on first use.
  Histogram& histogram(const std::string& name);
  /// Shorthand for histogram(name).observe(value).
  void observe(const std::string& name, double value);

  bool empty() const noexcept;
  void clear();
  void merge(const MetricsRegistry& other);

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// JSON object form; sections are emitted only when non-empty:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string to_json() const;
  static MetricsRegistry from_json(const scenario::Json& json,
                                   const std::string& where,
                                   std::vector<std::string>* warnings);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-wide switch for engine-side metric recording (set by --trace;
/// a relaxed atomic load is the entire disabled-path cost).
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// The current worker's registry, or nullptr when none is installed —
/// the channel that lets deep engine code (ball collection, vector
/// kernels) record without threading a pointer through every API.
MetricsRegistry* worker_metrics() noexcept;

/// RAII installer for worker_metrics(); restores the previous pointer so
/// nested runners (e.g. a sweep inside a bench harness) stay correct.
class WorkerMetricsScope {
 public:
  explicit WorkerMetricsScope(MetricsRegistry* registry) noexcept;
  ~WorkerMetricsScope();
  WorkerMetricsScope(const WorkerMetricsScope&) = delete;
  WorkerMetricsScope& operator=(const WorkerMetricsScope&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace lnc::obs
