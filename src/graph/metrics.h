// Structural measurements: BFS distances, diameter, connectivity,
// biconnectivity, bipartiteness, girth.
//
// Theorem 1's construction needs graphs with diameter >= D = 2*mu*(t+t'),
// node sets S pairwise at distance > 2(t+t'), and the glued result must be
// connected with degree <= k; section 5 remarks it also preserves
// 2-connectivity. These checkers are the measuring instruments for those
// claims (experiments E6-E8).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace lnc::graph {

/// BFS distances from src; -1 for unreachable nodes.
std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// Distance between two nodes; -1 if disconnected.
int distance(const Graph& g, NodeId a, NodeId b);

/// Maximum finite BFS distance from src (its eccentricity); -1 when some
/// node is unreachable.
int eccentricity(const Graph& g, NodeId src);

/// Exact diameter via n BFS runs; -1 when the graph is disconnected.
/// Intended for the experiment scales (n up to ~10^4).
int diameter(const Graph& g);

bool is_connected(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

/// Component index per node (0-based, in order of first discovery).
std::vector<std::size_t> components(const Graph& g);

/// Articulation vertices (cut vertices), via iterative Tarjan lowlink.
std::vector<NodeId> articulation_points(const Graph& g);

/// Connected, has >= 3 nodes, and no articulation point.
bool is_biconnected(const Graph& g);

bool is_bipartite(const Graph& g);

/// Length of a shortest cycle; -1 for forests. O(n * m) BFS sweep.
int girth(const Graph& g);

/// Greedily selects nodes pairwise at distance > min_separation, scanning
/// in index order. Used to build the set S of Claim 4 (mu nodes pairwise at
/// distance >= 2(t+t') from each other).
std::vector<NodeId> scattered_nodes(const Graph& g, int min_separation,
                                    std::size_t max_count);

}  // namespace lnc::graph
