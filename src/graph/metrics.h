// Structural measurements: BFS distances, diameter, connectivity,
// biconnectivity, bipartiteness, girth.
//
// Every function here needs only node_count() and neighbor scans, so the
// whole module speaks Topology (graph/topology.h): a materialized Graph
// binds directly, and implicit topologies (graph/implicit.h) measure
// without ever materializing. All algorithms hold O(n) working arrays —
// instrument-scale, not giga-scale.
//
// Theorem 1's construction needs graphs with diameter >= D = 2*mu*(t+t'),
// node sets S pairwise at distance > 2(t+t'), and the glued result must be
// connected with degree <= k; section 5 remarks it also preserves
// 2-connectivity. These checkers are the measuring instruments for those
// claims (experiments E6-E8).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.h"

namespace lnc::graph {

/// BFS distances from src; -1 for unreachable nodes.
std::vector<int> bfs_distances(const Topology& g, NodeId src);

/// Distance between two nodes; -1 if disconnected.
int distance(const Topology& g, NodeId a, NodeId b);

/// Maximum finite BFS distance from src (its eccentricity); -1 when some
/// node is unreachable.
int eccentricity(const Topology& g, NodeId src);

/// Exact diameter via n BFS runs; -1 when the graph is disconnected.
/// Intended for the experiment scales (n up to ~10^4).
int diameter(const Topology& g);

bool is_connected(const Topology& g);

/// Number of connected components.
std::size_t component_count(const Topology& g);

/// Component index per node (0-based, in order of first discovery).
std::vector<std::size_t> components(const Topology& g);

/// Articulation vertices (cut vertices), via iterative Tarjan lowlink.
std::vector<NodeId> articulation_points(const Topology& g);

/// Connected, has >= 3 nodes, and no articulation point.
bool is_biconnected(const Topology& g);

bool is_bipartite(const Topology& g);

/// Length of a shortest cycle; -1 for forests. O(n * m) BFS sweep.
int girth(const Topology& g);

/// Greedily selects nodes pairwise at distance > min_separation, scanning
/// in index order. Used to build the set S of Claim 4 (mu nodes pairwise at
/// distance >= 2(t+t') from each other).
std::vector<NodeId> scattered_nodes(const Topology& g, int min_separation,
                                    std::size_t max_count);

}  // namespace lnc::graph
