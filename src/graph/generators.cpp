#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/implicit.h"

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::graph {

Graph cycle(NodeId n) {
  LNC_EXPECTS(n >= 3);
  Graph::Builder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph path(NodeId n) {
  LNC_EXPECTS(n >= 1);
  Graph::Builder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph complete(NodeId n) {
  LNC_EXPECTS(n >= 1);
  Graph::Builder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return b.build();
}

Graph star(NodeId n) {
  LNC_EXPECTS(n >= 2);
  Graph::Builder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph grid(NodeId width, NodeId height) {
  LNC_EXPECTS(width >= 1 && height >= 1);
  Graph::Builder b(width * height);
  auto index = [width](NodeId r, NodeId c) { return r * width + c; };
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      if (c + 1 < width) b.add_edge(index(r, c), index(r, c + 1));
      if (r + 1 < height) b.add_edge(index(r, c), index(r + 1, c));
    }
  }
  return b.build();
}

Graph torus(NodeId width, NodeId height) {
  LNC_EXPECTS(width >= 3 && height >= 3);
  Graph::Builder b(width * height);
  auto index = [width](NodeId r, NodeId c) { return r * width + c; };
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      b.add_edge(index(r, c), index(r, (c + 1) % width));
      b.add_edge(index(r, c), index((r + 1) % height, c));
    }
  }
  return b.build();
}

Graph hypercube(int dimensions) {
  LNC_EXPECTS(dimensions >= 1 && dimensions < 20);
  const NodeId n = NodeId{1} << dimensions;
  Graph::Builder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int d = 0; d < dimensions; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph binary_tree(NodeId n) {
  LNC_EXPECTS(n >= 1);
  Graph::Builder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  LNC_EXPECTS(spine >= 1);
  Graph::Builder b(spine + spine * legs);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i) {
    for (NodeId l = 0; l < legs; ++l) b.add_edge(i, next++);
  }
  return b.build();
}

Graph petersen() {
  Graph::Builder b(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (NodeId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(i + 5, ((i + 2) % 5) + 5);
    b.add_edge(i, i + 5);
  }
  return b.build();
}

Graph random_regular(NodeId n, NodeId degree, std::uint64_t seed) {
  LNC_EXPECTS(degree < n);
  LNC_EXPECTS((static_cast<std::uint64_t>(n) * degree) % 2 == 0);
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x7265677561ULL));
  // Configuration model with LOCAL SWAP REPAIR: pair shuffled stubs left to
  // right; when the next pair would create a self-loop or parallel edge,
  // swap its second stub with a random later stub and retry. Whole-shuffle
  // restarts (the textbook method) have success probability
  // ~exp(-(d^2-1)/4), hopeless already at d = 6; swaps repair locally and
  // succeed essentially always, with a full restart as a rare fallback.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * degree);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId i = 0; i < degree; ++i) stubs.push_back(v);
    }
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(stubs[i - 1], stubs[j]);
    }
    bool simple = true;
    Graph::Builder b(n);
    std::vector<std::vector<NodeId>> seen(n);
    auto conflicts = [&seen](NodeId u, NodeId v) {
      return u == v ||
             std::find(seen[u].begin(), seen[u].end(), v) != seen[u].end();
    };
    for (std::size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
      const NodeId u = stubs[i];
      int tries = 0;
      while (conflicts(u, stubs[i + 1]) && tries < 200) {
        const std::size_t remaining = stubs.size() - (i + 2);
        if (remaining == 0) break;
        const std::size_t j = i + 2 + static_cast<std::size_t>(
                                          rng.next_below(remaining));
        std::swap(stubs[i + 1], stubs[j]);
        ++tries;
      }
      const NodeId v = stubs[i + 1];
      if (conflicts(u, v)) {
        simple = false;  // tail deadlock: restart from a fresh shuffle
        break;
      }
      seen[u].push_back(v);
      seen[v].push_back(u);
      b.add_edge(u, v);
    }
    if (simple) return b.build();
  }
  LNC_ASSERT(false && "random_regular: swap repair failed; degree too close to n?");
  return Graph{};
}

Graph gnp_bounded(NodeId n, double p, NodeId max_deg, std::uint64_t seed) {
  LNC_EXPECTS(n >= 1);
  LNC_EXPECTS(p >= 0.0 && p <= 1.0);
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x676E70ULL));
  std::vector<NodeId> deg(n, 0);
  Graph::Builder b(n);
  const auto threshold =
      static_cast<std::uint64_t>(p * 18446744073709551615.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next() <= threshold && deg[u] < max_deg && deg[v] < max_deg) {
        b.add_edge(u, v);
        ++deg[u];
        ++deg[v];
      }
    }
  }
  return b.build();
}

Graph random_regular_cycles(NodeId n, NodeId degree, std::uint64_t seed) {
  return materialize(*implicit_random_regular_cycles(n, degree, seed));
}

Graph gnp_hash(NodeId n, double p, NodeId max_deg, std::uint64_t seed) {
  return materialize(*implicit_gnp_hash(n, p, max_deg, seed));
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  LNC_EXPECTS(n >= 1);
  if (n == 1) return Graph::Builder(1).build();
  if (n == 2) return path(2);
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x7072756665ULL));
  // Random Prufer sequence of length n-2 decodes to a uniform random tree.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.next_below(n));
  std::vector<NodeId> count(n, 0);
  for (NodeId x : prufer) ++count[x];
  Graph::Builder b(n);
  // Standard O(n log n)-free decode using a pointer scan.
  NodeId ptr = 0;
  while (count[ptr] != 0) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    b.add_edge(leaf, x);
    if (--count[x] == 0 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (ptr < n && count[ptr] != 0) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return b.build();
}

Graph random_tree_bounded(NodeId n, NodeId max_deg, std::uint64_t seed) {
  LNC_EXPECTS(n >= 1);
  LNC_EXPECTS(max_deg >= 2);
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x74726565ULL));
  Graph::Builder b(n);
  std::vector<NodeId> open;  // nodes with spare degree
  std::vector<NodeId> deg(n, 0);
  open.push_back(0);
  for (NodeId v = 1; v < n; ++v) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.next_below(open.size()));
    const NodeId parent = open[pick];
    b.add_edge(parent, v);
    ++deg[parent];
    ++deg[v];
    if (deg[parent] >= max_deg) {
      open[pick] = open.back();
      open.pop_back();
    }
    if (deg[v] < max_deg) open.push_back(v);
    LNC_ASSERT(!open.empty() || v + 1 == n);
  }
  return b.build();
}

}  // namespace lnc::graph
