// The neighbors-on-demand topology interface (ROADMAP "Implicit
// giga-scale topologies").
//
// The LOCAL model only ever inspects radius-t balls, so a trial never
// needs more of the graph than the neighborhoods it expands. Topology is
// that contract: node count plus the sorted neighbor list of one node at
// a time. The materialized CSR Graph implements it trivially (graph.h);
// ImplicitTopology implementations (implicit.h) synthesize neighborhoods
// from (family, params, seed) so n = 10^8+ sweeps run in O(ball) memory
// instead of O(n + m).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lnc::graph {

/// Dense node index in [0, node_count). Distinct from ident::Identity:
/// indices are an implementation artifact, identities are the model's
/// (adversarial) names.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A simple undirected graph exposed one neighborhood at a time.
///
/// The contract mirrors CSR exactly: neighbors_of(v) is v's neighbor
/// list sorted ascending, with no self-loops and no duplicates, and is
/// symmetric (u in neighbors_of(v) iff v in neighbors_of(u)). Ball
/// collection (ball.h) and every consumer that only scans neighborhoods
/// take `const Topology&`; consumers that need global structure (edge
/// iteration, graph surgery) keep taking `const Graph&`.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual NodeId node_count() const noexcept = 0;

  /// The sorted neighbor list of v. May return a span into `scratch`
  /// (implicit topologies synthesize the list there) or into internal
  /// storage (Graph returns its CSR row and leaves `scratch` untouched).
  /// Either way the span is invalidated by the next neighbors_of call
  /// that reuses the same scratch vector.
  virtual std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const = 0;
};

}  // namespace lnc::graph
