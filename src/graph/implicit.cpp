#include "graph/implicit.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::graph {
namespace {

/// A seed-keyed pseudorandom permutation of [0, n): 4-round balanced
/// Feistel over the smallest even-bit power-of-two domain >= n, with
/// cycle-walking back into [0, n). Invertible in both directions — the
/// property random_regular_cycles needs, since node v's neighbors under
/// permutation pi are pi(v) AND pi^-1(v).
class FeistelPermutation {
 public:
  FeistelPermutation(std::uint64_t n, std::uint64_t key)
      : n_(n), key_(key) {
    LNC_EXPECTS(n >= 1);
    half_bits_ = 1;
    while ((std::uint64_t{1} << (2 * half_bits_)) < n) ++half_bits_;
    half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  }

  std::uint64_t forward(std::uint64_t x) const {
    do {
      x = encrypt(x);
    } while (x >= n_);
    return x;
  }

  std::uint64_t inverse(std::uint64_t x) const {
    do {
      x = decrypt(x);
    } while (x >= n_);
    return x;
  }

 private:
  std::uint64_t round_f(std::uint64_t half, int round) const {
    return rand::mix_keys(rand::mix_keys(key_, static_cast<std::uint64_t>(
                                                   round)),
                          half) &
           half_mask_;
  }

  std::uint64_t encrypt(std::uint64_t x) const {
    std::uint64_t l = x >> half_bits_;
    std::uint64_t r = x & half_mask_;
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t next = l ^ round_f(r, i);
      l = r;
      r = next;
    }
    return (l << half_bits_) | r;
  }

  std::uint64_t decrypt(std::uint64_t x) const {
    std::uint64_t l = x >> half_bits_;
    std::uint64_t r = x & half_mask_;
    for (int i = 3; i >= 0; --i) {
      const std::uint64_t prev = r ^ round_f(l, i);
      r = l;
      l = prev;
    }
    return (l << half_bits_) | r;
  }

  std::uint64_t n_;
  std::uint64_t key_;
  unsigned half_bits_ = 1;
  std::uint64_t half_mask_ = 3;
};

std::span<const NodeId> sorted_unique(std::vector<NodeId>& scratch) {
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  return scratch;
}

class ImplicitCycle final : public ImplicitTopology {
 public:
  explicit ImplicitCycle(NodeId n) : n_(n) { LNC_EXPECTS(n >= 3); }

  NodeId node_count() const noexcept override { return n_; }
  NodeId degree_bound() const noexcept override { return 2; }
  double mean_degree() const noexcept override { return 2.0; }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    scratch.push_back(v == 0 ? n_ - 1 : v - 1);
    scratch.push_back(v + 1 == n_ ? 0 : v + 1);
    return sorted_unique(scratch);
  }

 private:
  NodeId n_;
};

class ImplicitPath final : public ImplicitTopology {
 public:
  explicit ImplicitPath(NodeId n) : n_(n) { LNC_EXPECTS(n >= 1); }

  NodeId node_count() const noexcept override { return n_; }
  NodeId degree_bound() const noexcept override { return n_ >= 2 ? 2 : 0; }
  double mean_degree() const noexcept override {
    return n_ == 0 ? 0.0 : 2.0 * (n_ - 1) / n_;
  }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    if (v > 0) scratch.push_back(v - 1);
    if (v + 1 < n_) scratch.push_back(v + 1);
    return scratch;
  }

 private:
  NodeId n_;
};

class ImplicitGrid final : public ImplicitTopology {
 public:
  ImplicitGrid(NodeId width, NodeId height) : width_(width), height_(height) {
    LNC_EXPECTS(width >= 1 && height >= 1);
    LNC_EXPECTS(static_cast<std::uint64_t>(width) * height <=
                static_cast<std::uint64_t>(kInvalidNode));
  }

  NodeId node_count() const noexcept override { return width_ * height_; }
  NodeId degree_bound() const noexcept override { return 4; }
  double mean_degree() const noexcept override {
    const double n = static_cast<double>(width_) * height_;
    const double edges = static_cast<double>(height_) * (width_ - 1) +
                         static_cast<double>(width_) * (height_ - 1);
    return n == 0.0 ? 0.0 : 2.0 * edges / n;
  }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    const NodeId r = v / width_;
    const NodeId c = v % width_;
    scratch.clear();
    // Up, left, right, down — already ascending by index.
    if (r > 0) scratch.push_back(v - width_);
    if (c > 0) scratch.push_back(v - 1);
    if (c + 1 < width_) scratch.push_back(v + 1);
    if (r + 1 < height_) scratch.push_back(v + width_);
    return scratch;
  }

 private:
  NodeId width_;
  NodeId height_;
};

class ImplicitTorus final : public ImplicitTopology {
 public:
  ImplicitTorus(NodeId width, NodeId height) : width_(width), height_(height) {
    LNC_EXPECTS(width >= 3 && height >= 3);
    LNC_EXPECTS(static_cast<std::uint64_t>(width) * height <=
                static_cast<std::uint64_t>(kInvalidNode));
  }

  NodeId node_count() const noexcept override { return width_ * height_; }
  NodeId degree_bound() const noexcept override { return 4; }
  double mean_degree() const noexcept override { return 4.0; }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    const NodeId r = v / width_;
    const NodeId c = v % width_;
    auto index = [this](NodeId row, NodeId col) { return row * width_ + col; };
    scratch.clear();
    scratch.push_back(index(r == 0 ? height_ - 1 : r - 1, c));
    scratch.push_back(index(r + 1 == height_ ? 0 : r + 1, c));
    scratch.push_back(index(r, c == 0 ? width_ - 1 : c - 1));
    scratch.push_back(index(r, c + 1 == width_ ? 0 : c + 1));
    return sorted_unique(scratch);
  }

 private:
  NodeId width_;
  NodeId height_;
};

class ImplicitHypercube final : public ImplicitTopology {
 public:
  explicit ImplicitHypercube(int dimensions) : dimensions_(dimensions) {
    LNC_EXPECTS(dimensions >= 1 && dimensions < 32);
  }

  NodeId node_count() const noexcept override {
    return NodeId{1} << dimensions_;
  }
  NodeId degree_bound() const noexcept override {
    return static_cast<NodeId>(dimensions_);
  }
  double mean_degree() const noexcept override { return dimensions_; }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    for (int d = 0; d < dimensions_; ++d) {
      scratch.push_back(v ^ (NodeId{1} << d));
    }
    return sorted_unique(scratch);
  }

 private:
  int dimensions_;
};

class ImplicitBinaryTree final : public ImplicitTopology {
 public:
  explicit ImplicitBinaryTree(NodeId n) : n_(n) { LNC_EXPECTS(n >= 1); }

  NodeId node_count() const noexcept override { return n_; }
  NodeId degree_bound() const noexcept override { return 3; }
  double mean_degree() const noexcept override {
    return n_ == 0 ? 0.0 : 2.0 * (n_ - 1) / n_;
  }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    // Parent < v < children: already ascending.
    if (v > 0) scratch.push_back((v - 1) / 2);
    const std::uint64_t left = 2 * static_cast<std::uint64_t>(v) + 1;
    if (left < n_) scratch.push_back(static_cast<NodeId>(left));
    if (left + 1 < n_) scratch.push_back(static_cast<NodeId>(left + 1));
    return scratch;
  }

 private:
  NodeId n_;
};

class ImplicitRandomRegularCycles final : public ImplicitTopology {
 public:
  ImplicitRandomRegularCycles(NodeId n, NodeId degree, std::uint64_t seed)
      : n_(n), degree_(degree) {
    LNC_EXPECTS(degree >= 1 && degree < n);
    const bool odd = degree % 2 != 0;
    LNC_EXPECTS(!odd || n % 2 == 0);
    const NodeId factors = degree / 2;
    permutations_.reserve(factors);
    for (NodeId j = 0; j < factors; ++j) {
      permutations_.emplace_back(n, rand::mix_keys(seed, 0x52454750ULL + j));
    }
    if (odd) matching_.emplace(n, rand::mix_keys(seed, 0x4D415443ULL));
  }

  NodeId node_count() const noexcept override { return n_; }
  NodeId degree_bound() const noexcept override { return degree_; }
  double mean_degree() const noexcept override { return degree_; }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    for (const FeistelPermutation& pi : permutations_) {
      const auto image = static_cast<NodeId>(pi.forward(v));
      const auto preimage = static_cast<NodeId>(pi.inverse(v));
      if (image != v) scratch.push_back(image);
      if (preimage != v) scratch.push_back(preimage);
    }
    if (matching_) {
      // sigma(sigma^-1(v) XOR 1): a fixed-point-free involution pairing
      // the nodes up (n is even), i.e. a seed-derived perfect matching.
      scratch.push_back(static_cast<NodeId>(
          matching_->forward(matching_->inverse(v) ^ 1)));
    }
    return sorted_unique(scratch);
  }

 private:
  NodeId n_;
  NodeId degree_;
  std::vector<FeistelPermutation> permutations_;
  std::optional<FeistelPermutation> matching_;
};

class ImplicitGnpHash final : public ImplicitTopology {
 public:
  ImplicitGnpHash(NodeId n, double edge_prob, NodeId max_degree,
                  std::uint64_t seed)
      : n_(n),
        cap_(std::min<NodeId>(max_degree, n >= 1 ? n - 1 : 0)),
        edge_prob_(edge_prob),
        // 53-bit threshold: double-exact, so the same p maps to the same
        // cut on every platform.
        threshold_(static_cast<std::uint64_t>(edge_prob *
                                              9007199254740992.0)),
        edge_key_(rand::mix_keys(seed, 0x474E5048ULL)) {
    LNC_EXPECTS(n >= 1);
    LNC_EXPECTS(edge_prob >= 0.0 && edge_prob <= 1.0);
  }

  NodeId node_count() const noexcept override { return n_; }
  NodeId degree_bound() const noexcept override { return cap_; }
  double mean_degree() const noexcept override {
    return std::min(edge_prob_ * (n_ >= 1 ? n_ - 1 : 0),
                    static_cast<double>(cap_));
  }

  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    scratch.clear();
    NodeId my_rank = 0;
    for (NodeId u = 0; u < n_ && my_rank < cap_; ++u) {
      if (u == v || !present(v, u)) continue;
      ++my_rank;  // u's rank in v's candidate list is my_rank - 1 < cap_
      if (rank_below_cap(u, v)) scratch.push_back(u);
    }
    return scratch;
  }

 private:
  /// Whether the candidate edge {a, b} clears the p-threshold —
  /// symmetric, pure in (edge_key_, pair).
  bool present(NodeId a, NodeId b) const {
    if (a > b) std::swap(a, b);
    const std::uint64_t h = rand::splitmix64(rand::mix_keys(
        edge_key_, (static_cast<std::uint64_t>(a) << 32) | b));
    return (h >> 11) < threshold_;
  }

  /// Whether candidate `other` ranks below the cap in `node`'s candidate
  /// list (candidates ordered by ascending index). Early-exits once the
  /// cap is reached.
  bool rank_below_cap(NodeId node, NodeId other) const {
    NodeId rank = 0;
    for (NodeId w = 0; w < other; ++w) {
      if (w == node || !present(node, w)) continue;
      if (++rank >= cap_) return false;
    }
    return true;
  }

  NodeId n_;
  NodeId cap_;
  double edge_prob_;
  std::uint64_t threshold_;
  std::uint64_t edge_key_;
};

}  // namespace

std::shared_ptr<const ImplicitTopology> implicit_cycle(NodeId n) {
  return std::make_shared<ImplicitCycle>(n);
}

std::shared_ptr<const ImplicitTopology> implicit_path(NodeId n) {
  return std::make_shared<ImplicitPath>(n);
}

std::shared_ptr<const ImplicitTopology> implicit_grid(NodeId width,
                                                      NodeId height) {
  return std::make_shared<ImplicitGrid>(width, height);
}

std::shared_ptr<const ImplicitTopology> implicit_torus(NodeId width,
                                                       NodeId height) {
  return std::make_shared<ImplicitTorus>(width, height);
}

std::shared_ptr<const ImplicitTopology> implicit_hypercube(int dimensions) {
  return std::make_shared<ImplicitHypercube>(dimensions);
}

std::shared_ptr<const ImplicitTopology> implicit_binary_tree(NodeId n) {
  return std::make_shared<ImplicitBinaryTree>(n);
}

std::shared_ptr<const ImplicitTopology> implicit_random_regular_cycles(
    NodeId n, NodeId degree, std::uint64_t seed) {
  return std::make_shared<ImplicitRandomRegularCycles>(n, degree, seed);
}

std::shared_ptr<const ImplicitTopology> implicit_gnp_hash(
    NodeId n, double edge_prob, NodeId max_degree, std::uint64_t seed) {
  return std::make_shared<ImplicitGnpHash>(n, edge_prob, max_degree, seed);
}

Graph materialize(const Topology& topology) {
  const NodeId n = topology.node_count();
  Graph::Builder builder(n);
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : topology.neighbors_of(v, scratch)) {
      if (v < u) builder.add_edge(v, u);
    }
  }
  return builder.build();
}

}  // namespace lnc::graph
