// Immutable simple undirected graphs in compressed-sparse-row form.
//
// The LOCAL model (paper, section 2.1.1) works over connected simple graphs;
// the derandomization proof additionally manipulates disconnected unions
// (Claim 3), so Graph itself does not require connectivity — algorithms and
// experiments assert it where the model does.
//
// CSR keeps neighbor scans allocation-free, which matters because the
// Monte-Carlo experiments run millions of ball collections.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/topology.h"

namespace lnc::graph {

/// An undirected edge as an unordered pair (stored with u < v).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph : public Topology {
 public:
  class Builder;

  Graph() = default;

  NodeId node_count() const noexcept override {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Topology interface: the CSR row directly; `scratch` is untouched.
  std::span<const NodeId> neighbors_of(
      NodeId v, std::vector<NodeId>& scratch) const override {
    (void)scratch;
    return neighbors(v);
  }

  NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const noexcept;
  NodeId min_degree() const noexcept;

  /// Binary search over the sorted neighbor list.
  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All edges, each reported once with u < v, sorted lexicographically.
  std::vector<Edge> edges() const;

  bool operator==(const Graph& other) const noexcept {
    return offsets_ == other.offsets_ && adjacency_ == other.adjacency_;
  }

 private:
  friend class Builder;
  std::vector<std::size_t> offsets_;  // size node_count + 1
  std::vector<NodeId> adjacency_;    // size 2 * edge_count, sorted per node
};

/// Accumulates edges, rejects self-loops, deduplicates parallel edges, and
/// freezes into CSR. Node count may grow implicitly via add_edge or be set
/// up front (isolated nodes are legal in Claim-3-style unions).
class Graph::Builder {
 public:
  Builder() = default;
  explicit Builder(NodeId node_count) : node_count_(node_count) {}

  /// Ensures at least `count` nodes exist.
  Builder& reserve_nodes(NodeId count);

  /// Adds the undirected edge {u, v}; u == v is a contract violation.
  /// Duplicate insertions are deduplicated at build() time.
  Builder& add_edge(NodeId u, NodeId v);

  /// Adds a fresh node and returns its index.
  NodeId add_node();

  NodeId node_count() const noexcept { return node_count_; }

  /// Freezes into an immutable Graph. The builder is left valid but empty.
  Graph build();

 private:
  NodeId node_count_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace lnc::graph
