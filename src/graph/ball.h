// Radius-t balls exactly as defined in the paper (section 2.1.1):
//
//   "B_G(v, t) is the subgraph of G induced by all nodes at distance at
//    most t from v, EXCLUDING the edges between the nodes at distance
//    exactly t from v."
//
// The exclusion is not cosmetic: it is precisely the information a t-round
// LOCAL algorithm can gather (a node at distance t has announced itself but
// not its adjacency), and the ball-collection protocol in local/ is tested
// to produce exactly this object. Everything downstream — ball-based
// algorithms, LCL bad-ball checkers (Definition 1), the order-invariant
// wrapper (Claim 1) — consumes BallView.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace lnc::graph {

/// Optional censoring predicate for ball collection — the hook through
/// which fault models (src/fault/) erase crashed nodes and faulty edges
/// from what a LOCAL algorithm can observe. Predicates must be pure
/// (collection may probe the same node or edge repeatedly) and
/// edge_blocked must be symmetric in its arguments; both receive
/// ORIGINAL graph indices. A blocked node never joins the ball (the
/// center itself is exempt — callers decide what a failed center means);
/// a blocked edge is traversed by neither BFS nor the adjacency pass.
class BallFilter {
 public:
  virtual ~BallFilter() = default;
  virtual bool node_blocked(NodeId v) const = 0;
  virtual bool edge_blocked(NodeId a, NodeId b) const = 0;
};

/// Reusable working storage for BallView::collect. The visited map is
/// stamp-versioned, so successive collections touch only the nodes of the
/// ball being built instead of clearing an O(n) array each time; the
/// Monte-Carlo paths keep one scratch per worker (local/batch_runner.h)
/// and stop allocating per node per trial. Not thread-safe: one scratch
/// per concurrent collector.
///
/// The generic Topology path (implicit topologies) must NOT touch the
/// O(n) stamp arrays — ball-bounded memory at n = 10^8+ is the point —
/// so it keeps its own ball-sized open-addressing visited map and a
/// per-collect memo of the members' host neighbor lists instead.
class BallScratch {
 private:
  friend class BallView;
  std::vector<NodeId> local_of_;     // node -> local index (when stamped)
  std::vector<std::uint64_t> stamp_; // node -> version of last visit
  std::vector<std::size_t> cursor_;  // per-local CSR fill cursor
  std::uint64_t version_ = 0;
  // Generic-path state (sized by the ball, never by n).
  std::vector<NodeId> map_keys_;     // open addressing: original index
  std::vector<NodeId> map_vals_;     //   -> local index
  std::vector<std::size_t> host_offsets_;  // per-member memo rows
  std::vector<NodeId> host_adj_;
  std::vector<NodeId> fetch_;        // neighbors_of synthesis buffer
};

class BallView {
 public:
  /// An empty view; fill with collect().
  BallView() = default;

  /// Collects B_G(center, radius). O(|ball| + edges inside).
  BallView(const Graph& g, NodeId center, int radius);

  /// Same, from any topology (dispatches like collect below).
  BallView(const Topology& topology, NodeId center, int radius);

  /// Re-collects B_G(center, radius) into this view, reusing this view's
  /// vector capacity and the scratch's visited map. Bit-identical to a
  /// freshly constructed BallView (tests/graph_test.cpp asserts this);
  /// only the allocations differ. A non-null `filter` censors the
  /// collection: blocked nodes and blocked edges are invisible to BFS and
  /// adjacency alike, i.e. the ball is collected in the realized fault
  /// subgraph (host_degrees_ still report the intact host graph — the
  /// algorithm knows its port count even when links misbehave).
  void collect(const Graph& g, NodeId center, int radius,
               BallScratch& scratch, const BallFilter* filter = nullptr);

  /// Collects the ball from any Topology. A materialized Graph takes the
  /// CSR fast path above; anything else expands through neighbors_of with
  /// ball-bounded scratch (no O(n) visited arrays), producing a view
  /// bit-identical to collecting from the materialized graph of the same
  /// topology (tests/topology_test.cpp).
  void collect(const Topology& topology, NodeId center, int radius,
               BallScratch& scratch, const BallFilter* filter = nullptr);

  /// Number of nodes in the ball.
  NodeId size() const noexcept {
    return static_cast<NodeId>(members_.size());
  }

  int radius() const noexcept { return radius_; }

  /// Local index of the center (always 0).
  NodeId center_local() const noexcept { return 0; }

  /// Original graph index of local node i.
  NodeId to_original(NodeId local) const noexcept { return members_[local]; }

  /// All original indices, in BFS discovery order (center first; nodes at
  /// distance d precede nodes at distance d+1).
  std::span<const NodeId> members() const noexcept { return members_; }

  /// Distance from the center of local node i (0 <= dist <= radius).
  int distance(NodeId local) const noexcept { return distances_[local]; }

  /// Neighbors of local node i *inside the ball*, as local indices, per the
  /// paper's edge rule (no edges between two distance-t nodes).
  std::span<const NodeId> neighbors(NodeId local) const noexcept {
    return {adjacency_.data() + offsets_[local],
            adjacency_.data() + offsets_[local + 1]};
  }

  NodeId degree_in_ball(NodeId local) const noexcept {
    return static_cast<NodeId>(offsets_[local + 1] - offsets_[local]);
  }

  /// Degree of the node in the *host graph* — visible to a LOCAL algorithm
  /// for nodes at distance <= t-1 (their full neighbor list arrived), and
  /// also exposed for distance-t nodes because a (t+1)-round collection
  /// would reveal it; callers modeling strict t-round knowledge should use
  /// degree_in_ball for boundary nodes.
  NodeId host_degree(NodeId local) const noexcept {
    return host_degrees_[local];
  }

  /// Words of the canonical knowledge encoding of this ball — the modeled
  /// cost of delivering the view to the center (local/telemetry.h): one
  /// table-size word, plus per member its id, input, adjacency flag, and
  /// neighbor count, plus the in-ball neighbor lists. Matches the shape of
  /// the flooding collector's serialization (local/ball_collector.cpp).
  std::uint64_t encoded_words() const noexcept {
    return 1 + 4 * static_cast<std::uint64_t>(members_.size()) +
           static_cast<std::uint64_t>(adjacency_.size());
  }

  /// A structural fingerprint of the ball: adjacency + distances serialized
  /// in BFS discovery order. Two balls with equal signatures have identical
  /// local structure *as collected* (not full isomorphism canonicalization:
  /// discovery order depends on neighbor order, which is by original index).
  /// Sufficient for the experiments, which compare balls collected through
  /// identical pipelines.
  std::uint64_t structure_signature() const;

 private:
  void collect_generic(const Topology& topology, NodeId center, int radius,
                       BallScratch& scratch, const BallFilter* filter);

  int radius_ = 0;
  std::vector<NodeId> members_;     // local -> original
  std::vector<int> distances_;      // local -> distance from center
  std::vector<NodeId> host_degrees_;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;   // local indices
};

}  // namespace lnc::graph
