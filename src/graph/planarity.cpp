#include "graph/planarity.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "graph/metrics.h"
#include "util/assert.h"

namespace lnc::graph {
namespace {

// ---------------------------------------------------------------------
// Left-right planarity test (Brandes' formulation of the
// de Fraysseix-Rosenstiehl criterion).
//
// Oriented edges are indexed; every undirected edge {u, v} yields the two
// orientations. The first DFS orients the graph (tree + back edges only),
// computes heights, lowpoints and nesting depths; the second DFS walks
// children in nesting order and maintains a stack of conflict pairs of
// back-edge intervals, merging constraints and failing exactly when two
// back edges are forced onto the same side while conflicting.

constexpr int kNone = -1;
constexpr int kInf = std::numeric_limits<int>::max();

struct LrState {
  const Graph* g = nullptr;
  std::vector<int> height;        // per node; kNone == unvisited
  std::vector<int> parent_edge;   // per node; oriented edge id or kNone

  // Per ORIENTED edge (2*m of them): e = 2*k or 2*k+1 for undirected k.
  std::vector<int> src;
  std::vector<int> dst;
  std::vector<int> lowpt;
  std::vector<int> lowpt2;
  std::vector<int> nesting;
  std::vector<int> ref;           // reference edge (constraint chaining)
  std::vector<int> lowpt_edge;
  std::vector<char> oriented;     // edge used as tree or back edge

  std::vector<std::vector<int>> out;  // oriented adjacency after DFS1

  int twin(int e) const { return e ^ 1; }
};

struct Interval {
  int low = kNone;
  int high = kNone;
  bool empty() const { return low == kNone && high == kNone; }
};

struct ConflictPair {
  Interval left;
  Interval right;
};

class LrTester {
 public:
  explicit LrTester(const Graph& g) {
    state_.g = &g;
    const NodeId n = g.node_count();
    state_.height.assign(n, kNone);
    state_.parent_edge.assign(n, kNone);
    const std::size_t m2 = 2 * g.edge_count();
    state_.src.assign(m2, kNone);
    state_.dst.assign(m2, kNone);
    state_.lowpt.assign(m2, 0);
    state_.lowpt2.assign(m2, 0);
    state_.nesting.assign(m2, 0);
    state_.ref.assign(m2, kNone);
    state_.lowpt_edge.assign(m2, kNone);
    state_.oriented.assign(m2, 0);
    state_.out.assign(n, {});

    const std::vector<Edge> edges = g.edges();
    for (std::size_t k = 0; k < edges.size(); ++k) {
      state_.src[2 * k] = static_cast<int>(edges[k].u);
      state_.dst[2 * k] = static_cast<int>(edges[k].v);
      state_.src[2 * k + 1] = static_cast<int>(edges[k].v);
      state_.dst[2 * k + 1] = static_cast<int>(edges[k].u);
    }
    // Incidence: oriented edges leaving each node.
    incident_.assign(n, {});
    for (std::size_t e = 0; e < m2; ++e) {
      incident_[static_cast<std::size_t>(state_.src[e])].push_back(
          static_cast<int>(e));
    }
    stack_bottom_.assign(m2, 0);
  }

  bool run() {
    const NodeId n = state_.g->node_count();
    // Quick Euler cut: planar graphs have m <= 3n - 6 (n >= 3).
    if (n >= 3 && state_.g->edge_count() > 3 * std::size_t{n} - 6) {
      return false;
    }
    for (NodeId root = 0; root < n; ++root) {
      if (state_.height[root] != kNone) continue;
      state_.height[root] = 0;
      if (!dfs1(static_cast<int>(root))) return false;
    }
    // Sort adjacency by nesting depth for the testing DFS.
    for (NodeId v = 0; v < n; ++v) {
      std::sort(state_.out[v].begin(), state_.out[v].end(),
                [&](int a, int b) {
                  return state_.nesting[a] < state_.nesting[b];
                });
    }
    for (NodeId root = 0; root < n; ++root) {
      if (state_.height[root] == 0 && state_.parent_edge[root] == kNone) {
        if (!dfs2(static_cast<int>(root))) return false;
      }
    }
    return true;
  }

 private:
  /// Post-visit step of oriented edge ei out of v (runs after the subtree
  /// below a tree edge is done, immediately for a back edge): records the
  /// edge in the oriented adjacency, computes its nesting depth, and
  /// propagates lowpoints to v's parent edge.
  void dfs1_post(int v, int ei) {
    const int e = state_.parent_edge[v];
    state_.out[static_cast<std::size_t>(v)].push_back(ei);
    // Nesting depth: interleaving order for the testing phase.
    state_.nesting[ei] = 2 * state_.lowpt[ei];
    if (state_.lowpt2[ei] < state_.height[v]) {
      ++state_.nesting[ei];  // chordal: must be nested deeper
    }
    // Propagate lowpoints to the parent edge.
    if (e != kNone) {
      if (state_.lowpt[ei] < state_.lowpt[e]) {
        state_.lowpt2[e] = std::min(state_.lowpt[e], state_.lowpt2[ei]);
        state_.lowpt[e] = state_.lowpt[ei];
      } else if (state_.lowpt[ei] > state_.lowpt[e]) {
        state_.lowpt2[e] = std::min(state_.lowpt2[e], state_.lowpt[ei]);
      } else {
        state_.lowpt2[e] = std::min(state_.lowpt2[e], state_.lowpt2[ei]);
      }
    }
  }

  // Orientation phase: builds tree/back edges, lowpoints, nesting depth.
  // Iterative with an explicit frame stack — paths and rings recurse to
  // depth n, which overflows the thread stack under sanitizers.
  bool dfs1(int root) {
    struct Frame {
      int v;
      std::size_t i;  // next incident-edge index to inspect
    };
    std::vector<Frame> frames = {{root, 0}};
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int v = frame.v;
      const auto& incident = incident_[static_cast<std::size_t>(v)];
      if (frame.i == incident.size()) {
        frames.pop_back();
        if (!frames.empty()) {
          // Returned across the tree edge into v: run its post step in
          // the parent's context (matches the recursive control flow).
          const int tree_edge = state_.parent_edge[v];
          dfs1_post(state_.src[tree_edge], tree_edge);
        }
        continue;
      }
      const int ei = incident[frame.i++];
      if (state_.oriented[ei] || state_.oriented[state_.twin(ei)]) continue;
      const int w = state_.dst[ei];
      state_.oriented[ei] = 1;
      state_.lowpt[ei] = state_.height[v];
      state_.lowpt2[ei] = state_.height[v];
      if (state_.height[w] == kNone) {  // tree edge
        state_.parent_edge[w] = ei;
        state_.height[w] = state_.height[v] + 1;
        frames.push_back({w, 0});
      } else {  // back edge
        state_.lowpt[ei] = state_.height[w];
        dfs1_post(v, ei);
      }
    }
    return true;
  }

  int lowest(const ConflictPair& pair) const {
    if (pair.left.empty() && pair.right.empty()) return kInf;
    if (pair.left.empty()) return state_.lowpt[pair.right.low];
    if (pair.right.empty()) return state_.lowpt[pair.left.low];
    return std::min(state_.lowpt[pair.left.low],
                    state_.lowpt[pair.right.low]);
  }

  bool conflicting(const Interval& interval, int b) const {
    return !interval.empty() &&
           state_.lowpt[interval.high] > state_.lowpt[b];
  }

  /// Return-edge step of oriented edge ei (index idx in v's ordered
  /// adjacency): runs after a tree edge's subtree completes, immediately
  /// after pushing a back edge. False == not planar.
  bool dfs2_edge_post(int v, int ei, std::size_t idx) {
    const int e = state_.parent_edge[v];
    if (state_.lowpt[ei] < state_.height[v]) {  // ei has a return edge
      if (idx == 0) {
        if (e != kNone) state_.lowpt_edge[e] = state_.lowpt_edge[ei];
      } else {
        if (!add_constraints(ei, e)) return false;
      }
    }
    return true;
  }

  /// Leave step of v: trims back edges ending at the parent and decides
  /// the parent edge's side reference.
  void dfs2_leave(int v) {
    const int e = state_.parent_edge[v];
    if (e == kNone) return;
    const int u = state_.src[e];
    trim_back_edges(u);
    // Side of e is determined by the highest return edge below u.
    if (state_.lowpt[e] < state_.height[u] && !stack_.empty()) {
      const int hl = stack_.back().left.high;
      const int hr = stack_.back().right.high;
      if (hl != kNone &&
          (hr == kNone || state_.lowpt[hl] > state_.lowpt[hr])) {
        state_.ref[e] = hl;
      } else {
        state_.ref[e] = hr;
      }
    }
  }

  // Testing phase. Iterative like dfs1 (same stack-depth concern); the
  // per-edge work splits into a pre step (conflict-stack bookkeeping,
  // possibly descending a tree edge) and a post step (return-edge
  // constraints) that runs after the subtree below a tree edge is done.
  bool dfs2(int root) {
    struct Frame {
      int v;
      std::size_t i;          // current edge index in the ordered adjacency
      bool post_pending;      // edge i descended a tree edge; run its post
    };
    std::vector<Frame> frames = {{root, 0, false}};
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int v = frame.v;
      const auto& ordered = state_.out[static_cast<std::size_t>(v)];
      if (frame.post_pending) {
        frame.post_pending = false;
        const int ei = ordered[frame.i];
        if (!dfs2_edge_post(v, ei, frame.i)) return false;
        ++frame.i;
        continue;
      }
      if (frame.i == ordered.size()) {
        dfs2_leave(v);
        frames.pop_back();
        continue;
      }
      const int ei = ordered[frame.i];
      stack_bottom_[static_cast<std::size_t>(ei)] =
          static_cast<int>(stack_.size());
      if (ei == state_.parent_edge[state_.dst[ei]]) {  // tree edge
        frame.post_pending = true;
        frames.push_back({state_.dst[ei], 0, false});
      } else {  // back edge
        state_.lowpt_edge[ei] = ei;
        stack_.push_back(ConflictPair{Interval{}, Interval{ei, ei}});
        if (!dfs2_edge_post(v, ei, frame.i)) return false;
        ++frame.i;
      }
    }
    return true;
  }

  bool add_constraints(int ei, int e) {
    ConflictPair merged;
    // Merge return edges of ei into merged.right.
    do {
      LNC_ASSERT(!stack_.empty());
      ConflictPair q = stack_.back();
      stack_.pop_back();
      if (!q.left.empty()) std::swap(q.left, q.right);
      if (!q.left.empty()) return false;  // not planar
      if (state_.lowpt[q.right.low] > state_.lowpt[e]) {
        // Merge intervals.
        if (merged.right.empty()) {
          merged.right.high = q.right.high;
        } else {
          state_.ref[merged.right.low] = q.right.high;
        }
        merged.right.low = q.right.low;
      } else {
        // Align.
        state_.ref[q.right.low] = state_.lowpt_edge[e];
      }
    } while (static_cast<int>(stack_.size()) >
             stack_bottom_[static_cast<std::size_t>(ei)]);
    // Merge conflicting return edges of e1, ..., e(i-1) into merged.left.
    while (!stack_.empty() && (conflicting(stack_.back().left, ei) ||
                               conflicting(stack_.back().right, ei))) {
      ConflictPair q = stack_.back();
      stack_.pop_back();
      if (conflicting(q.right, ei)) std::swap(q.left, q.right);
      if (conflicting(q.right, ei)) return false;  // not planar
      // Merge q.right below merged.right.
      if (!q.right.empty()) {
        if (merged.right.empty()) {
          merged.right.high = q.right.high;
        } else {
          state_.ref[merged.right.low] = q.right.high;
        }
        merged.right.low = q.right.low;
      }
      // Merge q.left into merged.left.
      if (!q.left.empty()) {
        if (merged.left.empty()) {
          merged.left.high = q.left.high;
        } else {
          state_.ref[merged.left.low] = q.left.high;
        }
        merged.left.low = q.left.low;
      }
    }
    if (!(merged.left.empty() && merged.right.empty())) {
      stack_.push_back(merged);
    }
    return true;
  }

  void trim_back_edges(int u) {
    // Remove back edges ending at the parent u.
    while (!stack_.empty() && lowest(stack_.back()) == state_.height[u]) {
      const ConflictPair& pair = stack_.back();
      if (pair.left.low != kNone) {
        state_.ref[pair.left.low] = kNone;  // side[left.low] = -1 analogue
      }
      stack_.pop_back();
    }
    if (!stack_.empty()) {
      ConflictPair pair = stack_.back();
      stack_.pop_back();
      // Trim left interval.
      while (pair.left.high != kNone &&
             state_.dst[pair.left.high] == u) {
        pair.left.high = state_.ref[pair.left.high];
      }
      if (pair.left.high == kNone && pair.left.low != kNone) {
        state_.ref[pair.left.low] = pair.right.low;
        pair.left.low = kNone;
      }
      // Trim right interval.
      while (pair.right.high != kNone &&
             state_.dst[pair.right.high] == u) {
        pair.right.high = state_.ref[pair.right.high];
      }
      if (pair.right.high == kNone && pair.right.low != kNone) {
        state_.ref[pair.right.low] = pair.left.low;
        pair.right.low = kNone;
      }
      if (!(pair.left.empty() && pair.right.empty())) {
        stack_.push_back(pair);
      }
    }
  }

  LrState state_;
  std::vector<ConflictPair> stack_;
  std::vector<int> stack_bottom_;
  std::vector<std::vector<int>> incident_;
};

// ---------------------------------------------------------------------
// Brute-force minor oracle (tests only).

/// Enumerates partitions of a subset of nodes into `parts` non-empty
/// connected branch sets and checks pairwise adjacency per `need`:
/// need[i][j] == true requires an edge between branch i and branch j.
bool find_minor(const Graph& g, int parts,
                const std::vector<std::vector<bool>>& need) {
  const NodeId n = g.node_count();
  std::vector<int> assign(n, -1);  // -1 unused, else branch id

  // Recursive assignment with pruning: assign nodes one by one.
  std::function<bool(NodeId)> rec = [&](NodeId v) -> bool {
    if (v == n) {
      // All branch sets must be non-empty, connected, pairwise adjacent
      // as required.
      std::vector<std::vector<NodeId>> branch(
          static_cast<std::size_t>(parts));
      for (NodeId u = 0; u < n; ++u) {
        if (assign[u] >= 0) {
          branch[static_cast<std::size_t>(assign[u])].push_back(u);
        }
      }
      for (const auto& b : branch) {
        if (b.empty()) return false;
      }
      // Connectivity of each branch set.
      for (const auto& b : branch) {
        std::vector<char> in(n, 0);
        for (NodeId u : b) in[u] = 1;
        std::vector<NodeId> queue = {b[0]};
        std::vector<char> seen(n, 0);
        seen[b[0]] = 1;
        std::size_t head = 0;
        std::size_t reached = 1;
        while (head < queue.size()) {
          const NodeId u = queue[head++];
          for (NodeId w : g.neighbors(u)) {
            if (in[w] && !seen[w]) {
              seen[w] = 1;
              ++reached;
              queue.push_back(w);
            }
          }
        }
        if (reached != b.size()) return false;
      }
      // Pairwise adjacency.
      for (int i = 0; i < parts; ++i) {
        for (int j = i + 1; j < parts; ++j) {
          if (!need[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(j)]) {
            continue;
          }
          bool adjacent = false;
          for (NodeId u = 0; u < n && !adjacent; ++u) {
            if (assign[u] != i) continue;
            for (NodeId w : g.neighbors(u)) {
              if (assign[w] == j) {
                adjacent = true;
                break;
              }
            }
          }
          if (!adjacent) return false;
        }
      }
      return true;
    }
    for (int b = -1; b < parts; ++b) {
      assign[v] = b;
      if (rec(v + 1)) return true;
    }
    assign[v] = -1;
    return false;
  };
  return rec(0);
}

}  // namespace

bool is_planar(const Graph& g) {
  if (g.node_count() < 5) return true;  // K4 and smaller are planar
  LrTester tester(g);
  return tester.run();
}

bool has_k5_or_k33_minor_bruteforce(const Graph& g) {
  LNC_EXPECTS(g.node_count() <= 12 &&
              "brute-force minor check is exponential");
  // K5: 5 branch sets, all pairs adjacent.
  std::vector<std::vector<bool>> k5(5, std::vector<bool>(5, true));
  if (find_minor(g, 5, k5)) return true;
  // K3,3: 6 branch sets, bipartite adjacency (0,1,2) x (3,4,5).
  std::vector<std::vector<bool>> k33(6, std::vector<bool>(6, false));
  for (int i = 0; i < 3; ++i) {
    for (int j = 3; j < 6; ++j) {
      k33[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
      k33[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
    }
  }
  return find_minor(g, 6, k33);
}

bool euler_bound_holds(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 3) return true;
  const std::size_t m = g.edge_count();
  if (m > 3 * n - 6) return false;
  if (girth(g) >= 4 || girth(g) == -1) {
    return m <= 2 * n - 4 || n < 3;
  }
  return true;
}

}  // namespace lnc::graph
