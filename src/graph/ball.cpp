#include "graph/ball.h"

#include <algorithm>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::graph {

BallView::BallView(const Graph& g, NodeId center, int radius) {
  BallScratch scratch;
  collect(g, center, radius, scratch);
}

BallView::BallView(const Topology& topology, NodeId center, int radius) {
  BallScratch scratch;
  collect(topology, center, radius, scratch);
}

void BallView::collect(const Topology& topology, NodeId center, int radius,
                       BallScratch& scratch, const BallFilter* filter) {
  // A materialized graph keeps the stamp-versioned O(n)-scratch fast
  // path; one dynamic_cast per ball is noise next to the BFS.
  if (const auto* g = dynamic_cast<const Graph*>(&topology)) {
    collect(*g, center, radius, scratch, filter);
    return;
  }
  collect_generic(topology, center, radius, scratch, filter);
}

void BallView::collect(const Graph& g, NodeId center, int radius,
                       BallScratch& scratch, const BallFilter* filter) {
  LNC_EXPECTS(center < g.node_count());
  LNC_EXPECTS(radius >= 0);
  radius_ = radius;
  members_.clear();
  distances_.clear();
  host_degrees_.clear();

  // Stamp-versioned visited map: an entry is valid only when its stamp
  // matches the current collection, so reuse never clears the array.
  if (scratch.local_of_.size() < g.node_count()) {
    scratch.local_of_.resize(g.node_count());
    scratch.stamp_.resize(g.node_count(), 0);
  }
  const std::uint64_t version = ++scratch.version_;
  auto local_of = [&](NodeId v) -> NodeId {
    return scratch.stamp_[v] == version ? scratch.local_of_[v] : kInvalidNode;
  };
  auto mark = [&](NodeId v, NodeId local) {
    scratch.local_of_[v] = local;
    scratch.stamp_[v] = version;
  };

  // BFS out to `radius`, recording discovery order and distances.
  members_.push_back(center);
  distances_.push_back(0);
  mark(center, 0);
  std::size_t head = 0;
  while (head < members_.size()) {
    const NodeId u = members_[head];
    const int du = distances_[head];
    ++head;
    if (du == radius) continue;
    for (NodeId w : g.neighbors(u)) {
      if (filter != nullptr &&
          (filter->node_blocked(w) || filter->edge_blocked(u, w))) {
        continue;
      }
      if (local_of(w) == kInvalidNode) {
        mark(w, static_cast<NodeId>(members_.size()));
        members_.push_back(w);
        distances_.push_back(du + 1);
      }
    }
  }

  host_degrees_.reserve(members_.size());
  for (NodeId orig : members_) host_degrees_.push_back(g.degree(orig));

  // Build local adjacency with the paper's rule: include edge {a, b} iff
  // both are in the ball and not (dist(a) == radius && dist(b) == radius).
  // Two passes over the members' host adjacency (count, then fill) keep
  // the CSR build allocation-free once capacity is warm.
  offsets_.assign(members_.size() + 1, 0);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : g.neighbors(members_[a])) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      if (filter != nullptr && filter->edge_blocked(members_[a], w)) continue;
      ++offsets_[a + 1];
    }
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.resize(offsets_.back());
  scratch.cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : g.neighbors(members_[a])) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      if (filter != nullptr && filter->edge_blocked(members_[a], w)) continue;
      adjacency_[scratch.cursor_[a]++] = b;
    }
  }
  // Neighbor lists sort by local index, exactly as the original
  // vector-of-vectors build emitted them.
  for (NodeId a = 0; a < members_.size(); ++a) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[a]),
              adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(offsets_[a + 1]));
  }
}

void BallView::collect_generic(const Topology& topology, NodeId center,
                               int radius, BallScratch& scratch,
                               const BallFilter* filter) {
  LNC_EXPECTS(center < topology.node_count());
  LNC_EXPECTS(radius >= 0);
  radius_ = radius;
  members_.clear();
  distances_.clear();
  host_degrees_.clear();

  // Ball-sized open-addressing visited map (original -> local index).
  // Deliberately NOT the stamp-versioned O(n) arrays: at n = 10^8 those
  // alone would dwarf every ball this path ever builds.
  auto& keys = scratch.map_keys_;
  auto& vals = scratch.map_vals_;
  if (keys.size() < 64) {
    keys.assign(64, kInvalidNode);
    vals.assign(64, 0);
  } else {
    std::fill(keys.begin(), keys.end(), kInvalidNode);
  }
  std::size_t mask = keys.size() - 1;
  auto slot_for = [&](NodeId v) {
    std::size_t s = static_cast<std::size_t>(rand::splitmix64(v)) & mask;
    while (keys[s] != kInvalidNode && keys[s] != v) s = (s + 1) & mask;
    return s;
  };
  auto local_of = [&](NodeId v) -> NodeId {
    const std::size_t s = slot_for(v);
    return keys[s] == v ? vals[s] : kInvalidNode;
  };
  auto mark = [&](NodeId v, NodeId local) {
    if ((members_.size() + 1) * 2 > keys.size()) {
      // Keep load factor <= 1/2; re-insert from members_ (which is the
      // authoritative local -> original map).
      keys.assign(keys.size() * 2, kInvalidNode);
      vals.resize(keys.size());
      mask = keys.size() - 1;
      for (NodeId existing = 0;
           existing < static_cast<NodeId>(members_.size()); ++existing) {
        const std::size_t s = slot_for(members_[existing]);
        keys[s] = members_[existing];
        vals[s] = existing;
      }
    }
    const std::size_t s = slot_for(v);
    keys[s] = v;
    vals[s] = local;
  };

  // BFS identical to the CSR path (neighbors_of lists are sorted
  // ascending, exactly like CSR rows, so discovery order matches),
  // memoizing each member's host neighbor list as it is popped — every
  // member is queried exactly once even though the adjacency build below
  // reads the lists twice more.
  auto& host_offsets = scratch.host_offsets_;
  auto& host_adj = scratch.host_adj_;
  host_offsets.clear();
  host_offsets.push_back(0);
  host_adj.clear();

  members_.push_back(center);
  distances_.push_back(0);
  mark(center, 0);
  std::size_t head = 0;
  while (head < members_.size()) {
    const NodeId u = members_[head];
    const int du = distances_[head];
    ++head;
    const std::span<const NodeId> nbrs =
        topology.neighbors_of(u, scratch.fetch_);
    host_adj.insert(host_adj.end(), nbrs.begin(), nbrs.end());
    host_offsets.push_back(host_adj.size());
    if (du == radius) continue;
    for (NodeId w : nbrs) {
      if (filter != nullptr &&
          (filter->node_blocked(w) || filter->edge_blocked(u, w))) {
        continue;
      }
      if (local_of(w) == kInvalidNode) {
        mark(w, static_cast<NodeId>(members_.size()));
        members_.push_back(w);
        distances_.push_back(du + 1);
      }
    }
  }

  host_degrees_.reserve(members_.size());
  for (NodeId a = 0; a < members_.size(); ++a) {
    host_degrees_.push_back(
        static_cast<NodeId>(host_offsets[a + 1] - host_offsets[a]));
  }

  // Same two-pass CSR build and boundary-edge rule as the Graph path,
  // reading the memo instead of the host CSR.
  auto row = [&](NodeId a) {
    return std::span<const NodeId>(host_adj.data() + host_offsets[a],
                                   host_adj.data() + host_offsets[a + 1]);
  };
  offsets_.assign(members_.size() + 1, 0);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : row(a)) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      if (filter != nullptr && filter->edge_blocked(members_[a], w)) continue;
      ++offsets_[a + 1];
    }
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.resize(offsets_.back());
  scratch.cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : row(a)) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      if (filter != nullptr && filter->edge_blocked(members_[a], w)) continue;
      adjacency_[scratch.cursor_[a]++] = b;
    }
  }
  for (NodeId a = 0; a < members_.size(); ++a) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[a]),
              adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(offsets_[a + 1]));
  }
}

std::uint64_t BallView::structure_signature() const {
  std::uint64_t h = 0x62616C6C7369676EULL;  // "ballsign"
  h = rand::mix_keys(h, members_.size());
  for (NodeId i = 0; i < size(); ++i) {
    h = rand::mix_keys(h, static_cast<std::uint64_t>(distances_[i]));
    for (NodeId j : neighbors(i)) {
      h = rand::mix_keys(h, j);
    }
    h = rand::mix_keys(h, 0xFFFFFFFFULL);  // row separator
  }
  return h;
}

}  // namespace lnc::graph
