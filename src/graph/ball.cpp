#include "graph/ball.h"

#include <algorithm>
#include <queue>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::graph {

BallView::BallView(const Graph& g, NodeId center, int radius)
    : radius_(radius) {
  LNC_EXPECTS(center < g.node_count());
  LNC_EXPECTS(radius >= 0);

  // BFS out to `radius`, recording discovery order and distances.
  std::vector<NodeId> local_of(g.node_count(), kInvalidNode);
  members_.push_back(center);
  distances_.push_back(0);
  local_of[center] = 0;
  std::size_t head = 0;
  while (head < members_.size()) {
    const NodeId u = members_[head];
    const int du = distances_[head];
    ++head;
    if (du == radius) continue;
    for (NodeId w : g.neighbors(u)) {
      if (local_of[w] == kInvalidNode) {
        local_of[w] = static_cast<NodeId>(members_.size());
        members_.push_back(w);
        distances_.push_back(du + 1);
      }
    }
  }

  host_degrees_.reserve(members_.size());
  for (NodeId orig : members_) host_degrees_.push_back(g.degree(orig));

  // Build local adjacency with the paper's rule: include edge {a, b} iff
  // both are in the ball and not (dist(a) == radius && dist(b) == radius).
  offsets_.assign(members_.size() + 1, 0);
  std::vector<std::vector<NodeId>> local_adj(members_.size());
  for (NodeId a = 0; a < members_.size(); ++a) {
    const NodeId orig = members_[a];
    for (NodeId w : g.neighbors(orig)) {
      const NodeId b = local_of[w];
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      local_adj[a].push_back(b);
    }
    std::sort(local_adj[a].begin(), local_adj[a].end());
  }
  for (std::size_t i = 0; i < local_adj.size(); ++i) {
    offsets_[i + 1] = offsets_[i] + local_adj[i].size();
  }
  adjacency_.resize(offsets_.back());
  for (std::size_t i = 0; i < local_adj.size(); ++i) {
    std::copy(local_adj[i].begin(), local_adj[i].end(),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]));
  }
}

std::uint64_t BallView::structure_signature() const {
  std::uint64_t h = 0x62616C6C7369676EULL;  // "ballsign"
  h = rand::mix_keys(h, members_.size());
  for (NodeId i = 0; i < size(); ++i) {
    h = rand::mix_keys(h, static_cast<std::uint64_t>(distances_[i]));
    for (NodeId j : neighbors(i)) {
      h = rand::mix_keys(h, j);
    }
    h = rand::mix_keys(h, 0xFFFFFFFFULL);  // row separator
  }
  return h;
}

}  // namespace lnc::graph
