#include "graph/ball.h"

#include <algorithm>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::graph {

BallView::BallView(const Graph& g, NodeId center, int radius) {
  BallScratch scratch;
  collect(g, center, radius, scratch);
}

void BallView::collect(const Graph& g, NodeId center, int radius,
                       BallScratch& scratch) {
  LNC_EXPECTS(center < g.node_count());
  LNC_EXPECTS(radius >= 0);
  radius_ = radius;
  members_.clear();
  distances_.clear();
  host_degrees_.clear();

  // Stamp-versioned visited map: an entry is valid only when its stamp
  // matches the current collection, so reuse never clears the array.
  if (scratch.local_of_.size() < g.node_count()) {
    scratch.local_of_.resize(g.node_count());
    scratch.stamp_.resize(g.node_count(), 0);
  }
  const std::uint64_t version = ++scratch.version_;
  auto local_of = [&](NodeId v) -> NodeId {
    return scratch.stamp_[v] == version ? scratch.local_of_[v] : kInvalidNode;
  };
  auto mark = [&](NodeId v, NodeId local) {
    scratch.local_of_[v] = local;
    scratch.stamp_[v] = version;
  };

  // BFS out to `radius`, recording discovery order and distances.
  members_.push_back(center);
  distances_.push_back(0);
  mark(center, 0);
  std::size_t head = 0;
  while (head < members_.size()) {
    const NodeId u = members_[head];
    const int du = distances_[head];
    ++head;
    if (du == radius) continue;
    for (NodeId w : g.neighbors(u)) {
      if (local_of(w) == kInvalidNode) {
        mark(w, static_cast<NodeId>(members_.size()));
        members_.push_back(w);
        distances_.push_back(du + 1);
      }
    }
  }

  host_degrees_.reserve(members_.size());
  for (NodeId orig : members_) host_degrees_.push_back(g.degree(orig));

  // Build local adjacency with the paper's rule: include edge {a, b} iff
  // both are in the ball and not (dist(a) == radius && dist(b) == radius).
  // Two passes over the members' host adjacency (count, then fill) keep
  // the CSR build allocation-free once capacity is warm.
  offsets_.assign(members_.size() + 1, 0);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : g.neighbors(members_[a])) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      ++offsets_[a + 1];
    }
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.resize(offsets_.back());
  scratch.cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (NodeId a = 0; a < members_.size(); ++a) {
    for (NodeId w : g.neighbors(members_[a])) {
      const NodeId b = local_of(w);
      if (b == kInvalidNode) continue;
      if (distances_[a] == radius && distances_[b] == radius) continue;
      adjacency_[scratch.cursor_[a]++] = b;
    }
  }
  // Neighbor lists sort by local index, exactly as the original
  // vector-of-vectors build emitted them.
  for (NodeId a = 0; a < members_.size(); ++a) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[a]),
              adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(offsets_[a + 1]));
  }
}

std::uint64_t BallView::structure_signature() const {
  std::uint64_t h = 0x62616C6C7369676EULL;  // "ballsign"
  h = rand::mix_keys(h, members_.size());
  for (NodeId i = 0; i < size(); ++i) {
    h = rand::mix_keys(h, static_cast<std::uint64_t>(distances_[i]));
    for (NodeId j : neighbors(i)) {
      h = rand::mix_keys(h, j);
    }
    h = rand::mix_keys(h, 0xFFFFFFFFULL);  // row separator
  }
  return h;
}

}  // namespace lnc::graph
