#include "graph/metrics.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace lnc::graph {

std::vector<int> bfs_distances(const Topology& g, NodeId src) {
  LNC_EXPECTS(src < g.node_count());
  std::vector<int> dist(g.node_count(), -1);
  std::queue<NodeId> queue;
  std::vector<NodeId> scratch;
  dist[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (NodeId w : g.neighbors_of(u, scratch)) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

int distance(const Topology& g, NodeId a, NodeId b) {
  return bfs_distances(g, a)[b];
}

int eccentricity(const Topology& g, NodeId src) {
  const std::vector<int> dist = bfs_distances(g, src);
  int ecc = 0;
  for (int d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Topology& g) {
  if (g.node_count() == 0) return -1;
  int best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc < 0) return -1;
    best = std::max(best, ecc);
  }
  return best;
}

bool is_connected(const Topology& g) {
  if (g.node_count() == 0) return true;
  const std::vector<int> dist = bfs_distances(g, 0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

std::vector<std::size_t> components(const Topology& g) {
  std::vector<std::size_t> comp(g.node_count(),
                                static_cast<std::size_t>(-1));
  std::size_t next = 0;
  std::queue<NodeId> queue;
  std::vector<NodeId> scratch;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (comp[start] != static_cast<std::size_t>(-1)) continue;
    comp[start] = next;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId w : g.neighbors_of(u, scratch)) {
        if (comp[w] == static_cast<std::size_t>(-1)) {
          comp[w] = next;
          queue.push(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::size_t component_count(const Topology& g) {
  if (g.node_count() == 0) return 0;
  const auto comp = components(g);
  return 1 + *std::max_element(comp.begin(), comp.end());
}

std::vector<NodeId> articulation_points(const Topology& g) {
  const NodeId n = g.node_count();
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<bool> is_cut(n, false);
  int timer = 0;

  // Iterative DFS to survive deep paths (rings of 10^5 nodes).
  struct Frame {
    NodeId v;
    std::size_t next_edge;
    NodeId children;
  };
  std::vector<Frame> stack;
  std::vector<NodeId> scratch;
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    stack.push_back({root, 0, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      // Re-fetched every iteration: a scratch-backed span is invalidated
      // by the child fetches between iterations.
      const auto nbrs = g.neighbors_of(v, scratch);
      if (frame.next_edge < nbrs.size()) {
        const NodeId w = nbrs[frame.next_edge++];
        if (disc[w] == -1) {
          parent[w] = v;
          ++frame.children;
          disc[w] = low[w] = timer++;
          stack.push_back({w, 0, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();  // `frame` and `v` copies remain valid
        if (!stack.empty()) {
          const NodeId p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (p != root && low[v] >= disc[p]) is_cut[p] = true;
        }
      }
    }
    // Root rule: the root is a cut vertex iff it has >= 2 DFS children.
    NodeId root_children = 0;
    for (NodeId w : g.neighbors_of(root, scratch)) {
      if (parent[w] == root) ++root_children;
    }
    is_cut[root] = root_children >= 2;
  }

  std::vector<NodeId> cuts;
  for (NodeId v = 0; v < n; ++v) {
    if (is_cut[v]) cuts.push_back(v);
  }
  return cuts;
}

bool is_biconnected(const Topology& g) {
  return g.node_count() >= 3 && is_connected(g) &&
         articulation_points(g).empty();
}

bool is_bipartite(const Topology& g) {
  std::vector<int> side(g.node_count(), -1);
  std::queue<NodeId> queue;
  std::vector<NodeId> scratch;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (side[start] != -1) continue;
    side[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId w : g.neighbors_of(u, scratch)) {
        if (side[w] == -1) {
          side[w] = 1 - side[u];
          queue.push(w);
        } else if (side[w] == side[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

int girth(const Topology& g) {
  // For each node, BFS until a cross/back edge closes a cycle through it.
  int best = -1;
  const NodeId n = g.node_count();
  std::vector<int> dist(n);
  std::vector<NodeId> parent(n);
  std::vector<NodeId> scratch;
  for (NodeId src = 0; src < n; ++src) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    std::queue<NodeId> queue;
    dist[src] = 0;
    queue.push(src);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId w : g.neighbors_of(u, scratch)) {
        if (dist[w] == -1) {
          dist[w] = dist[u] + 1;
          parent[w] = u;
          queue.push(w);
        } else if (w != parent[u]) {
          const int cycle_len = dist[u] + dist[w] + 1;
          if (best == -1 || cycle_len < best) best = cycle_len;
        }
      }
    }
  }
  return best;
}

std::vector<NodeId> scattered_nodes(const Topology& g, int min_separation,
                                    std::size_t max_count) {
  std::vector<NodeId> chosen;
  if (g.node_count() == 0 || max_count == 0) return chosen;
  std::vector<int> nearest(g.node_count(), -1);  // dist to closest chosen
  for (NodeId v = 0; v < g.node_count() && chosen.size() < max_count; ++v) {
    if (nearest[v] >= 0 && nearest[v] <= min_separation) continue;
    chosen.push_back(v);
    const std::vector<int> dist = bfs_distances(g, v);
    for (NodeId w = 0; w < g.node_count(); ++w) {
      if (dist[w] >= 0 && (nearest[w] < 0 || dist[w] < nearest[w])) {
        nearest[w] = dist[w];
      }
    }
  }
  return chosen;
}

}  // namespace lnc::graph
