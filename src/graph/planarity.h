// Planarity testing.
//
// Section 5 of the paper: "Theorem 1 extends to tasks with promises such
// as planar graphs, or 2-connected graphs. Indeed, the construction in
// the proof of the theorem preserves planarity and 2-connectivity."
// This module provides the measuring instrument for the planarity half:
//
//  * is_planar       — the left-right (de Fraysseix-Rosenstiehl) test in
//                      the formulation of Brandes' "The Left-Right
//                      Planarity Test": O(n + m), DFS orientation,
//                      lowpoint nesting order, and a stack of conflict
//                      pairs of back-edge intervals.
//  * has_k5_or_k33_minor_bruteforce — an independent oracle for small
//                      graphs (Kuratowski/Wagner: planar iff no K5 and no
//                      K3,3 minor), used by the property tests to
//                      cross-validate the fast test on random graphs.
#pragma once

#include "graph/graph.h"

namespace lnc::graph {

/// Left-right planarity test. Works on any simple graph (connected or
/// not; components are tested independently).
bool is_planar(const Graph& g);

/// Exhaustive minor check: true iff g contains a K5 or K3,3 minor.
/// Exponential — intended for graphs with at most ~12 nodes (tests only).
bool has_k5_or_k33_minor_bruteforce(const Graph& g);

/// Convenience: the Euler necessary conditions (m <= 3n-6, and m <= 2n-4
/// for triangle-free graphs). True never implies planar; false implies
/// non-planar. Used as a sanity cross-check in tests.
bool euler_bound_holds(const Graph& g);

}  // namespace lnc::graph
