#include "graph/ops.h"

#include <algorithm>

#include "util/assert.h"

namespace lnc::graph {

UnionResult disjoint_union(const std::vector<const Graph*>& parts) {
  UnionResult result;
  result.offsets.reserve(parts.size());
  NodeId total = 0;
  for (const Graph* part : parts) {
    LNC_EXPECTS(part != nullptr);
    result.offsets.push_back(total);
    total += part->node_count();
  }
  Graph::Builder b(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const NodeId off = result.offsets[i];
    for (const Edge& e : parts[i]->edges()) {
      b.add_edge(off + e.u, off + e.v);
    }
  }
  result.graph = b.build();
  return result;
}

DoubleSubdivision subdivide_edge_twice(const Graph& g, NodeId a, NodeId b) {
  LNC_EXPECTS(g.has_edge(a, b));
  const NodeId n = g.node_count();
  Graph::Builder builder(n + 2);
  for (const Edge& e : g.edges()) {
    if ((e.u == std::min(a, b)) && (e.v == std::max(a, b))) continue;
    builder.add_edge(e.u, e.v);
  }
  const NodeId first = n;
  const NodeId second = n + 1;
  builder.add_edge(a, first);
  builder.add_edge(first, second);
  builder.add_edge(second, b);
  return {builder.build(), first, second};
}

Graph subdivide_edge(const Graph& g, NodeId a, NodeId b) {
  LNC_EXPECTS(g.has_edge(a, b));
  const NodeId n = g.node_count();
  Graph::Builder builder(n + 1);
  for (const Edge& e : g.edges()) {
    if ((e.u == std::min(a, b)) && (e.v == std::max(a, b))) continue;
    builder.add_edge(e.u, e.v);
  }
  builder.add_edge(a, n);
  builder.add_edge(n, b);
  return builder.build();
}

Graph relabel(const Graph& g, const std::vector<NodeId>& permutation) {
  LNC_EXPECTS(permutation.size() == g.node_count());
  std::vector<bool> seen(g.node_count(), false);
  for (NodeId p : permutation) {
    LNC_EXPECTS(p < g.node_count());
    LNC_EXPECTS(!seen[p]);
    seen[p] = true;
  }
  Graph::Builder b(g.node_count());
  for (const Edge& e : g.edges()) {
    b.add_edge(permutation[e.u], permutation[e.v]);
  }
  return b.build();
}

Graph with_extra_edges(const Graph& g, const std::vector<Edge>& extra) {
  Graph::Builder b(g.node_count());
  for (const Edge& e : g.edges()) b.add_edge(e.u, e.v);
  for (const Edge& e : extra) b.add_edge(e.u, e.v);
  return b.build();
}

}  // namespace lnc::graph
