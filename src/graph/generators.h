// Graph families used across the experiments.
//
// The paper's hard instances are bounded-degree graphs under the promise
// F_k (degree <= k); rings/cycles carry the Linial and order-invariance
// experiments (E3, E5), random regular graphs and trees exercise the
// language checkers and the engine at scale.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace lnc::graph {

/// Cycle C_n, n >= 3. Node i is adjacent to (i±1) mod n. Degree 2.
Graph cycle(NodeId n);

/// Path P_n, n >= 1 (n-1 edges).
Graph path(NodeId n);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Star K_{1,n-1}: node 0 is the center.
Graph star(NodeId n);

/// w x h grid; node (r, c) has index r*w + c. Degree <= 4.
Graph grid(NodeId width, NodeId height);

/// w x h torus (grid with wraparound); requires w, h >= 3. Degree 4.
Graph torus(NodeId width, NodeId height);

/// d-dimensional hypercube on 2^d nodes; nodes adjacent iff indices differ
/// in exactly one bit. Degree d.
Graph hypercube(int dimensions);

/// Complete binary tree with `n` nodes (heap indexing). Degree <= 3.
Graph binary_tree(NodeId n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Spine nodes come first. Degree <= legs + 2.
Graph caterpillar(NodeId spine, NodeId legs);

/// The Petersen graph (3-regular, girth 5) — a classic small testbed.
Graph petersen();

/// Random d-regular simple graph on n nodes via pairing with restarts;
/// requires n*d even and d < n. Deterministic in `seed`.
Graph random_regular(NodeId n, NodeId degree, std::uint64_t seed);

/// Erdos-Renyi G(n, p) conditioned on max degree <= max_deg: edges are
/// sampled independently, and any edge that would push an endpoint past
/// max_deg is skipped. Deterministic in `seed`. This realizes the promise
/// F_k for random instances (the conditioning slightly biases the degree
/// distribution; experiments only need "some bounded-degree random graph").
Graph gnp_bounded(NodeId n, double p, NodeId max_deg, std::uint64_t seed);

/// The locally-sampleable random (<= degree)-regular graph: materializes
/// graph::implicit_random_regular_cycles (implicit.h) by querying its
/// neighbor sampler, so the implicit and materialized representations of
/// the same (n, degree, seed) are the same graph by construction. The
/// scenario registry's "random-regular" family builds through this;
/// random_regular above remains for callers wanting the pairing model.
Graph random_regular_cycles(NodeId n, NodeId degree, std::uint64_t seed);

/// The locally-sampleable degree-capped G(n, p): materializes
/// graph::implicit_gnp_hash (implicit.h). The scenario registry's "gnp"
/// family builds through this; gnp_bounded above remains for callers
/// wanting the sequential-stream model.
Graph gnp_hash(NodeId n, double p, NodeId max_deg, std::uint64_t seed);

/// Random spanning tree on n nodes (random Prufer sequence). Degree bound
/// is not enforced; for bounded-degree trees use random_tree_bounded.
Graph random_tree(NodeId n, std::uint64_t seed);

/// Random tree with maximum degree <= max_deg (>= 2): attaches each new
/// node to a uniformly random node that still has spare degree.
Graph random_tree_bounded(NodeId n, NodeId max_deg, std::uint64_t seed);

}  // namespace lnc::graph
