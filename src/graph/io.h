// Serialization: DOT (for visual inspection of glued instances) and a plain
// edge-list format (round-trippable, used by tests and example programs).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace lnc::graph {

/// Graphviz DOT. Optional labels: one string per node (empty = node index).
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<std::string>& labels = {});

/// Plain text: first line "n m", then m lines "u v".
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format; throws std::runtime_error on
/// malformed input (bad counts, out-of-range endpoints, self-loops).
Graph read_edge_list(std::istream& is);

}  // namespace lnc::graph
