#include "graph/graph.h"

#include <algorithm>

#include "util/assert.h"

namespace lnc::graph {

NodeId Graph::max_degree() const noexcept {
  NodeId best = 0;
  for (NodeId v = 0; v < node_count(); ++v) best = std::max(best, degree(v));
  return best;
}

NodeId Graph::min_degree() const noexcept {
  if (node_count() == 0) return 0;
  NodeId best = degree(0);
  for (NodeId v = 1; v < node_count(); ++v) best = std::min(best, degree(v));
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= node_count() || v >= node_count()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) result.push_back({u, v});
    }
  }
  return result;
}

Graph::Builder& Graph::Builder::reserve_nodes(NodeId count) {
  node_count_ = std::max(node_count_, count);
  return *this;
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v) {
  LNC_EXPECTS(u != v);
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  node_count_ = std::max(node_count_, static_cast<NodeId>(v + 1));
  return *this;
}

NodeId Graph::Builder::add_node() { return node_count_++; }

Graph Graph::Builder::build() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(node_count_) + 1, 0);
  for (const Edge& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(g.offsets_.back());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Per-node lists are sorted because edges_ was sorted by (u, v) and each
  // node receives its neighbors in increasing order of the other endpoint
  // only for the u-side; the v-side arrives ordered by u. Sort to be safe.
  for (NodeId v = 0; v < node_count_; ++v) {
    auto begin = g.adjacency_.begin() +
                 static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() +
               static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
  }

  node_count_ = 0;
  edges_.clear();
  return g;
}

}  // namespace lnc::graph
