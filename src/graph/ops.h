// Structural operations used by the derandomization construction:
//
//  * disjoint_union   — Claim 3 runs the decider over a union of hard
//                       instances H_1 ... H_nu;
//  * subdivide_edge   — Theorem 1 subdivides a chosen edge e_i incident to
//                       u_i twice, inserting nodes v_i and w_i;
//  * cycle-linking happens in core/glue.cpp on top of these primitives;
//  * relabel          — identity-space bookkeeping when instances are
//                       embedded into larger graphs.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace lnc::graph {

/// Result of a disjoint union: the combined graph plus, for each input
/// part, the offset its nodes were shifted by (part i's node v becomes
/// offsets[i] + v).
struct UnionResult {
  Graph graph;
  std::vector<NodeId> offsets;
};

UnionResult disjoint_union(const std::vector<const Graph*>& parts);

/// Result of subdividing one edge twice. The original edge {a, b} is
/// replaced by the path a - first - second - b; `first` is adjacent to a.
struct DoubleSubdivision {
  Graph graph;
  NodeId first = kInvalidNode;   // new node adjacent to a
  NodeId second = kInvalidNode;  // new node adjacent to b
};

/// Subdivides edge {a, b} twice (the Theorem-1 move: the two inserted nodes
/// v_i, w_i later receive the inter-instance linking edges, so the degree
/// bound k > 2 is respected: inserted nodes end with degree <= 3 <= k).
/// Original node indices are preserved; new nodes get indices n and n+1.
DoubleSubdivision subdivide_edge_twice(const Graph& g, NodeId a, NodeId b);

/// Subdivides edge {a, b} once; the new node has index n.
Graph subdivide_edge(const Graph& g, NodeId a, NodeId b);

/// Returns the graph with node v's index mapped through `permutation`
/// (new_index = permutation[old_index]); permutation must be a bijection.
Graph relabel(const Graph& g, const std::vector<NodeId>& permutation);

/// Adds extra edges to a copy of g.
Graph with_extra_edges(const Graph& g, const std::vector<Edge>& extra);

}  // namespace lnc::graph
