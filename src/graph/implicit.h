// Implicit topologies: neighborhoods synthesized on demand from
// (family, params, seed) — no CSR, no O(n + m) memory (ROADMAP "Implicit
// giga-scale topologies").
//
// Each family here is bit-identical to a materialized generator: the
// analytic families (cycle, path, grid, torus, hypercube, binary tree)
// reproduce generators.h edge for edge, and the randomized families
// (random_regular_cycles, gnp_hash) are DEFINED by their local sampler —
// the matching materialized generators in generators.h build the graph by
// querying the sampler, so at any n where both paths fit in RAM, balls
// collected through either are equal (tests/topology_test.cpp).
//
// Randomized families use seed-keyed invertible permutations / per-edge
// hashes rather than sequential RNG streams, because a node must be able
// to enumerate its neighbors without replaying a global generation order:
//  - random_regular_cycles: the union of floor(d/2) permutation 2-factors
//    (edges {v, pi_j(v)}, needing pi_j and pi_j^-1 locally — hence a
//    Feistel permutation, invertible both ways), plus a perfect matching
//    sigma(sigma^-1(v) XOR 1) when d is odd. Degrees are <= d and equal
//    to d except where cycles collide (the permutation model of random
//    regular graphs).
//  - gnp_hash: candidate edge {u,v} present iff a symmetric per-pair hash
//    clears the p-threshold AND the candidate ranks below the degree cap
//    on BOTH endpoints (candidates ranked by ascending neighbor index).
//    A neighbor query scans all n candidate endpoints, so this family is
//    validation-scale: O(n * degree) per query, not ball-bounded.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.h"
#include "graph/topology.h"

namespace lnc::graph {

/// A topology whose neighborhoods are computed, not stored. Adds the
/// degree metadata the scenario compiler needs for tuning (a CSR scan is
/// exactly what implicit execution exists to avoid).
class ImplicitTopology : public Topology {
 public:
  /// Hard upper bound on any node's degree.
  virtual NodeId degree_bound() const noexcept = 0;

  /// Analytic expected/typical degree — a tuning hint for
  /// local::OptimizationConfig, never a correctness input.
  virtual double mean_degree() const noexcept = 0;
};

/// Cycle on n >= 3 nodes (edges {i, i+1 mod n}) — generators.h cycle().
std::shared_ptr<const ImplicitTopology> implicit_cycle(NodeId n);

/// Path on n >= 1 nodes — generators.h path().
std::shared_ptr<const ImplicitTopology> implicit_path(NodeId n);

/// width x height grid, node (r, c) at index r*width + c — grid().
std::shared_ptr<const ImplicitTopology> implicit_grid(NodeId width,
                                                      NodeId height);

/// width x height torus (both >= 3), wraparound rows and columns —
/// torus().
std::shared_ptr<const ImplicitTopology> implicit_torus(NodeId width,
                                                       NodeId height);

/// dimensions-cube on 2^dimensions nodes, neighbors v XOR 2^k —
/// hypercube().
std::shared_ptr<const ImplicitTopology> implicit_hypercube(int dimensions);

/// Complete binary tree on n >= 1 nodes, node v > 0 linked to (v-1)/2 —
/// binary_tree().
std::shared_ptr<const ImplicitTopology> implicit_binary_tree(NodeId n);

/// The permutation model of a random (<= degree)-regular graph on n
/// nodes; degree < n, and n must be even when degree is odd (the perfect
/// matching pairs nodes up). Same (n, degree, seed) always yields the
/// same graph; random_regular_cycles() materializes it.
std::shared_ptr<const ImplicitTopology> implicit_random_regular_cycles(
    NodeId n, NodeId degree, std::uint64_t seed);

/// Degree-capped G(n, p) via symmetric per-edge hashing; p in [0, 1].
/// Same (n, p, max_degree, seed) always yields the same graph;
/// gnp_hash() materializes it. Validation-scale only (see file comment).
std::shared_ptr<const ImplicitTopology> implicit_gnp_hash(
    NodeId n, double edge_prob, NodeId max_degree, std::uint64_t seed);

/// Materializes any topology into CSR by querying neighbors_of for every
/// node — the reference the implicit path is bit-compared against, and
/// the build path for the locally-sampled families' materialized
/// generators (so the two representations cannot drift apart).
Graph materialize(const Topology& topology);

}  // namespace lnc::graph
