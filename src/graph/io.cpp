#include "graph/io.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace lnc::graph {

void write_dot(std::ostream& os, const Graph& g,
               const std::vector<std::string>& labels) {
  os << "graph G {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v;
    if (v < labels.size() && !labels[v].empty()) {
      os << " [label=\"" << labels[v] << "\"]";
    }
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
}

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> n >> m)) {
    throw std::runtime_error("read_edge_list: missing header");
  }
  Graph::Builder b(static_cast<NodeId>(n));
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0;
    std::size_t v = 0;
    if (!(is >> u >> v)) {
      throw std::runtime_error("read_edge_list: truncated edge list");
    }
    if (u >= n || v >= n) {
      throw std::runtime_error("read_edge_list: endpoint out of range");
    }
    if (u == v) {
      throw std::runtime_error("read_edge_list: self-loop");
    }
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return b.build();
}

}  // namespace lnc::graph
