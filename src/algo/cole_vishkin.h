// Cole-Vishkin 3-coloring of the oriented ring in O(log* n) rounds — the
// upper bound matching Linial's Omega(log* n) lower bound that the paper
// leans on (sections 1.1 and 4). Experiment E3 measures the executed round
// count against log*(n).
//
// Phase 1 (bit reduction): colors start as identities; each round a node
// compares its color with its successor's, finds the lowest differing bit
// index i, and re-colors to 2*i + bit_i(own). Palette shrinks from B bits
// to O(log B) per round, reaching {0..5} after ~log* B iterations (every
// node runs the same iteration count, precomputed from the public identity
// bit-length bound, so the algorithm stays uniform).
//
// Phase 2 (shrink 6 -> 3): three rounds; holders of color 5, then 4, then
// 3 re-color to the smallest free color in {0, 1, 2} (two ring neighbors
// block at most two).
#pragma once

#include "local/engine.h"

namespace lnc::local {
class NodeProgramFactory;
}

namespace lnc::algo {

class ColeVishkinFactory final : public local::NodeProgramFactory {
 public:
  /// id_bits: a public upper bound on identity bit-length (e.g. the bit
  /// length of n when identities are a permutation of 1..n). All nodes
  /// derive the same iteration budget from it.
  explicit ColeVishkinFactory(int id_bits);

  std::string name() const override;
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;

  /// Bit-reduction iterations scheduled for the given bound (the log*-like
  /// quantity: number of halvings until the palette is within {0..5}).
  static int reduction_iterations(int id_bits);

  int id_bits() const noexcept { return id_bits_; }

 private:
  int id_bits_;
};

/// Convenience driver: runs Cole-Vishkin on the canonical oriented cycle
/// instance and returns the engine result (colors in {0,1,2} and the exact
/// round count).
local::EngineResult run_cole_vishkin(const local::Instance& ring_instance,
                                     int id_bits);

}  // namespace lnc::algo
