// Distributed Moser-Tardos resampling for the LLL system of lang/lll.h
// (the paper cites Chung-Pettie-Su [6] for distributed LLL; section 4 uses
// the LLL relaxation as the second f-resilience example).
//
// Each phase:
//   1. detect bad events (one exchange of bits),
//   2. elect an independent set of violated events — a bad node wins when
//      its identity is minimal among bad nodes within distance 2 (two
//      events share variables iff their centers are within distance 2),
//   3. every winner's closed neighborhood resamples its variables.
//
// One phase corresponds to four LOCAL rounds (bit exchange, badness
// exchange, badness forwarding, resample command). The driver below runs
// phases at the graph level — equivalent information flow, with a global
// termination test that a real network would implement by a termination-
// detection wrapper; the measured quantity (phases until satisfied,
// experiment E11) is unaffected.
#pragma once

#include "local/instance.h"
#include "rand/coins.h"

namespace lnc::algo {

struct MoserTardosResult {
  local::Labeling assignment;  ///< final bits (may still violate if !success)
  int phases = 0;              ///< resampling phases executed
  bool success = false;        ///< true when no bad event remains
  std::size_t total_resamplings = 0;  ///< events resampled across phases
};

/// Runs distributed Moser-Tardos. Deterministic in (inst, coins).
MoserTardosResult run_moser_tardos(const local::Instance& inst,
                                   const rand::CoinProvider& coins,
                                   int max_phases = 10000);

/// The bad-event predicate of lang/lll.h evaluated directly on bits:
/// true iff v has >= 1 neighbor and all of N[v] carry the same bit.
bool lll_event_violated(const graph::Graph& g, graph::NodeId v,
                        const local::Labeling& bits);

}  // namespace lnc::algo
