#include "algo/rand_matching.h"

#include <vector>

#include "util/assert.h"

namespace lnc::algo {
namespace {

// Each phase is two engine rounds. At the start of a phase every unmatched
// node flips a role coin: PROPOSER or LISTENER. Proposers aim at one random
// available neighbor; listeners accept the best proposal addressed to them
// (highest draw, ties by identity). A proposer matches exactly when its
// target accepted it, and the target matches it symmetrically — roles make
// the "accepted while also being accepted elsewhere" race impossible.
//
// Message layouts ([0] is always the matched flag):
//   odd rounds  : [matched, role, proposal_target_id, draw, id]
//   even rounds : [matched, accepted_proposer_id]
constexpr std::uint64_t kRoleListener = 0;
constexpr std::uint64_t kRoleProposer = 1;

class MatchingProgram final : public local::NodeProgram {
 public:
  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr && "randomized matching needs coins");
    rng_ = env.rng;
    id_ = env.id;
    degree_ = env.degree;
    neighbor_available_.assign(degree_, true);
    neighbor_id_.assign(degree_, 0);
    return degree_ == 0;  // isolated nodes stay unmatched forever
  }

  void send(int round, local::MessageWriter& out) override {
    if (matched_) {
      const std::uint64_t words[] = {1, mate_id_, 0, 0, 0};
      out.append(words);
      return;
    }
    if (round % 2 == 1) {
      role_ = rng_->bernoulli(0.5) ? kRoleProposer : kRoleListener;
      proposal_target_ = role_ == kRoleProposer ? pick_target() : 0;
      draw_ = rng_->next_u64();
      const std::uint64_t words[] = {0, role_, proposal_target_, draw_, id_};
      out.append(words);
      return;
    }
    out.push(0);
    out.push(accepted_proposer_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    if (matched_) return true;  // the match was broadcast last round
    if (round % 2 == 1) {
      accepted_proposer_ = 0;
      std::uint64_t best_draw = 0;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        neighbor_available_[p] = msg[0] == 0;
        if (msg[0] != 0) continue;
        neighbor_id_[p] = msg[4];
        ids_known_ = true;
        if (role_ == kRoleListener && msg[1] == kRoleProposer &&
            msg[2] == id_) {
          const std::uint64_t their_draw = msg[3];
          const std::uint64_t their_id = msg[4];
          if (accepted_proposer_ == 0 || their_draw > best_draw ||
              (their_draw == best_draw && their_id > accepted_proposer_)) {
            accepted_proposer_ = their_id;
            best_draw = their_draw;
          }
        }
      }
      return false;
    }
    // Accept round.
    if (role_ == kRoleProposer && proposal_target_ != 0) {
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        if (msg[0] == 0 && msg[1] == id_) {
          // Only our proposal target could have accepted us.
          matched_ = true;
          mate_id_ = proposal_target_;
          return false;  // broadcast [1, mate] next round, then halt
        }
      }
    } else if (role_ == kRoleListener && accepted_proposer_ != 0) {
      matched_ = true;
      mate_id_ = accepted_proposer_;
      return false;
    }
    // Unmatched: halt once no neighbor is available (maximality reached).
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_available_[p]) return false;
    }
    return true;
  }

  local::Label output() const override { return matched_ ? mate_id_ : 0; }

  /// Back to the pre-init() state (init reassigns rng/id/degree/buffers).
  void reset() noexcept {
    ids_known_ = false;
    matched_ = false;
    role_ = kRoleListener;
    mate_id_ = 0;
    proposal_target_ = 0;
    accepted_proposer_ = 0;
    draw_ = 0;
  }

 private:
  /// Uniform random available neighbor's identity (0 when none, and in the
  /// very first phase while neighbor identities are still unknown).
  std::uint64_t pick_target() {
    if (!ids_known_) return 0;
    std::vector<std::uint64_t> candidates;
    candidates.reserve(degree_);
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_available_[p]) candidates.push_back(neighbor_id_[p]);
    }
    if (candidates.empty()) return 0;
    return candidates[rng_->next_below(candidates.size())];
  }

  rand::NodeRng* rng_ = nullptr;
  std::uint64_t id_ = 0;
  std::size_t degree_ = 0;
  bool ids_known_ = false;
  bool matched_ = false;
  std::uint64_t role_ = kRoleListener;
  std::uint64_t mate_id_ = 0;
  std::uint64_t proposal_target_ = 0;
  std::uint64_t accepted_proposer_ = 0;
  std::uint64_t draw_ = 0;
  std::vector<bool> neighbor_available_;
  std::vector<std::uint64_t> neighbor_id_;
};

}  // namespace

std::unique_ptr<local::NodeProgram> RandMatchingFactory::create() const {
  return std::make_unique<MatchingProgram>();
}

bool RandMatchingFactory::recreate(local::NodeProgram& program) const {
  auto* matching = dynamic_cast<MatchingProgram*>(&program);
  if (matching == nullptr) return false;
  matching->reset();
  return true;
}

local::EngineResult run_rand_matching(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      const stats::ThreadPool* pool) {
  RandMatchingFactory factory;
  local::EngineOptions options;
  options.coins = &coins;
  options.pool = pool;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
