#include "algo/rand_matching.h"

#include <algorithm>
#include <vector>

#include "local/vector_engine.h"
#include "util/assert.h"

namespace lnc::algo {
namespace {

// Each phase is two engine rounds. At the start of a phase every unmatched
// node flips a role coin: PROPOSER or LISTENER. Proposers aim at one random
// available neighbor; listeners accept the best proposal addressed to them
// (highest draw, ties by identity). A proposer matches exactly when its
// target accepted it, and the target matches it symmetrically — roles make
// the "accepted while also being accepted elsewhere" race impossible.
//
// Message layouts ([0] is always the matched flag):
//   odd rounds  : [matched, role, proposal_target_id, draw, id]
//   even rounds : [matched, accepted_proposer_id]
constexpr std::uint64_t kRoleListener = 0;
constexpr std::uint64_t kRoleProposer = 1;

class MatchingProgram final : public local::NodeProgram {
 public:
  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr && "randomized matching needs coins");
    rng_ = env.rng;
    id_ = env.id;
    degree_ = env.degree;
    neighbor_available_.assign(degree_, true);
    neighbor_id_.assign(degree_, 0);
    return degree_ == 0;  // isolated nodes stay unmatched forever
  }

  void send(int round, local::MessageWriter& out) override {
    if (matched_) {
      const std::uint64_t words[] = {1, mate_id_, 0, 0, 0};
      out.append(words);
      return;
    }
    if (round % 2 == 1) {
      role_ = rng_->bernoulli(0.5) ? kRoleProposer : kRoleListener;
      proposal_target_ = role_ == kRoleProposer ? pick_target() : 0;
      draw_ = rng_->next_u64();
      const std::uint64_t words[] = {0, role_, proposal_target_, draw_, id_};
      out.append(words);
      return;
    }
    out.push(0);
    out.push(accepted_proposer_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    if (matched_) return true;  // the match was broadcast last round
    if (round % 2 == 1) {
      accepted_proposer_ = 0;
      std::uint64_t best_draw = 0;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        // A silent port (crashed/lossy neighbor) carries no information;
        // the last known availability stands.
        if (msg.empty()) continue;
        neighbor_available_[p] = msg[0] == 0;
        if (msg[0] != 0) continue;
        neighbor_id_[p] = msg[4];
        ids_known_ = true;
        if (role_ == kRoleListener && msg[1] == kRoleProposer &&
            msg[2] == id_) {
          const std::uint64_t their_draw = msg[3];
          const std::uint64_t their_id = msg[4];
          if (accepted_proposer_ == 0 || their_draw > best_draw ||
              (their_draw == best_draw && their_id > accepted_proposer_)) {
            accepted_proposer_ = their_id;
            best_draw = their_draw;
          }
        }
      }
      return false;
    }
    // Accept round.
    if (role_ == kRoleProposer && proposal_target_ != 0) {
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        if (msg.empty()) continue;  // silent port: no acceptance heard
        if (msg[0] == 0 && msg[1] == id_) {
          // Only our proposal target could have accepted us.
          matched_ = true;
          mate_id_ = proposal_target_;
          return false;  // broadcast [1, mate] next round, then halt
        }
      }
    } else if (role_ == kRoleListener && accepted_proposer_ != 0) {
      matched_ = true;
      mate_id_ = accepted_proposer_;
      return false;
    }
    // Unmatched: halt once no neighbor is available (maximality reached).
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_available_[p]) return false;
    }
    return true;
  }

  local::Label output() const override { return matched_ ? mate_id_ : 0; }

  /// Back to the pre-init() state (init reassigns rng/id/degree/buffers).
  void reset() noexcept {
    ids_known_ = false;
    matched_ = false;
    role_ = kRoleListener;
    mate_id_ = 0;
    proposal_target_ = 0;
    accepted_proposer_ = 0;
    draw_ = 0;
  }

 private:
  /// Uniform random available neighbor's identity (0 when none, and in the
  /// very first phase while neighbor identities are still unknown).
  std::uint64_t pick_target() {
    if (!ids_known_) return 0;
    std::vector<std::uint64_t> candidates;
    candidates.reserve(degree_);
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_available_[p]) candidates.push_back(neighbor_id_[p]);
    }
    if (candidates.empty()) return 0;
    return candidates[rng_->next_below(candidates.size())];
  }

  rand::NodeRng* rng_ = nullptr;
  std::uint64_t id_ = 0;
  std::size_t degree_ = 0;
  bool ids_known_ = false;
  bool matched_ = false;
  std::uint64_t role_ = kRoleListener;
  std::uint64_t mate_id_ = 0;
  std::uint64_t proposal_target_ = 0;
  std::uint64_t accepted_proposer_ = 0;
  std::uint64_t draw_ = 0;
  std::vector<bool> neighbor_available_;
  std::vector<std::uint64_t> neighbor_id_;
};

/// SoA lockstep counterpart of MatchingProgram. Node state is flat
/// [trial * n + node]; the per-port availability/identity tables are flat
/// [trial * ports + port_base[node] + port] against shared CSR port
/// offsets. Draw sequences replicate the scalar send exactly: role coin,
/// then (proposers with known ids and a non-empty candidate list) the
/// target pick, then the competition draw. Halted unmatched nodes' scalar
/// draws are provably unread — every neighbor is matched and a matched
/// node's receive halts before scanning — so the vector backend skips
/// them without observable difference.
class MatchingVectorProgram final : public local::VectorProgram {
 public:
  std::string name() const override { return "rand-matching"; }

  void init(local::VectorBatch& batch) override {
    const auto& g = batch.instance().g;
    const std::uint32_t n = batch.nodes();
    const std::uint32_t trials = batch.trials();
    const std::size_t total = static_cast<std::size_t>(trials) * n;
    port_base_.resize(n + 1);
    port_base_[0] = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      port_base_[v + 1] = port_base_[v] + g.degree(v);
    }
    const std::size_t ports = port_base_[n];
    matched_.assign(total, 0);
    ids_known_.assign(total, 0);
    role_.assign(total, static_cast<std::uint8_t>(kRoleListener));
    mate_.assign(total, 0);
    target_.assign(total, 0);
    accepted_.assign(total, 0);
    draw_.assign(total, 0);
    avail_.assign(static_cast<std::size_t>(trials) * ports, 1);
    nid_.assign(static_cast<std::size_t>(trials) * ports, 0);
    matched_count_.assign(trials, 0);
    prev_matched_.resize(n);
    for (std::uint32_t t = 0; t < trials; ++t) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (g.degree(v) == 0) batch.set_halted(t, v);  // unmatched forever
      }
    }
  }

  void round(local::VectorBatch& batch, int round) override {
    const auto& g = batch.instance().g;
    const auto& ids = batch.instance().ids;
    const std::uint32_t n = batch.nodes();
    const std::size_t ports = port_base_[n];
    const bool odd = round % 2 == 1;
    batch.for_each_live_trial([&](std::uint32_t t) {
      const std::size_t base = batch.at(t, 0);
      std::uint8_t* matched = matched_.data() + base;
      std::uint8_t* known = ids_known_.data() + base;
      std::uint8_t* role = role_.data() + base;
      std::uint64_t* mate = mate_.data() + base;
      std::uint64_t* target = target_.data() + base;
      std::uint64_t* accepted = accepted_.data() + base;
      std::uint64_t* draw = draw_.data() + base;
      std::uint8_t* avail = avail_.data() + static_cast<std::size_t>(t) * ports;
      std::uint64_t* nid = nid_.data() + static_cast<std::size_t>(t) * ports;
      // Everyone sends: matched nodes 5 words always, unmatched nodes 5
      // in propose rounds and 2 in accept rounds.
      const std::uint64_t mc = matched_count_[t];
      batch.add_traffic(t, n, odd ? 5 * std::uint64_t{n} : 5 * mc + 2 * (n - mc));
      if (odd) {
        // Send pass: unmatched nodes flip the role coin, proposers pick a
        // target, everyone refreshes the competition draw.
        batch.for_each_active_node(t, [&](std::uint32_t v) {
          if (matched[v] != 0) return;
          auto& rng = batch.rng(t, v);
          role[v] = rng.bernoulli(0.5) ? static_cast<std::uint8_t>(kRoleProposer)
                                       : static_cast<std::uint8_t>(kRoleListener);
          target[v] = 0;
          if (role[v] == kRoleProposer && known[v] != 0) {
            candidates_.clear();
            for (std::size_t pp = port_base_[v]; pp < port_base_[v + 1]; ++pp) {
              if (avail[pp] != 0) candidates_.push_back(nid[pp]);
            }
            if (!candidates_.empty()) {
              target[v] = candidates_[rng.next_below(candidates_.size())];
            }
          }
          draw[v] = rng.next_u64();
        });
        batch.for_each_active_node(t, [&](std::uint32_t v) {
          if (matched[v] != 0) {
            batch.set_halted(t, v);  // the match was broadcast last round
            return;
          }
          accepted[v] = 0;
          std::uint64_t best_draw = 0;
          const auto nbrs = g.neighbors(v);
          for (std::size_t p = 0; p < nbrs.size(); ++p) {
            const auto u = nbrs[p];
            const std::size_t pp = port_base_[v] + p;
            avail[pp] = matched[u] == 0 ? 1 : 0;
            if (matched[u] != 0) continue;
            nid[pp] = ids[u];
            known[v] = 1;
            if (role[v] == kRoleListener && role[u] == kRoleProposer &&
                target[u] == ids[v]) {
              if (accepted[v] == 0 || draw[u] > best_draw ||
                  (draw[u] == best_draw && ids[u] > accepted[v])) {
                accepted[v] = ids[u];
                best_draw = draw[u];
              }
            }
          }
        });
        return;
      }
      // Accept round: matches form in place, so compare against the
      // round-start matched snapshot (the "sent" flags).
      std::copy(matched, matched + n, prev_matched_.begin());
      std::uint32_t new_matches = 0;
      batch.for_each_active_node(t, [&](std::uint32_t v) {
        if (matched[v] != 0) {
          batch.set_halted(t, v);
          return;
        }
        if (role[v] == kRoleProposer && target[v] != 0) {
          const auto nbrs = g.neighbors(v);
          for (std::size_t p = 0; p < nbrs.size(); ++p) {
            const auto u = nbrs[p];
            if (prev_matched_[u] == 0 && accepted[u] == ids[v]) {
              // Only our proposal target could have accepted us.
              matched[v] = 1;
              mate[v] = target[v];
              ++new_matches;
              return;  // broadcast [1, mate] next round, then halt
            }
          }
        } else if (role[v] == kRoleListener && accepted[v] != 0) {
          matched[v] = 1;
          mate[v] = accepted[v];
          ++new_matches;
          return;
        }
        // Unmatched: halt once no neighbor is available (maximality).
        for (std::size_t pp = port_base_[v]; pp < port_base_[v + 1]; ++pp) {
          if (avail[pp] != 0) return;
        }
        batch.set_halted(t, v);
      });
      matched_count_[t] += new_matches;
    });
  }

  void output(const local::VectorBatch& batch, std::uint32_t trial,
              local::Labeling& out) const override {
    const std::uint32_t n = batch.nodes();
    out.resize(n);
    const std::size_t base = batch.at(trial, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      out[v] = matched_[base + v] != 0 ? mate_[base + v] : 0;
    }
  }

  std::size_t footprint_bytes() const noexcept override {
    return matched_.capacity() + ids_known_.capacity() + role_.capacity() +
           avail_.capacity() + prev_matched_.capacity() +
           (mate_.capacity() + target_.capacity() + accepted_.capacity() +
            draw_.capacity() + nid_.capacity() + candidates_.capacity()) *
               sizeof(std::uint64_t) +
           (port_base_.capacity() + matched_count_.capacity()) *
               sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> port_base_;  // shared CSR port offsets, n + 1
  std::vector<std::uint8_t> matched_;     // [trial * n + node]
  std::vector<std::uint8_t> ids_known_;   // [trial * n + node]
  std::vector<std::uint8_t> role_;        // [trial * n + node]
  std::vector<std::uint64_t> mate_;       // [trial * n + node]
  std::vector<std::uint64_t> target_;     // [trial * n + node]
  std::vector<std::uint64_t> accepted_;   // [trial * n + node]
  std::vector<std::uint64_t> draw_;       // [trial * n + node]
  std::vector<std::uint8_t> avail_;       // [trial * ports + port]
  std::vector<std::uint64_t> nid_;        // [trial * ports + port]
  std::vector<std::uint32_t> matched_count_;  // per trial
  std::vector<std::uint8_t> prev_matched_;    // round-start snapshot
  std::vector<std::uint64_t> candidates_;     // pick_target scratch
};

}  // namespace

std::unique_ptr<local::NodeProgram> RandMatchingFactory::create() const {
  return std::make_unique<MatchingProgram>();
}

bool RandMatchingFactory::recreate(local::NodeProgram& program) const {
  auto* matching = dynamic_cast<MatchingProgram*>(&program);
  if (matching == nullptr) return false;
  matching->reset();
  return true;
}

std::unique_ptr<local::VectorProgram> RandMatchingFactory::create_vector()
    const {
  return std::make_unique<MatchingVectorProgram>();
}

local::EngineResult run_rand_matching(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      const stats::ThreadPool* pool) {
  RandMatchingFactory factory;
  local::EngineOptions options;
  options.coins = &coins;
  options.pool = pool;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
