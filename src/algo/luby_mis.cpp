#include "algo/luby_mis.h"

#include <algorithm>

#include "local/vector_engine.h"
#include "rand/philox.h"
#include "util/assert.h"

namespace lnc::algo {
namespace {

enum Status : std::uint64_t { kUndecided = 0, kIn = 1, kOut = 2 };

// Odd rounds exchange draws: [status, draw, id].
// Even rounds exchange join decisions: [status, joining].
class LubyProgram final : public local::NodeProgram {
 public:
  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr && "Luby's MIS is randomized");
    rng_ = env.rng;
    id_ = env.id;
    if (env.degree == 0) {
      status_ = kIn;  // isolated nodes join immediately
      return true;
    }
    return false;
  }

  void send(int round, local::MessageWriter& out) override {
    if (round % 2 == 1) {
      if (status_ == kUndecided) draw_ = rng_->next_u64();
      out.push(status_);
      out.push(draw_);
      out.push(id_);
      return;
    }
    out.push(status_);
    out.push(joining_ ? std::uint64_t{1} : std::uint64_t{0});
  }

  bool receive(int round, const local::Inbox& inbox) override {
    if (status_ != kUndecided) return true;
    if (round % 2 == 1) {
      joining_ = true;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        if (msg.empty()) continue;  // silent port (crashed/lossy neighbor)
        if (msg[0] != kUndecided) continue;
        const std::uint64_t their_draw = msg[1];
        const std::uint64_t their_id = msg[2];
        if (their_draw > draw_ ||
            (their_draw == draw_ && their_id > id_)) {
          joining_ = false;
          break;
        }
      }
      return false;
    }
    if (joining_) {
      status_ = kIn;
      return false;  // broadcast kIn next round, then halt
    }
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const auto msg = inbox[p];
      if (msg.empty()) continue;  // silent port (crashed/lossy neighbor)
      if (msg[0] == kUndecided && msg[1] == 1) {
        status_ = kOut;
        return false;  // a neighbor joined this phase
      }
      if (msg[0] == kIn) {
        status_ = kOut;
        return false;  // a neighbor joined in an earlier phase
      }
    }
    return false;
  }

  local::Label output() const override { return status_ == kIn ? 1 : 0; }

  /// Back to the pre-init() state (init reassigns rng and id).
  void reset() noexcept {
    draw_ = 0;
    joining_ = false;
    status_ = kUndecided;
  }

 private:
  rand::NodeRng* rng_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t draw_ = 0;
  bool joining_ = false;
  Status status_ = kUndecided;
};

/// SoA lockstep counterpart of LubyProgram. A "message" is a read of the
/// sender's round-start state: draws are refreshed for every undecided
/// node before the odd receive pass (the send barrier), and the even pass
/// compares against a per-trial status snapshot because kIn/kOut flips
/// happen in place during that same pass.
///
/// The per-node state stays trial-major — [trial * n + node] — matching
/// the rest of the vector backend: each trial's n-node window fits low
/// cache levels, which matters because neighbor reads on random graphs
/// are scattered (a node-major [node * B + trial] layout was measured
/// ~1.8x slower here for exactly that reason — it blows the working set
/// up by the batch width).
class LubyVectorProgram final : public local::VectorProgram {
 public:
  std::string name() const override { return "luby-mis"; }

  void init(local::VectorBatch& batch) override {
    const auto& g = batch.instance().g;
    const std::uint32_t n = batch.nodes();
    const std::size_t total = static_cast<std::size_t>(batch.trials()) * n;
    status_.assign(total, static_cast<std::uint8_t>(kUndecided));
    draws_.resize(total);
    joining_.resize(total);
    prev_status_.resize(n);
    for (std::uint32_t t = 0; t < batch.trials(); ++t) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (g.degree(v) == 0) {
          status_[batch.at(t, v)] = static_cast<std::uint8_t>(kIn);
          batch.set_halted(t, v);  // isolated nodes join immediately
        }
      }
    }
  }

  void round(local::VectorBatch& batch, int round) override {
    const auto& g = batch.instance().g;
    const auto& ids = batch.instance().ids;
    const std::uint32_t n = batch.nodes();
    const bool odd = round % 2 == 1;
    batch.for_each_live_trial([&](std::uint32_t t) {
      // Every node broadcasts: [status, draw, id] odd, [status, joining]
      // even — halted relays included.
      batch.add_traffic(t, n, odd ? 3 * std::uint64_t{n} : 2 * std::uint64_t{n});
      const std::size_t base = batch.at(t, 0);
      std::uint8_t* status = status_.data() + base;
      std::uint64_t* draws = draws_.data() + base;
      std::uint8_t* joining = joining_.data() + base;
      if (odd) {
        // Send pass: undecided nodes refresh their competition draw. The
        // draws are gathered and filled through the bulk philox kernel
        // (rand/philox.h) — bit-identical to per-node next_u64() calls,
        // several times the serial throughput.
        pending_.clear();
        pending_hi_.clear();
        pending_lo_.clear();
        batch.for_each_active_node(t, [&](std::uint32_t v) {
          if (status[v] == kUndecided) {
            local::VecRng& rng = batch.rng(t, v);
            pending_.push_back(v);
            pending_hi_.push_back(rng.identity);
            pending_lo_.push_back(rng.counter++);
          }
        });
        pending_out_.resize(pending_.size());
        if (!pending_.empty()) {
          rand::philox_u64_batch(batch.rng(t, pending_[0]).key,
                                 pending_hi_.data(), pending_lo_.data(),
                                 pending_out_.data(), pending_.size());
          for (std::size_t p = 0; p < pending_.size(); ++p) {
            draws[pending_[p]] = pending_out_[p];
          }
        }
        batch.for_each_active_node(t, [&](std::uint32_t v) {
          if (status[v] != kUndecided) {
            batch.set_halted(t, v);  // decided last phase; announced, halts
            return;
          }
          std::uint8_t joins = 1;
          for (const auto u : g.neighbors(v)) {
            if (status[u] != kUndecided) continue;
            if (draws[u] > draws[v] ||
                (draws[u] == draws[v] && ids[u] > ids[v])) {
              joins = 0;
              break;
            }
          }
          joining[v] = joins;
        });
        return;
      }
      std::copy(status, status + n, prev_status_.begin());
      batch.for_each_active_node(t, [&](std::uint32_t v) {
        if (status[v] != kUndecided) {
          batch.set_halted(t, v);
          return;
        }
        if (joining[v] != 0) {
          status[v] = static_cast<std::uint8_t>(kIn);
          return;  // broadcast kIn next round, then halt
        }
        for (const auto u : g.neighbors(v)) {
          if ((prev_status_[u] == kUndecided && joining[u] != 0) ||
              prev_status_[u] == kIn) {
            status[v] = static_cast<std::uint8_t>(kOut);
            return;  // a neighbor joined this phase or an earlier one
          }
        }
      });
    });
  }

  void output(const local::VectorBatch& batch, std::uint32_t trial,
              local::Labeling& out) const override {
    const std::uint32_t n = batch.nodes();
    out.resize(n);
    const std::uint8_t* status = status_.data() + batch.at(trial, 0);
    for (std::uint32_t v = 0; v < n; ++v) out[v] = status[v] == kIn ? 1 : 0;
  }

  std::size_t footprint_bytes() const noexcept override {
    return status_.capacity() + joining_.capacity() + prev_status_.capacity() +
           draws_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint8_t> status_;    // [trial * n + node]
  std::vector<std::uint64_t> draws_;    // [trial * n + node]
  std::vector<std::uint8_t> joining_;   // [trial * n + node]
  std::vector<std::uint8_t> prev_status_;  // round-start snapshot, one trial
  std::vector<std::uint32_t> pending_;     // draw-pass gather: nodes...
  std::vector<std::uint64_t> pending_hi_;  // ...their stream identities...
  std::vector<std::uint64_t> pending_lo_;  // ...and next draw indices
  std::vector<std::uint64_t> pending_out_;
};

}  // namespace

std::unique_ptr<local::NodeProgram> LubyMisFactory::create() const {
  return std::make_unique<LubyProgram>();
}

bool LubyMisFactory::recreate(local::NodeProgram& program) const {
  auto* luby = dynamic_cast<LubyProgram*>(&program);
  if (luby == nullptr) return false;
  luby->reset();
  return true;
}

std::unique_ptr<local::VectorProgram> LubyMisFactory::create_vector() const {
  return std::make_unique<LubyVectorProgram>();
}

local::EngineResult run_luby_mis(const local::Instance& inst,
                                 const rand::CoinProvider& coins,
                                 const stats::ThreadPool* pool) {
  LubyMisFactory factory;
  local::EngineOptions options;
  options.coins = &coins;
  options.pool = pool;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
