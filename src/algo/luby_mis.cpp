#include "algo/luby_mis.h"

#include "util/assert.h"

namespace lnc::algo {
namespace {

enum Status : std::uint64_t { kUndecided = 0, kIn = 1, kOut = 2 };

// Odd rounds exchange draws: [status, draw, id].
// Even rounds exchange join decisions: [status, joining].
class LubyProgram final : public local::NodeProgram {
 public:
  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr && "Luby's MIS is randomized");
    rng_ = env.rng;
    id_ = env.id;
    if (env.degree == 0) {
      status_ = kIn;  // isolated nodes join immediately
      return true;
    }
    return false;
  }

  void send(int round, local::MessageWriter& out) override {
    if (round % 2 == 1) {
      if (status_ == kUndecided) draw_ = rng_->next_u64();
      out.push(status_);
      out.push(draw_);
      out.push(id_);
      return;
    }
    out.push(status_);
    out.push(joining_ ? std::uint64_t{1} : std::uint64_t{0});
  }

  bool receive(int round, const local::Inbox& inbox) override {
    if (status_ != kUndecided) return true;
    if (round % 2 == 1) {
      joining_ = true;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const auto msg = inbox[p];
        if (msg[0] != kUndecided) continue;
        const std::uint64_t their_draw = msg[1];
        const std::uint64_t their_id = msg[2];
        if (their_draw > draw_ ||
            (their_draw == draw_ && their_id > id_)) {
          joining_ = false;
          break;
        }
      }
      return false;
    }
    if (joining_) {
      status_ = kIn;
      return false;  // broadcast kIn next round, then halt
    }
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const auto msg = inbox[p];
      if (msg[0] == kUndecided && msg[1] == 1) {
        status_ = kOut;
        return false;  // a neighbor joined this phase
      }
      if (msg[0] == kIn) {
        status_ = kOut;
        return false;  // a neighbor joined in an earlier phase
      }
    }
    return false;
  }

  local::Label output() const override { return status_ == kIn ? 1 : 0; }

  /// Back to the pre-init() state (init reassigns rng and id).
  void reset() noexcept {
    draw_ = 0;
    joining_ = false;
    status_ = kUndecided;
  }

 private:
  rand::NodeRng* rng_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t draw_ = 0;
  bool joining_ = false;
  Status status_ = kUndecided;
};

}  // namespace

std::unique_ptr<local::NodeProgram> LubyMisFactory::create() const {
  return std::make_unique<LubyProgram>();
}

bool LubyMisFactory::recreate(local::NodeProgram& program) const {
  auto* luby = dynamic_cast<LubyProgram*>(&program);
  if (luby == nullptr) return false;
  luby->reset();
  return true;
}

local::EngineResult run_luby_mis(const local::Instance& inst,
                                 const rand::CoinProvider& coins,
                                 const stats::ThreadPool* pool) {
  LubyMisFactory factory;
  local::EngineOptions options;
  options.coins = &coins;
  options.pool = pool;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
