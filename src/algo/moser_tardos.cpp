#include "algo/moser_tardos.h"

#include <vector>

#include "util/assert.h"

namespace lnc::algo {

bool lll_event_violated(const graph::Graph& g, graph::NodeId v,
                        const local::Labeling& bits) {
  const auto nbrs = g.neighbors(v);
  if (nbrs.empty()) return false;
  for (graph::NodeId w : nbrs) {
    if (bits[w] != bits[v]) return false;
  }
  return true;
}

MoserTardosResult run_moser_tardos(const local::Instance& inst,
                                   const rand::CoinProvider& coins,
                                   int max_phases) {
  inst.validate();
  const graph::NodeId n = inst.node_count();
  MoserTardosResult result;

  // Per-node draw counters: each node owns its variable and resamples it
  // with its own private coins (identity-keyed, like every algorithm here).
  std::vector<rand::NodeRng> rngs;
  rngs.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) rngs.emplace_back(coins, inst.ids[v]);

  result.assignment.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    result.assignment[v] = rngs[v].next_below(2);
  }

  std::vector<char> bad(n, 0);
  std::vector<char> winner(n, 0);
  for (result.phases = 0; result.phases < max_phases; ++result.phases) {
    // (1) Detect violated events.
    bool any_bad = false;
    for (graph::NodeId v = 0; v < n; ++v) {
      bad[v] = lll_event_violated(inst.g, v, result.assignment) ? 1 : 0;
      any_bad = any_bad || bad[v] != 0;
    }
    if (!any_bad) {
      result.success = true;
      return result;
    }

    // (2) Elect winners: bad nodes whose identity is minimal among bad
    // nodes within distance 2 (information available after two more
    // exchange rounds in the message-passing rendition).
    for (graph::NodeId v = 0; v < n; ++v) {
      winner[v] = 0;
      if (bad[v] == 0) continue;
      bool minimal = true;
      const ident::Identity my_id = inst.ids[v];
      for (graph::NodeId u : inst.g.neighbors(v)) {
        if (bad[u] != 0 && inst.ids[u] < my_id) {
          minimal = false;
          break;
        }
        if (!minimal) break;
        for (graph::NodeId w : inst.g.neighbors(u)) {
          if (w != v && bad[w] != 0 && inst.ids[w] < my_id) {
            minimal = false;
            break;
          }
        }
        if (!minimal) break;
      }
      winner[v] = minimal ? 1 : 0;
    }

    // (3) Winners' closed neighborhoods resample. Winners are pairwise at
    // distance >= 3, so the resample sets are disjoint and each variable
    // is redrawn at most once per phase.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (winner[v] == 0) continue;
      ++result.total_resamplings;
      result.assignment[v] = rngs[v].next_below(2);
      for (graph::NodeId u : inst.g.neighbors(v)) {
        result.assignment[u] = rngs[u].next_below(2);
      }
    }
  }

  result.success = false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (lll_event_violated(inst.g, v, result.assignment)) return result;
  }
  result.success = true;
  return result;
}

}  // namespace lnc::algo
