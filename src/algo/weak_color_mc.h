// Monte-Carlo weak 2-coloring in a CONSTANT number of rounds.
//
// Weak coloring is the paper's example (after Naor-Stockmeyer) of a task
// both constructible and decidable in constant time (section 2.2.2). Here
// we give the natural constant-round Monte-Carlo construction: start from
// a uniform bit; for R fix-up rounds, any node whose entire neighborhood
// agrees with it resamples its bit. For bounded degree the per-node
// failure probability decays geometrically in R, so the algorithm has
// success probability r(R) < 1 — exactly the "randomized Monte-Carlo
// construction algorithm for a language in LD" premise of the original
// derandomization theorem, and a second construction algorithm for the
// Theorem-1 experiments besides the uniform coloring.
#pragma once

#include "local/engine.h"

namespace lnc::algo {

class WeakColorMcFactory final : public local::NodeProgramFactory {
 public:
  /// fixup_rounds R >= 0: total engine rounds are R + 1 (one round to see
  /// the initial bits, R resampling rounds).
  explicit WeakColorMcFactory(int fixup_rounds);

  std::string name() const override;
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;
  std::unique_ptr<local::VectorProgram> create_vector() const override;

 private:
  int fixup_rounds_;
};

local::EngineResult run_weak_color_mc(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      int fixup_rounds);

}  // namespace lnc::algo
