#include "algo/greedy_by_id.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace lnc::algo {
namespace {

// Message layout: [decided_flag, value, id]; `value` is the color (or MIS
// membership) once decided, meaningless before.
constexpr std::uint64_t kUndecided = 0;
constexpr std::uint64_t kDecided = 1;

class GreedyProgram : public local::NodeProgram {
 public:
  bool init(const local::NodeEnv& env) override {
    id_ = env.id;
    degree_ = env.degree;
    neighbor_decided_.assign(degree_, false);
    neighbor_value_.assign(degree_, 0);
    neighbor_id_.assign(degree_, 0);
    return false;
  }

  void send(int /*round*/, local::MessageWriter& out) override {
    out.push(decided_ ? kDecided : kUndecided);
    out.push(value_);
    out.push(id_);
  }

  bool receive(int /*round*/, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const auto msg = inbox[p];
      neighbor_decided_[p] = msg[0] == kDecided;
      neighbor_value_[p] = msg[1];
      neighbor_id_[p] = msg[2];
    }
    if (decided_) return true;  // one extra round to broadcast the decision
    bool local_min = true;
    for (std::size_t p = 0; p < degree_; ++p) {
      if (!neighbor_decided_[p] && neighbor_id_[p] < id_) {
        local_min = false;
        break;
      }
    }
    if (local_min) {
      value_ = decide();
      decided_ = true;
    }
    return false;  // stay one more round so neighbors observe the decision
  }

  local::Label output() const override { return value_; }

  /// Back to the pre-init() state (init reassigns the identity, degree,
  /// and neighbor tables; the decision state must be cleared here).
  void reset() noexcept {
    decided_ = false;
    value_ = 0;
  }

 protected:
  /// The greedy decision given the decided neighbors' values.
  virtual std::uint64_t decide() const = 0;

  std::uint64_t id_ = 0;
  std::size_t degree_ = 0;
  bool decided_ = false;
  std::uint64_t value_ = 0;
  std::vector<bool> neighbor_decided_;
  std::vector<std::uint64_t> neighbor_value_;
  std::vector<std::uint64_t> neighbor_id_;
};

class GreedyColoringProgram final : public GreedyProgram {
 protected:
  std::uint64_t decide() const override {
    // Smallest color not used by a decided neighbor (mex); at most degree
    // neighbors block, so the result is <= degree <= Delta.
    std::vector<std::uint64_t> used;
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_decided_[p]) used.push_back(neighbor_value_[p]);
    }
    std::sort(used.begin(), used.end());
    std::uint64_t color = 0;
    for (std::uint64_t u : used) {
      if (u == color) ++color;
      else if (u > color) break;
    }
    return color;
  }
};

class GreedyMisProgram final : public GreedyProgram {
 protected:
  std::uint64_t decide() const override {
    for (std::size_t p = 0; p < degree_; ++p) {
      if (neighbor_decided_[p] && neighbor_value_[p] == 1) return 0;
    }
    return 1;
  }
};

}  // namespace

std::unique_ptr<local::NodeProgram> GreedyColoringFactory::create() const {
  return std::make_unique<GreedyColoringProgram>();
}

bool GreedyColoringFactory::recreate(local::NodeProgram& program) const {
  auto* greedy = dynamic_cast<GreedyColoringProgram*>(&program);
  if (greedy == nullptr) return false;
  greedy->reset();
  return true;
}

std::unique_ptr<local::NodeProgram> GreedyMisFactory::create() const {
  return std::make_unique<GreedyMisProgram>();
}

bool GreedyMisFactory::recreate(local::NodeProgram& program) const {
  auto* greedy = dynamic_cast<GreedyMisProgram*>(&program);
  if (greedy == nullptr) return false;
  greedy->reset();
  return true;
}

}  // namespace lnc::algo
