#include "algo/order_invariant.h"

#include <algorithm>

#include "ident/order.h"
#include "util/assert.h"
#include "util/math.h"

namespace lnc::algo {

OrderInvariantWrapper::OrderInvariantWrapper(const local::BallAlgorithm& inner)
    : inner_(&inner) {}

std::string OrderInvariantWrapper::name() const {
  return "order-invariant(" + inner_->name() + ")";
}

int OrderInvariantWrapper::radius() const { return inner_->radius(); }

local::Label OrderInvariantWrapper::compute(const local::View& view) const {
  // Collect the true identities of the ball members (respecting any outer
  // override so wrappers compose), canonicalize to ranks, re-run inner.
  const graph::NodeId size = view.ball->size();
  std::vector<ident::Identity> member_ids(size);
  for (graph::NodeId local = 0; local < size; ++local) {
    member_ids[local] = view.identity(local);
  }
  const std::vector<ident::Identity> canonical =
      ident::canonical_ranks(member_ids);
  local::View shadowed = view;
  shadowed.id_override = &canonical;
  return inner_->compute(shadowed);
}

std::uint64_t pattern_count(int window) {
  LNC_EXPECTS(window >= 1 && window <= 20);
  std::uint64_t f = 1;
  for (int i = 2; i <= window; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t pattern_index(std::span<const ident::Identity> values) {
  // Lehmer code: digit i counts later values smaller than values[i].
  const std::size_t w = values.size();
  LNC_EXPECTS(w >= 1 && w <= 20);
  std::uint64_t index = 0;
  for (std::size_t i = 0; i < w; ++i) {
    std::uint64_t smaller_later = 0;
    for (std::size_t j = i + 1; j < w; ++j) {
      if (values[j] < values[i]) ++smaller_later;
    }
    index = index * (w - i) + smaller_later;
  }
  return index;
}

RankPatternRingAlgorithm::RankPatternRingAlgorithm(
    int radius, std::vector<local::Label> table)
    : radius_(radius), table_(std::move(table)) {
  LNC_EXPECTS(radius >= 0);
  LNC_EXPECTS(table_.size() == pattern_count(2 * radius + 1));
}

std::string RankPatternRingAlgorithm::name() const {
  return "rank-pattern-ring(t=" + std::to_string(radius_) + ")";
}

std::vector<ident::Identity> RankPatternRingAlgorithm::ring_window(
    const local::View& view) {
  // Reconstruct (v-t, ..., v+t) in ring order from original indices: on the
  // canonical cycle, successor(v) = (v+1) mod n. The ball of radius t on a
  // cycle with n > 2t contains exactly those nodes.
  const graph::BallView& ball = *view.ball;
  const local::Instance& inst = *view.instance;
  const graph::NodeId n = inst.g.node_count();
  const int t = ball.radius();
  const graph::NodeId center = ball.to_original(0);
  LNC_EXPECTS(ball.size() == static_cast<graph::NodeId>(2 * t + 1));

  // local index of each original node in the ball
  std::vector<ident::Identity> window(
      static_cast<std::size_t>(2 * t + 1), 0);
  for (graph::NodeId local = 0; local < ball.size(); ++local) {
    const graph::NodeId orig = ball.to_original(local);
    // Signed offset of orig relative to center along the ring, in [-t, t].
    const graph::NodeId forward = (orig + n - center) % n;
    const int offset = forward <= static_cast<graph::NodeId>(t)
                           ? static_cast<int>(forward)
                           : static_cast<int>(forward) - static_cast<int>(n);
    LNC_ASSERT(offset >= -t && offset <= t);
    window[static_cast<std::size_t>(offset + t)] = view.identity(local);
  }
  return window;
}

local::Label RankPatternRingAlgorithm::compute(const local::View& view) const {
  const std::vector<ident::Identity> window = ring_window(view);
  return table_[pattern_index(window)];
}

std::vector<std::vector<local::Label>> enumerate_tables(int window,
                                                        int palette,
                                                        std::uint64_t first,
                                                        std::uint64_t limit) {
  const std::uint64_t entries = pattern_count(window);
  const std::uint64_t total = util::saturating_pow(
      static_cast<std::uint64_t>(palette), entries);
  std::vector<std::vector<local::Label>> tables;
  for (std::uint64_t index = first; index < total && tables.size() < limit;
       ++index) {
    std::vector<local::Label> table(entries);
    std::uint64_t rest = index;
    for (std::uint64_t e = 0; e < entries; ++e) {
      table[e] = rest % static_cast<std::uint64_t>(palette);
      rest /= static_cast<std::uint64_t>(palette);
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace lnc::algo
