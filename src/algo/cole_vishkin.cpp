#include "algo/cole_vishkin.h"

#include "util/assert.h"

namespace lnc::algo {
namespace {

/// Lowest bit position where a and b differ; a != b required.
int lowest_differing_bit(std::uint64_t a, std::uint64_t b) {
  LNC_ASSERT(a != b);
  const std::uint64_t diff = a ^ b;
  int i = 0;
  while (((diff >> i) & 1) == 0) ++i;
  return i;
}

class ColeVishkinProgram final : public local::NodeProgram {
 public:
  explicit ColeVishkinProgram(int reduction_iterations)
      : reduction_rounds_(reduction_iterations) {}

  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.succ_port.has_value() &&
                "Cole-Vishkin requires ring orientation");
    LNC_EXPECTS(env.degree == 2);
    succ_port_ = *env.succ_port;
    color_ = env.id;
    return false;
  }

  void send(int /*round*/, local::MessageWriter& out) override {
    out.push(color_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    if (round <= reduction_rounds_) {
      const std::uint64_t succ_color = inbox[succ_port_][0];
      const int i = lowest_differing_bit(color_, succ_color);
      color_ = static_cast<std::uint64_t>(2 * i) + ((color_ >> i) & 1);
      return false;
    }
    // Shrink rounds: reduction_rounds_+1 removes color 5, then 4, then 3.
    const auto target =
        static_cast<std::uint64_t>(5 - (round - reduction_rounds_ - 1));
    if (color_ == target) {
      const std::uint64_t a = inbox[0][0];
      const std::uint64_t b = inbox[1][0];
      std::uint64_t pick = 0;
      while (pick == a || pick == b) ++pick;
      LNC_ASSERT(pick <= 2);
      color_ = pick;
    }
    return target == 3;  // after removing color 3 the palette is {0,1,2}
  }

  local::Label output() const override { return color_; }

  /// Recyclable iff scheduled for the same iteration budget (init
  /// reassigns the port and color; nothing else carries state).
  bool reset(int reduction_rounds) noexcept {
    return reduction_rounds == reduction_rounds_;
  }

 private:
  int reduction_rounds_;
  std::uint32_t succ_port_ = 0;
  std::uint64_t color_ = 0;
};

}  // namespace

ColeVishkinFactory::ColeVishkinFactory(int id_bits) : id_bits_(id_bits) {
  LNC_EXPECTS(id_bits >= 1 && id_bits <= 64);
}

std::string ColeVishkinFactory::name() const {
  return "cole-vishkin(b=" + std::to_string(id_bits_) + ")";
}

int ColeVishkinFactory::reduction_iterations(int id_bits) {
  // Bit-length evolution: b -> bits(2*(b-1) + 1). The fixed point is 3 bits
  // (palette {0..7} -> colors 2i+b with i <= 2 -> values <= 5), after which
  // one more iteration lands inside {0..5} and stays. Count iterations
  // until the palette is contained in {0..5}.
  int iterations = 0;
  std::uint64_t max_color = (id_bits >= 64)
                                ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << id_bits) - 1;
  while (max_color > 5) {
    // Largest achievable next color: 2 * (highest bit index) + 1.
    int bits = 0;
    std::uint64_t v = max_color;
    while (v != 0) {
      v >>= 1;
      ++bits;
    }
    max_color = static_cast<std::uint64_t>(2 * (bits - 1)) + 1;
    ++iterations;
  }
  return iterations;
}

std::unique_ptr<local::NodeProgram> ColeVishkinFactory::create() const {
  return std::make_unique<ColeVishkinProgram>(
      reduction_iterations(id_bits_));
}

bool ColeVishkinFactory::recreate(local::NodeProgram& program) const {
  auto* cv = dynamic_cast<ColeVishkinProgram*>(&program);
  return cv != nullptr && cv->reset(reduction_iterations(id_bits_));
}

local::EngineResult run_cole_vishkin(const local::Instance& ring_instance,
                                     int id_bits) {
  ColeVishkinFactory factory(id_bits);
  local::EngineOptions options;
  options.grant_ring_orientation = true;
  return run_engine(ring_instance, factory, options);
}

}  // namespace lnc::algo
