#include "algo/color_reduction.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace lnc::algo {
namespace {

class ColorReductionProgram final : public local::NodeProgram {
 public:
  ColorReductionProgram(int initial_palette, int target_palette)
      : initial_palette_(initial_palette), target_palette_(target_palette) {}

  bool init(const local::NodeEnv& env) override {
    color_ = env.input;
    LNC_EXPECTS(color_ < static_cast<std::uint64_t>(initial_palette_));
    return initial_palette_ <= target_palette_;
  }

  void send(int /*round*/, local::MessageWriter& out) override {
    out.push(color_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    // Round r eliminates color (initial_palette - r).
    const auto eliminated =
        static_cast<std::uint64_t>(initial_palette_ - round);
    if (color_ == eliminated) {
      used_.clear();
      used_.reserve(inbox.size());
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        used_.push_back(inbox[p][0]);
      }
      std::sort(used_.begin(), used_.end());
      std::uint64_t pick = 0;
      for (std::uint64_t u : used_) {
        if (u == pick) ++pick;
        else if (u > pick) break;
      }
      LNC_ASSERT(pick < eliminated);
      color_ = pick;
    }
    return eliminated == static_cast<std::uint64_t>(target_palette_);
  }

  local::Label output() const override { return color_; }

 private:
  int initial_palette_;
  int target_palette_;
  std::uint64_t color_ = 0;
  std::vector<std::uint64_t> used_;  // recolor scratch, reused across rounds
};

}  // namespace

ColorReductionFactory::ColorReductionFactory(int initial_palette,
                                             int target_palette)
    : initial_palette_(initial_palette), target_palette_(target_palette) {
  LNC_EXPECTS(initial_palette >= 1);
  LNC_EXPECTS(target_palette >= 1);
}

std::string ColorReductionFactory::name() const {
  return "color-reduction(" + std::to_string(initial_palette_) + "->" +
         std::to_string(target_palette_) + ")";
}

std::unique_ptr<local::NodeProgram> ColorReductionFactory::create() const {
  return std::make_unique<ColorReductionProgram>(initial_palette_,
                                                 target_palette_);
}

int ColorReductionFactory::scheduled_rounds() const noexcept {
  return std::max(0, initial_palette_ - target_palette_);
}

local::EngineResult run_color_reduction(const local::Instance& inst,
                                        int initial_palette,
                                        int target_palette) {
  ColorReductionFactory factory(initial_palette, target_palette);
  return run_engine(inst, factory, {});
}

}  // namespace lnc::algo
