// The zero-round uniform random coloring (paper, section 1.1):
//
//   "the trivial randomized algorithm in which every node picks
//    independently uniformly at random a color 1, 2, or 3, enables to
//    guarantee that, with constant probability, a fraction 1 - eps of the
//    nodes are properly colored"
//
// This is the paper's witness that randomization helps for epsilon-slack
// relaxations (experiment E2), and simultaneously the Monte-Carlo
// construction algorithm C whose failure on f-resilient relaxations is
// boosted by the Theorem-1 glue (experiments E6-E8).
#pragma once

#include "local/runner.h"

namespace lnc::algo {

class UniformRandomColoring final : public local::RandomizedBallAlgorithm {
 public:
  explicit UniformRandomColoring(int colors);

  std::string name() const override;
  int radius() const override { return 0; }

  local::Label compute(const local::View& view,
                       const rand::CoinProvider& coins) const override;

  int colors() const noexcept { return colors_; }

 private:
  int colors_;
};

}  // namespace lnc::algo
