// Luby's randomized maximal independent set. Each phase (two engine
// rounds) every undecided node draws a fresh random word, joins the MIS
// when it strictly beats all undecided neighbors (ties broken by
// identity), and neighbors of joiners drop out. Expected O(log n) phases —
// the contrast class the paper situates constant-time computation against
// (experiment E10 measures the round growth).
#pragma once

#include "local/engine.h"

namespace lnc::algo {

class LubyMisFactory final : public local::NodeProgramFactory {
 public:
  std::string name() const override { return "luby-mis"; }
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;
  std::unique_ptr<local::VectorProgram> create_vector() const override;
};

/// Driver: runs Luby's MIS with the given coins; returns outputs (1 = in
/// the set) and the engine round count (2 rounds per phase).
local::EngineResult run_luby_mis(const local::Instance& inst,
                                 const rand::CoinProvider& coins,
                                 const stats::ThreadPool* pool = nullptr);

}  // namespace lnc::algo
