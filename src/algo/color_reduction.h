// Iterative color reduction: given a proper coloring with palette size
// `initial_palette` supplied as the node INPUT, remove one color class per
// round until the palette is `target_palette` (>= Delta + 1): each round
// the holders of the largest remaining color re-color to the smallest
// color unused in their neighborhood. Holders of the same color are
// non-adjacent (the coloring is proper), so simultaneous moves are safe.
// The classic Linial pipeline pairs this with a fast palette shrink; here
// it also serves as a second deterministic NodeProgram exercising inputs.
#pragma once

#include "local/engine.h"

namespace lnc::algo {

class ColorReductionFactory final : public local::NodeProgramFactory {
 public:
  ColorReductionFactory(int initial_palette, int target_palette);

  std::string name() const override;
  std::unique_ptr<local::NodeProgram> create() const override;

  /// Rounds the schedule will take: max(0, initial - target).
  int scheduled_rounds() const noexcept;

 private:
  int initial_palette_;
  int target_palette_;
};

/// Driver: inst.input must hold a proper coloring with colors in
/// [0, initial_palette). Returns the reduced coloring and round count.
local::EngineResult run_color_reduction(const local::Instance& inst,
                                        int initial_palette,
                                        int target_palette);

}  // namespace lnc::algo
