// Order-invariant algorithms (paper, section 2.1.1 and Claim 1).
//
// An algorithm is order-invariant when its output depends only on the
// RELATIVE ORDER of the identities in the node's view. Claim 1 (Appendix
// A, via Ramsey's theorem) shows every t-round algorithm under promise F_k
// can be replaced by an order-invariant one; the canonical direction is
// trivial and constructive: replace each identity in the ball by its rank.
// OrderInvariantWrapper implements exactly that A -> A' transformation.
//
// RankPatternRingAlgorithm is the *complete parameterization* of t-round
// order-invariant algorithms on oriented rings: the output can only be a
// function of the rank pattern of the 2t+1 identities seen along the ring,
// so a lookup table from pattern (Lehmer index) to color enumerates every
// such algorithm. Experiment E5 sweeps all of them to reproduce the
// Corollary-1 argument: on a consecutive-identity ring every one of them
// outputs the same color at >= n - (2t-1)... >= n - 2t nodes, so none is
// f-resilient for any fixed f.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "local/runner.h"

namespace lnc::algo {

/// A -> A': runs `inner` with identities replaced by their in-ball ranks
/// (1-based), making the composite order-invariant by construction.
class OrderInvariantWrapper final : public local::BallAlgorithm {
 public:
  explicit OrderInvariantWrapper(const local::BallAlgorithm& inner);

  std::string name() const override;
  int radius() const override;
  local::Label compute(const local::View& view) const override;

 private:
  const local::BallAlgorithm* inner_;
};

/// Number of rank patterns of w distinct values: w!.
std::uint64_t pattern_count(int window);

/// Lehmer index in [0, w!) of the rank pattern of `values` (distinct).
std::uint64_t pattern_index(std::span<const ident::Identity> values);

/// A t-round algorithm on the canonical oriented ring: reads the window
/// (v-t, ..., v, ..., v+t) in ring order, looks the window's rank pattern
/// up in `table`, and outputs table[pattern]. Every t-round order-invariant
/// ring algorithm with outputs in [0, palette) equals one such table.
class RankPatternRingAlgorithm final : public local::BallAlgorithm {
 public:
  /// table.size() must equal pattern_count(2*radius + 1).
  RankPatternRingAlgorithm(int radius, std::vector<local::Label> table);

  std::string name() const override;
  int radius() const override { return radius_; }
  local::Label compute(const local::View& view) const override;

  /// The window of identities in ring order around the center, using the
  /// ring's orientation (original indices give the sense of direction; the
  /// Linial bound holds even with that power, see paper section 1.3).
  static std::vector<ident::Identity> ring_window(const local::View& view);

 private:
  int radius_;
  std::vector<local::Label> table_;
};

/// All q^(w!) tables for window w = 2t+1 truncated to `limit` entries of an
/// enumeration (the full space is astronomically large for t >= 2; for
/// t = 1 and q = 3 it is 3^6 = 729 and enumerable exhaustively).
/// Enumerates tables in base-q counting order starting at index `first`.
std::vector<std::vector<local::Label>> enumerate_tables(int window,
                                                        int palette,
                                                        std::uint64_t first,
                                                        std::uint64_t limit);

}  // namespace lnc::algo
