#include "algo/weak_color_mc.h"

#include <algorithm>

#include "local/vector_engine.h"
#include "rand/philox.h"
#include "util/assert.h"

namespace lnc::algo {
namespace {

class WeakColorProgram final : public local::NodeProgram {
 public:
  explicit WeakColorProgram(int fixup_rounds) : total_rounds_(fixup_rounds + 1) {}

  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr);
    rng_ = env.rng;
    bit_ = rng_->next_below(2);
    if (env.degree == 0) return true;  // isolated nodes are unconstrained
    return false;
  }

  void send(int /*round*/, local::MessageWriter& out) override {
    out.push(bit_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    bool all_agree = true;
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      if (inbox[p].empty()) continue;  // silent port cannot disagree
      if (inbox[p][0] != bit_) {
        all_agree = false;
        break;
      }
    }
    if (all_agree && round < total_rounds_) {
      bit_ = rng_->next_below(2);  // resample; maybe the flip helps
    }
    return round >= total_rounds_;
  }

  local::Label output() const override { return bit_; }

  /// Recyclable iff configured for the same round count (init reassigns
  /// the rng and resamples the bit; nothing else carries state).
  bool reset(int total_rounds) noexcept { return total_rounds == total_rounds_; }

 private:
  int total_rounds_;
  rand::NodeRng* rng_ = nullptr;
  std::uint64_t bit_ = 0;
};

/// SoA lockstep counterpart of WeakColorProgram: one bit per (trial, node),
/// resampled in place against a per-trial snapshot of the round-start bits
/// (the snapshot IS the round's broadcast, so no messages materialize).
class WeakColorVectorProgram final : public local::VectorProgram {
 public:
  explicit WeakColorVectorProgram(int fixup_rounds)
      : total_rounds_(fixup_rounds + 1) {}

  std::string name() const override {
    return "weak-color-mc(R=" + std::to_string(total_rounds_ - 1) + ")";
  }

  void init(local::VectorBatch& batch) override {
    const auto& g = batch.instance().g;
    const std::uint32_t n = batch.nodes();
    bits_.resize(static_cast<std::size_t>(batch.trials()) * n);
    prev_.resize(n);
    draws_.resize(n);
    // Initial colors for the whole batch through the bulk philox kernel:
    // next_below(2) accepts its first draw unconditionally (the rejection
    // threshold for bound 2 is 0), so bit v IS draw 0 of stream (t, v)
    // taken mod 2 — identical to the scalar program's init.
    for (std::uint32_t t = 0; t < batch.trials(); ++t) {
      std::uint8_t* row = bits_.data() + batch.at(t, 0);
      if (n > 0) {
        local::VecRng& first = batch.rng(t, 0);
        pending_hi_.resize(n);
        pending_lo_.resize(n);
        for (std::uint32_t v = 0; v < n; ++v) {
          local::VecRng& rng = batch.rng(t, v);
          pending_hi_[v] = rng.identity;
          pending_lo_[v] = rng.counter++;
        }
        rand::philox_u64_batch(first.key, pending_hi_.data(),
                               pending_lo_.data(), draws_.data(), n);
      }
      for (std::uint32_t v = 0; v < n; ++v) {
        row[v] = static_cast<std::uint8_t>(draws_[v] & 1);
        if (g.degree(v) == 0) batch.set_halted(t, v);  // unconstrained
      }
    }
  }

  void round(local::VectorBatch& batch, int round) override {
    const auto& g = batch.instance().g;
    const std::uint32_t n = batch.nodes();
    batch.for_each_live_trial([&](std::uint32_t t) {
      // Every node (halted relays included) broadcasts its one-word bit.
      batch.add_traffic(t, n, n);
      std::uint8_t* row = bits_.data() + batch.at(t, 0);
      if (round >= total_rounds_) {
        // Past the fixup schedule nothing resamples; everyone halts.
        batch.for_each_active_node(
            t, [&](std::uint32_t v) { batch.set_halted(t, v); });
        return;
      }
      std::copy(row, row + n, prev_.begin());
      // Gather the all-agree nodes, then resample them in one bulk philox
      // call (bit-identical to per-node next_below(2); see init).
      pending_.clear();
      pending_hi_.clear();
      pending_lo_.clear();
      batch.for_each_active_node(t, [&](std::uint32_t v) {
        for (const auto u : g.neighbors(v)) {
          if (prev_[u] != prev_[v]) return;
        }
        local::VecRng& rng = batch.rng(t, v);
        pending_.push_back(v);
        pending_hi_.push_back(rng.identity);
        pending_lo_.push_back(rng.counter++);
      });
      if (!pending_.empty()) {
        rand::philox_u64_batch(batch.rng(t, pending_[0]).key,
                               pending_hi_.data(), pending_lo_.data(),
                               draws_.data(), pending_.size());
        for (std::size_t p = 0; p < pending_.size(); ++p) {
          row[pending_[p]] = static_cast<std::uint8_t>(draws_[p] & 1);
        }
      }
    });
  }

  void output(const local::VectorBatch& batch, std::uint32_t trial,
              local::Labeling& out) const override {
    const std::uint32_t n = batch.nodes();
    out.resize(n);
    const std::uint8_t* row = bits_.data() + batch.at(trial, 0);
    for (std::uint32_t v = 0; v < n; ++v) out[v] = row[v];
  }

  std::size_t footprint_bytes() const noexcept override {
    return bits_.capacity() + prev_.capacity();
  }

 private:
  int total_rounds_;
  std::vector<std::uint8_t> bits_;  // [trial * n + node]
  std::vector<std::uint8_t> prev_;  // round-start snapshot of one trial
  std::vector<std::uint64_t> draws_;      // bulk philox output buffer
  std::vector<std::uint32_t> pending_;    // resample gather: nodes...
  std::vector<std::uint64_t> pending_hi_;  // ...stream identities...
  std::vector<std::uint64_t> pending_lo_;  // ...and draw indices
};

}  // namespace

WeakColorMcFactory::WeakColorMcFactory(int fixup_rounds)
    : fixup_rounds_(fixup_rounds) {
  LNC_EXPECTS(fixup_rounds >= 0);
}

std::string WeakColorMcFactory::name() const {
  return "weak-color-mc(R=" + std::to_string(fixup_rounds_) + ")";
}

std::unique_ptr<local::NodeProgram> WeakColorMcFactory::create() const {
  return std::make_unique<WeakColorProgram>(fixup_rounds_);
}

bool WeakColorMcFactory::recreate(local::NodeProgram& program) const {
  auto* weak = dynamic_cast<WeakColorProgram*>(&program);
  return weak != nullptr && weak->reset(fixup_rounds_ + 1);
}

std::unique_ptr<local::VectorProgram> WeakColorMcFactory::create_vector()
    const {
  return std::make_unique<WeakColorVectorProgram>(fixup_rounds_);
}

local::EngineResult run_weak_color_mc(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      int fixup_rounds) {
  WeakColorMcFactory factory(fixup_rounds);
  local::EngineOptions options;
  options.coins = &coins;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
