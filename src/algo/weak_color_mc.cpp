#include "algo/weak_color_mc.h"

#include "util/assert.h"

namespace lnc::algo {
namespace {

class WeakColorProgram final : public local::NodeProgram {
 public:
  explicit WeakColorProgram(int fixup_rounds) : total_rounds_(fixup_rounds + 1) {}

  bool init(const local::NodeEnv& env) override {
    LNC_EXPECTS(env.rng != nullptr);
    rng_ = env.rng;
    bit_ = rng_->next_below(2);
    if (env.degree == 0) return true;  // isolated nodes are unconstrained
    return false;
  }

  void send(int /*round*/, local::MessageWriter& out) override {
    out.push(bit_);
  }

  bool receive(int round, const local::Inbox& inbox) override {
    bool all_agree = true;
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      if (inbox[p][0] != bit_) {
        all_agree = false;
        break;
      }
    }
    if (all_agree && round < total_rounds_) {
      bit_ = rng_->next_below(2);  // resample; maybe the flip helps
    }
    return round >= total_rounds_;
  }

  local::Label output() const override { return bit_; }

  /// Recyclable iff configured for the same round count (init reassigns
  /// the rng and resamples the bit; nothing else carries state).
  bool reset(int total_rounds) noexcept { return total_rounds == total_rounds_; }

 private:
  int total_rounds_;
  rand::NodeRng* rng_ = nullptr;
  std::uint64_t bit_ = 0;
};

}  // namespace

WeakColorMcFactory::WeakColorMcFactory(int fixup_rounds)
    : fixup_rounds_(fixup_rounds) {
  LNC_EXPECTS(fixup_rounds >= 0);
}

std::string WeakColorMcFactory::name() const {
  return "weak-color-mc(R=" + std::to_string(fixup_rounds_) + ")";
}

std::unique_ptr<local::NodeProgram> WeakColorMcFactory::create() const {
  return std::make_unique<WeakColorProgram>(fixup_rounds_);
}

bool WeakColorMcFactory::recreate(local::NodeProgram& program) const {
  auto* weak = dynamic_cast<WeakColorProgram*>(&program);
  return weak != nullptr && weak->reset(fixup_rounds_ + 1);
}

local::EngineResult run_weak_color_mc(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      int fixup_rounds) {
  WeakColorMcFactory factory(fixup_rounds);
  local::EngineOptions options;
  options.coins = &coins;
  return run_engine(inst, factory, options);
}

}  // namespace lnc::algo
