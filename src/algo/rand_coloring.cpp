#include "algo/rand_coloring.h"

#include "util/assert.h"

namespace lnc::algo {

UniformRandomColoring::UniformRandomColoring(int colors) : colors_(colors) {
  LNC_EXPECTS(colors >= 1);
}

std::string UniformRandomColoring::name() const {
  return "uniform-random-" + std::to_string(colors_) + "-coloring";
}

local::Label UniformRandomColoring::compute(
    const local::View& view, const rand::CoinProvider& coins) const {
  // Zero rounds: the node sees only itself and uses only its own coins.
  // NOTE: coins are addressed by the node's TRUE identity (the physical
  // random source), never by an order-invariant override.
  const ident::Identity self = view.instance->ids[view.ball->to_original(0)];
  rand::NodeRng rng(coins, self);
  return rng.next_below(static_cast<std::uint64_t>(colors_));
}

}  // namespace lnc::algo
