// Sequential-greedy simulations: local-minimum-first scheduling. A node
// decides once its identity is smaller than every undecided neighbor's.
// Correct on every graph, but the schedule chains: on the consecutive-
// identity ring the running time is Theta(n) — the baseline that makes the
// log*(n) of Cole-Vishkin and the 0 rounds of the random coloring visible
// in experiment E3.
#pragma once

#include "local/engine.h"

namespace lnc::algo {

/// Greedy (Delta+1)-coloring: a deciding node takes the smallest color
/// unused by its already-decided neighbors.
class GreedyColoringFactory final : public local::NodeProgramFactory {
 public:
  std::string name() const override { return "greedy-coloring-by-id"; }
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;
};

/// Greedy MIS: a deciding node joins iff no already-decided neighbor is in.
class GreedyMisFactory final : public local::NodeProgramFactory {
 public:
  std::string name() const override { return "greedy-mis-by-id"; }
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;
};

}  // namespace lnc::algo
