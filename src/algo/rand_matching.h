// Randomized maximal matching by propose-and-accept (Israeli-Itai style).
// Each phase (two engine rounds): every unmatched node proposes to a
// uniformly random unmatched neighbor; a proposal target picks one
// proposer (highest draw, ties by identity) and accepts; a mutual
// propose/accept pair matches. Expected O(log n) phases; output is the
// matched neighbor's identity (lang/matching.h checks it).
#pragma once

#include "local/engine.h"

namespace lnc::algo {

class RandMatchingFactory final : public local::NodeProgramFactory {
 public:
  std::string name() const override { return "rand-matching"; }
  std::unique_ptr<local::NodeProgram> create() const override;
  bool recreate(local::NodeProgram& program) const override;
  std::unique_ptr<local::VectorProgram> create_vector() const override;
};

local::EngineResult run_rand_matching(const local::Instance& inst,
                                      const rand::CoinProvider& coins,
                                      const stats::ThreadPool* pool = nullptr);

}  // namespace lnc::algo
