#include "stats/threadpool.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace lnc::stats {

ThreadPool::ThreadPool(unsigned thread_count) : thread_count_(thread_count) {
  if (thread_count_ == 0) {
    thread_count_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void ThreadPool::parallel_for_workers(
    std::uint64_t count,
    const std::function<void(unsigned, std::uint64_t)>& fn) const {
  if (count == 0) return;
  if (thread_count_ == 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  const std::uint64_t chunk = std::max<std::uint64_t>(
      1, count / (static_cast<std::uint64_t>(thread_count_) * 8));
  std::atomic<std::uint64_t> cursor{0};
  auto worker = [&](unsigned worker_index) {
    while (true) {
      const std::uint64_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::uint64_t end = std::min(count, begin + chunk);
      for (std::uint64_t i = begin; i < end; ++i) fn(worker_index, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(thread_count_);
  for (unsigned t = 0; t < thread_count_; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) t.join();
}

void ThreadPool::parallel_for(
    std::uint64_t count, const std::function<void(std::uint64_t)>& fn) const {
  parallel_for_workers(count,
                       [&fn](unsigned, std::uint64_t i) { fn(i); });
}

}  // namespace lnc::stats
