#include "stats/threadpool.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace lnc::stats {

ThreadPool::ThreadPool(unsigned thread_count) : thread_count_(thread_count) {
  if (thread_count_ == 0) {
    thread_count_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void ThreadPool::parallel_for(
    std::uint64_t count, const std::function<void(std::uint64_t)>& fn) const {
  if (count == 0) return;
  if (thread_count_ == 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::uint64_t chunk = std::max<std::uint64_t>(
      1, count / (static_cast<std::uint64_t>(thread_count_) * 8));
  std::atomic<std::uint64_t> cursor{0};
  auto worker = [&]() {
    while (true) {
      const std::uint64_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::uint64_t end = std::min(count, begin + chunk);
      for (std::uint64_t i = begin; i < end; ++i) fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(thread_count_);
  for (unsigned t = 0; t < thread_count_; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
}

}  // namespace lnc::stats
