#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lnc::stats {

double quantile_sorted(const std::vector<double>& sorted_samples, double q) {
  LNC_EXPECTS(!sorted_samples.empty());
  LNC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted_samples.size() == 1) return sorted_samples[0];
  const double pos = q * static_cast<double>(sorted_samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.median = quantile_sorted(samples, 0.5);
  s.q25 = quantile_sorted(samples, 0.25);
  s.q75 = quantile_sorted(samples, 0.75);
  return s;
}

std::vector<std::size_t> histogram(const std::vector<double>& samples,
                                   double lo, double hi,
                                   std::size_t buckets) {
  LNC_EXPECTS(buckets >= 1);
  LNC_EXPECTS(hi > lo);
  std::vector<std::size_t> bins(buckets, 0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double v : samples) {
    double offset = (v - lo) / width;
    if (offset < 0.0) offset = 0.0;
    auto bucket = static_cast<std::size_t>(offset);
    if (bucket >= buckets) bucket = buckets - 1;
    ++bins[bucket];
  }
  return bins;
}

}  // namespace lnc::stats
