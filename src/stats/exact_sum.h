// Exact summation of IEEE doubles — the mean-merge counterpart of the
// integer success tallies.
//
// Success-probability shards merge bit-identically because their tallies
// are integers; a value (mean) workload sums DOUBLES, and floating-point
// addition is not associative, so "shard sums added together" would not
// reproduce an unsharded run's sequential sum bit for bit. ExactSum
// restores the integer story: it accumulates doubles into a fixed-point
// superaccumulator wide enough to represent any sum of up to ~2^63
// finite doubles EXACTLY. The represented value is a pure function of
// the multiset of added values — independent of addition order, thread
// assignment, and shard partition — so merged shard accumulators equal
// the unsharded accumulator word for word, and the final rounding to
// double (correct to nearest, ties to even) is performed exactly once.
//
// Shard files serialize the accumulator as a sign-magnitude hex string
// (to_hex/from_hex), which is canonical: equal sums produce equal
// strings.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace lnc::stats {

class ExactSum {
 public:
  /// Fixed-point layout: bit 0 of word 0 has weight 2^-1074 (the least
  /// subnormal double), so every finite double is an integer multiple of
  /// the unit. The largest double tops out below 2^1024 — bit 2098 — and
  /// 64 extra headroom bits absorb 2^63 worst-case additions without
  /// overflow; 35 x 64 = 2240 bits covers both with margin. Stored as
  /// two's complement so mixed-sign accumulation is a plain carry chain.
  static constexpr int kWords = 35;
  static constexpr int kUnitExponent = -1074;

  /// Adds a finite double exactly (asserts on NaN/infinity).
  void add(double value) noexcept;

  /// Adds another accumulator exactly (big-integer addition).
  void merge(const ExactSum& other) noexcept;

  /// The accumulated sum rounded once to the nearest double (ties to
  /// even) — the only rounding in the pipeline.
  double value() const noexcept;

  bool is_zero() const noexcept;

  /// Word-for-word equality — equivalent to exact value equality.
  friend bool operator==(const ExactSum& a, const ExactSum& b) noexcept {
    return a.words_ == b.words_;
  }

  /// Canonical sign-magnitude hex serialization ("0", "1a2b...", or
  /// "-1a2b..."): the shard-file wire format. from_hex throws
  /// std::runtime_error on malformed or out-of-range input.
  std::string to_hex() const;
  static ExactSum from_hex(const std::string& text);

 private:
  void add_magnitude(std::uint64_t mantissa, int bit_offset,
                     bool negative) noexcept;

  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace lnc::stats
