// A minimal work-sharing thread pool for embarrassingly parallel trial
// loops. Workers pull chunks of a trial-index range off an atomic cursor;
// every trial derives its own seed, so there is no shared mutable state in
// the loop body and the parallel estimate equals the sequential one bit for
// bit (required: experiments must be reproducible across thread counts).
//
// parallel_for_workers additionally hands the body a stable worker index
// in [0, thread_count): results must depend only on the trial index, but
// the worker index lets the body pick a per-worker arena (scratch memory
// reused across trials — see local/batch_runner.h) without any locking.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>

namespace lnc::stats {

class ThreadPool {
 public:
  /// thread_count == 0 selects hardware_concurrency (>= 1).
  explicit ThreadPool(unsigned thread_count = 0);

  unsigned thread_count() const noexcept { return thread_count_; }

  /// Invokes fn(i) for every i in [0, count) across the pool; blocks until
  /// all invocations complete. fn must be thread-safe. Chunked scheduling
  /// amortizes the atomic fetch.
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t)>& fn) const;

  /// Invokes fn(worker, i) for every i in [0, count); `worker` is a stable
  /// index in [0, thread_count) identifying the executing thread. The
  /// assignment of trials to workers is nondeterministic — bodies must
  /// derive results from `i` alone and use `worker` only to select
  /// scratch storage.
  void parallel_for_workers(
      std::uint64_t count,
      const std::function<void(unsigned, std::uint64_t)>& fn) const;

 private:
  unsigned thread_count_;
};

}  // namespace lnc::stats
