#include "stats/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rand/splitmix.h"

namespace lnc::stats {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  return rand::mix_keys(base_seed, index);
}

Estimate finalize_estimate(std::uint64_t successes,
                           std::uint64_t trials) noexcept {
  Estimate e;
  e.trials = trials;
  e.successes = successes;
  e.p_hat = trials == 0
                ? 0.0
                : static_cast<double>(successes) / static_cast<double>(trials);
  e.ci = util::wilson_interval(successes, trials);
  return e;
}

MeanEstimate finalize_mean(std::span<const double> values) noexcept {
  MeanEstimate m;
  m.trials = values.size();
  if (values.empty()) return m;
  double sum = 0.0;
  for (double v : values) sum += v;
  m.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - m.mean) * (v - m.mean);
  m.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return m;
}

MeanEstimate finalize_mean_exact(const ExactSum& sum, const ExactSum& sum_sq,
                                 std::uint64_t trials) noexcept {
  MeanEstimate m;
  m.trials = trials;
  if (trials == 0) return m;
  const double total = sum.value();
  const double total_sq = sum_sq.value();
  m.mean = total / static_cast<double>(trials);
  if (trials > 1) {
    // Sum-of-squares variance, chosen because both sums shard-merge
    // exactly (the two-pass formula needs every value). The final
    // subtraction cancels when mean^2 dwarfs the variance — fine for
    // the bounded-magnitude statistics the registry ships (rounds,
    // sizes, per-trial volumes), but callers averaging ~1e9-magnitude
    // values with tiny spread should expect a degraded stddev.
    const double centered = total_sq - m.mean * total;
    m.stddev =
        std::sqrt(std::max(0.0, centered / static_cast<double>(trials - 1)));
  }
  return m;
}

Estimate estimate_probability(std::uint64_t trials, std::uint64_t base_seed,
                              const Trial& trial, const ThreadPool* pool) {
  const unsigned workers = pool != nullptr ? pool->thread_count() : 1;
  std::vector<WorkerCounter> counts(workers);
  auto body = [&](unsigned worker, std::uint64_t i) {
    if (trial(trial_seed(base_seed, i))) ++counts[worker].value;
  };
  if (pool != nullptr) {
    pool->parallel_for_workers(trials, body);
  } else {
    for (std::uint64_t i = 0; i < trials; ++i) body(0, i);
  }
  return finalize_estimate(sum_counters(counts), trials);
}

MeanEstimate estimate_mean(std::uint64_t trials, std::uint64_t base_seed,
                           const std::function<double(std::uint64_t)>& trial,
                           const ThreadPool* pool) {
  std::vector<double> values(trials);
  auto body = [&](std::uint64_t i) {
    values[i] = trial(trial_seed(base_seed, i));
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, body);
  } else {
    for (std::uint64_t i = 0; i < trials; ++i) body(i);
  }
  return finalize_mean(values);
}

}  // namespace lnc::stats
