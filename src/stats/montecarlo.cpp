#include "stats/montecarlo.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "rand/splitmix.h"

namespace lnc::stats {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  return rand::mix_keys(base_seed, index);
}

Estimate estimate_probability(std::uint64_t trials, std::uint64_t base_seed,
                              const Trial& trial, const ThreadPool* pool) {
  std::atomic<std::uint64_t> successes{0};
  auto body = [&](std::uint64_t i) {
    if (trial(trial_seed(base_seed, i))) {
      successes.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, body);
  } else {
    for (std::uint64_t i = 0; i < trials; ++i) body(i);
  }
  Estimate e;
  e.trials = trials;
  e.successes = successes.load();
  e.p_hat = trials == 0
                ? 0.0
                : static_cast<double>(e.successes) / static_cast<double>(trials);
  e.ci = util::wilson_interval(e.successes, trials);
  return e;
}

MeanEstimate estimate_mean(std::uint64_t trials, std::uint64_t base_seed,
                           const std::function<double(std::uint64_t)>& trial,
                           const ThreadPool* pool) {
  std::vector<double> values(trials);
  auto body = [&](std::uint64_t i) {
    values[i] = trial(trial_seed(base_seed, i));
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, body);
  } else {
    for (std::uint64_t i = 0; i < trials; ++i) body(i);
  }
  MeanEstimate m;
  m.trials = trials;
  if (trials == 0) return m;
  double sum = 0.0;
  for (double v : values) sum += v;
  m.mean = sum / static_cast<double>(trials);
  double sq = 0.0;
  for (double v : values) sq += (v - m.mean) * (v - m.mean);
  m.stddev = trials > 1
                 ? std::sqrt(sq / static_cast<double>(trials - 1))
                 : 0.0;
  return m;
}

}  // namespace lnc::stats
