#include "stats/exact_sum.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace lnc::stats {
namespace {

/// Negates a two's-complement multi-word integer in place.
void negate(std::array<std::uint64_t, ExactSum::kWords>& words) noexcept {
  std::uint64_t carry = 1;
  for (std::uint64_t& word : words) {
    word = ~word + carry;
    carry = (carry != 0 && word == 0) ? 1 : 0;
  }
}

bool is_negative(
    const std::array<std::uint64_t, ExactSum::kWords>& words) noexcept {
  return (words[ExactSum::kWords - 1] >> 63) != 0;
}

int hex_digit(char ch) {
  if (ch >= '0' && ch <= '9') return ch - '0';
  if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
  if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
  return -1;
}

}  // namespace

void ExactSum::add_magnitude(std::uint64_t mantissa, int bit_offset,
                             bool negative) noexcept {
  const int word = bit_offset / 64;
  const int bit = bit_offset % 64;
  const std::uint64_t lo = mantissa << bit;
  const std::uint64_t hi =
      bit == 0 ? 0 : (mantissa >> 1) >> (63 - bit);  // avoid UB shift by 64
  if (!negative) {
    std::uint64_t carry = 0;
    for (int i = word; i < kWords; ++i) {
      const std::uint64_t addend = i == word ? lo : (i == word + 1 ? hi : 0);
      const std::uint64_t partial = words_[i] + addend;
      const std::uint64_t overflow1 = partial < addend ? 1 : 0;
      words_[i] = partial + carry;
      const std::uint64_t overflow2 = words_[i] < partial ? 1 : 0;
      carry = overflow1 | overflow2;
      if (carry == 0 && i > word) break;
    }
  } else {
    std::uint64_t borrow = 0;
    for (int i = word; i < kWords; ++i) {
      const std::uint64_t subtrahend =
          i == word ? lo : (i == word + 1 ? hi : 0);
      const std::uint64_t partial = words_[i] - subtrahend;
      const std::uint64_t underflow1 = words_[i] < subtrahend ? 1 : 0;
      words_[i] = partial - borrow;
      const std::uint64_t underflow2 = partial < borrow ? 1 : 0;
      borrow = underflow1 | underflow2;
      if (borrow == 0 && i > word) break;
    }
  }
}

void ExactSum::add(double value) noexcept {
  LNC_ASSERT(std::isfinite(value));
  if (value == 0.0) return;
  int exponent = 0;
  const double fraction = std::frexp(std::fabs(value), &exponent);
  // |value| = fraction * 2^exponent with fraction in [0.5, 1); scaling by
  // 2^53 yields the integer mantissa exactly (doubles carry 53 bits).
  const auto mantissa =
      static_cast<std::uint64_t>(std::ldexp(fraction, 53));
  // value = mantissa * 2^(exponent - 53); bit offset relative to the unit.
  int offset = (exponent - 53) - kUnitExponent;
  std::uint64_t shifted = mantissa;
  if (offset < 0) {
    // Subnormal with a trailing-zero mantissa: still an exact multiple of
    // the unit, so the right shift drops only zero bits.
    shifted >>= -offset;
    offset = 0;
  }
  add_magnitude(shifted, offset, value < 0.0);
}

void ExactSum::merge(const ExactSum& other) noexcept {
  std::uint64_t carry = 0;
  for (int i = 0; i < kWords; ++i) {
    const std::uint64_t partial = words_[i] + other.words_[i];
    const std::uint64_t overflow1 = partial < other.words_[i] ? 1 : 0;
    words_[i] = partial + carry;
    const std::uint64_t overflow2 = words_[i] < partial ? 1 : 0;
    carry = overflow1 | overflow2;
  }
}

bool ExactSum::is_zero() const noexcept {
  for (const std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

double ExactSum::value() const noexcept {
  std::array<std::uint64_t, kWords> magnitude = words_;
  const bool negative = is_negative(magnitude);
  if (negative) negate(magnitude);

  int high = -1;  // highest set bit position
  for (int i = kWords - 1; i >= 0 && high < 0; --i) {
    if (magnitude[i] == 0) continue;
    int bit = 63;
    while ((magnitude[i] >> bit) == 0) --bit;
    high = i * 64 + bit;
  }
  if (high < 0) return 0.0;

  auto bit_at = [&](int pos) -> int {
    if (pos < 0) return 0;
    return static_cast<int>((magnitude[pos / 64] >> (pos % 64)) & 1u);
  };

  // Extract the top 53 bits [high-52, high] as the mantissa.
  std::uint64_t mantissa = 0;
  for (int pos = high; pos > high - 53; --pos) {
    mantissa = (mantissa << 1) | static_cast<std::uint64_t>(bit_at(pos));
  }
  int lsb_exponent = (high - 52) + kUnitExponent;

  // Round to nearest, ties to even, using the guard bit and a sticky OR
  // of everything below it.
  const int guard_pos = high - 53;
  if (guard_pos >= 0 && bit_at(guard_pos) != 0) {
    bool sticky = false;
    for (int i = 0; i < guard_pos / 64 && !sticky; ++i) {
      sticky = magnitude[i] != 0;
    }
    if (!sticky) {
      const std::uint64_t below =
          magnitude[guard_pos / 64] &
          ((std::uint64_t{1} << (guard_pos % 64)) - 1);
      sticky = below != 0;
    }
    if (sticky || (mantissa & 1u) != 0) {
      ++mantissa;
      if (mantissa == (std::uint64_t{1} << 53)) {
        mantissa >>= 1;
        ++lsb_exponent;
      }
    }
  }

  const double result =
      std::ldexp(static_cast<double>(mantissa), lsb_exponent);
  return negative ? -result : result;
}

std::string ExactSum::to_hex() const {
  std::array<std::uint64_t, kWords> magnitude = words_;
  const bool negative = is_negative(magnitude);
  if (negative) negate(magnitude);

  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  bool started = false;
  for (int i = kWords - 1; i >= 0; --i) {
    for (int nibble = 15; nibble >= 0; --nibble) {
      const int digit =
          static_cast<int>((magnitude[i] >> (4 * nibble)) & 0xFu);
      if (!started && digit == 0) continue;
      started = true;
      hex.push_back(kDigits[digit]);
    }
  }
  if (!started) return "0";
  return negative ? "-" + hex : hex;
}

ExactSum ExactSum::from_hex(const std::string& text) {
  std::size_t start = 0;
  bool negative = false;
  if (start < text.size() && text[start] == '-') {
    negative = true;
    ++start;
  }
  if (start == text.size()) {
    throw std::runtime_error("exact-sum hex: empty digits");
  }
  ExactSum sum;
  const std::size_t digits = text.size() - start;
  if (digits > static_cast<std::size_t>(kWords) * 16) {
    throw std::runtime_error("exact-sum hex: too many digits");
  }
  for (std::size_t i = 0; i < digits; ++i) {
    const int digit = hex_digit(text[start + i]);
    if (digit < 0) {
      throw std::runtime_error("exact-sum hex: invalid digit '" +
                               std::string(1, text[start + i]) + "'");
    }
    const std::size_t nibble_index = digits - 1 - i;  // from the LSB
    sum.words_[nibble_index / 16] |= static_cast<std::uint64_t>(digit)
                                     << (4 * (nibble_index % 16));
  }
  if (is_negative(sum.words_)) {
    throw std::runtime_error("exact-sum hex: magnitude out of range");
  }
  if (negative) negate(sum.words_);
  return sum;
}

}  // namespace lnc::stats
