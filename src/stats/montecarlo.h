// Monte-Carlo probability estimation.
//
// Every probabilistic quantity in the paper — the construction algorithm's
// success probability r, the decider's guarantee p, the failure bound beta
// of Claim 2, the boosted acceptance (1 - beta p)^nu of Claim 3 — is
// estimated here by running a {0,1}-valued trial under deterministic
// per-trial seeds and reporting the proportion with a Wilson interval.
#pragma once

#include <cstdint>
#include <functional>

#include "stats/threadpool.h"
#include "util/math.h"

namespace lnc::stats {

struct Estimate {
  double p_hat = 0.0;          ///< successes / trials
  util::Interval ci;           ///< Wilson 95% interval
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;

  /// True when the interval excludes `threshold` from below (estimate is
  /// significantly above it).
  bool significantly_above(double threshold) const noexcept {
    return ci.lo > threshold;
  }
  bool significantly_below(double threshold) const noexcept {
    return ci.hi < threshold;
  }
};

/// A trial: given its private seed, returns success/failure. Must be
/// thread-safe (trials share no mutable state).
using Trial = std::function<bool(std::uint64_t seed)>;

/// Runs `trials` independent trials with seeds derived from base_seed and
/// the trial index, in parallel over `pool` (or sequentially when null).
/// Bit-for-bit reproducible regardless of thread count.
Estimate estimate_probability(std::uint64_t trials, std::uint64_t base_seed,
                              const Trial& trial,
                              const ThreadPool* pool = nullptr);

/// Mean of a real-valued trial statistic (same seeding contract).
struct MeanEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t trials = 0;
};

MeanEstimate estimate_mean(std::uint64_t trials, std::uint64_t base_seed,
                           const std::function<double(std::uint64_t)>& trial,
                           const ThreadPool* pool = nullptr);

/// Derives the seed used for trial `index` under `base_seed` — exposed so
/// tests can re-run an individual failing trial.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index);

}  // namespace lnc::stats
