// Monte-Carlo probability estimation: the seed-derivation kernel.
//
// Every probabilistic quantity in the paper — the construction algorithm's
// success probability r, the decider's guarantee p, the failure bound beta
// of Claim 2, the boosted acceptance (1 - beta p)^nu of Claim 3 — is
// estimated by running a {0,1}-valued trial under deterministic per-trial
// seeds and reporting the proportion with a Wilson interval.
//
// This header is the low-layer kernel (trial_seed derivation + the plain
// estimators). Experiment-level code does NOT call it directly: it
// declares a local::ExperimentPlan and executes it with local::BatchRunner
// (local/batch_runner.h), which adds per-worker arenas and the unified
// messages/balls/two-phase execution modes on top of the same seeding
// contract, so batched estimates remain bit-for-bit reproducible across
// thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "stats/exact_sum.h"
#include "stats/threadpool.h"
#include "util/math.h"

namespace lnc::stats {

struct Estimate {
  double p_hat = 0.0;          ///< successes / trials
  util::Interval ci;           ///< Wilson 95% interval
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;

  /// True when the interval excludes `threshold` from below (estimate is
  /// significantly above it).
  bool significantly_above(double threshold) const noexcept {
    return ci.lo > threshold;
  }
  bool significantly_below(double threshold) const noexcept {
    return ci.hi < threshold;
  }
};

/// A trial: given its private seed, returns success/failure. Must be
/// thread-safe (trials share no mutable state).
using Trial = std::function<bool(std::uint64_t seed)>;

/// Runs `trials` independent trials with seeds derived from base_seed and
/// the trial index, in parallel over `pool` (or sequentially when null).
/// Bit-for-bit reproducible regardless of thread count.
Estimate estimate_probability(std::uint64_t trials, std::uint64_t base_seed,
                              const Trial& trial,
                              const ThreadPool* pool = nullptr);

/// Mean of a real-valued trial statistic (same seeding contract).
struct MeanEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t trials = 0;
};

/// The estimator epilogues, shared by the kernel above and by
/// local::BatchRunner so the statistical formulas live in exactly one
/// place (Wilson interval; sample stddev with n-1).
Estimate finalize_estimate(std::uint64_t successes,
                           std::uint64_t trials) noexcept;
MeanEstimate finalize_mean(std::span<const double> values) noexcept;

/// Mean/stddev from exact sum and sum-of-squares accumulators (the
/// shard-mergeable form local::BatchRunner produces): both sums are
/// order-free and exact, so the resulting estimate is bit-identical
/// across thread counts and shard partitions. Stddev uses the sample
/// formula sqrt((sum_sq - mean * sum) / (n - 1)), clamped at zero.
MeanEstimate finalize_mean_exact(const ExactSum& sum,
                                 const ExactSum& sum_sq,
                                 std::uint64_t trials) noexcept;

/// Cache-line-padded per-worker tally: workers bump their own slot
/// without contending, and the final sum is order-free, so estimates
/// stay bit-for-bit identical across thread counts. Shared by the kernel
/// and local::BatchRunner.
struct alignas(64) WorkerCounter {
  std::uint64_t value = 0;
};

inline std::uint64_t sum_counters(
    std::span<const WorkerCounter> counters) noexcept {
  std::uint64_t total = 0;
  for (const WorkerCounter& c : counters) total += c.value;
  return total;
}

MeanEstimate estimate_mean(std::uint64_t trials, std::uint64_t base_seed,
                           const std::function<double(std::uint64_t)>& trial,
                           const ThreadPool* pool = nullptr);

/// Derives the seed used for trial `index` under `base_seed` — exposed so
/// tests can re-run an individual failing trial.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index);

}  // namespace lnc::stats
