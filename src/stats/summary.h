// Order statistics over samples (quantiles, histogram buckets) for the
// slack-coloring experiment's distribution plots (E2).
#pragma once

#include <cstddef>
#include <vector>

namespace lnc::stats {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
  std::size_t count = 0;
};

/// Computes the summary; the input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Empirical quantile (linear interpolation). q in [0, 1]; samples must be
/// sorted ascending and non-empty.
double quantile_sorted(const std::vector<double>& sorted_samples, double q);

/// Fixed-width histogram over [lo, hi] with `buckets` bins; out-of-range
/// samples clamp to the boundary bins.
std::vector<std::size_t> histogram(const std::vector<double>& samples,
                                   double lo, double hi, std::size_t buckets);

}  // namespace lnc::stats
