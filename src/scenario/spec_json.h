// Minimal JSON support for the scenario subsystem: parsing scenario spec
// files (scenarios/*.json, lnc_sweep --spec) and shard-result files
// (sweep.h round trip). Deliberately small — objects, arrays, strings,
// numbers, booleans, null — with offsets in error messages; not a general
// JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace lnc::scenario {

/// A parsed JSON value. Parsing throws std::runtime_error (with character
/// offset) on malformed input; accessors throw on kind/key mismatches so
/// spec errors surface as readable messages instead of silent defaults.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Set when the token was a plain non-negative integer that fits
  /// std::uint64_t — seeds, trial counts, and tallies use the exact value
  /// (doubles lose integers above 2^53).
  bool is_uint64 = false;
  std::uint64_t integer = 0;
  std::string string;
  Array array;
  Object object;

  static Json parse(const std::string& text);

  bool has(const std::string& key) const;
  /// Member access (requires kObject and key present).
  const Json& at(const std::string& key) const;

  bool as_bool() const;
  double as_number() const;
  /// Exact 64-bit read (requires a plain non-negative integer token).
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
};

/// Parses a ScenarioSpec from its JSON form:
///
///   {"name": "...", "doc": "...",
///    "topology": "...", "language": "...",
///    "construction": "...", "decider": "...",
///    "params": {"colors": 3},
///    "workload": "success" | "value" | "counter",
///    "statistic": "rounds",            // value/counter workloads only
///    "n": [16, 64], "trials": 2000, "seed": 1,
///    "success": "accept" | "reject",
///    "mode": "balls" | "messages" | "two-phase",
///    "backend": "auto" | "naive" | "batched" | "vectorized",
///    "execution": "auto" | "materialized" | "implicit"}
///
/// Unknown top-level keys are rejected. Does NOT validate against the
/// registries — call scenario::validate on the result.
ScenarioSpec spec_from_json(const std::string& text);

/// Same, from an already-parsed JSON object — used where a spec is
/// embedded inside a larger document (cache entry files, serve
/// requests).
ScenarioSpec spec_from_json(const Json& root);

/// The spec with every field that does not affect WHICH curve is being
/// computed reset to a fixed value: trials and seed (the cache stores
/// accumulators over an explicit trial range at the entry's own seed),
/// name and doc (labels), backend (all backends are bit-identical by
/// contract — CI's backend identity gate), and execution (implicit and
/// materialized runs of one spec are bit-identical by contract — CI's
/// implicit topology gate — so either path tops up the same cache
/// entry). Execution mode is KEPT: ball-mode and message-mode telemetry
/// differ (measured vs modeled), so they are different cacheable
/// results. serve::cache_key hashes
/// spec_to_json(cache_normal_form(spec)).
ScenarioSpec cache_normal_form(const ScenarioSpec& spec);

/// Inverse of spec_from_json: serializes a spec in the scenarios/*.json
/// form. Numeric parameters print with full round-trip precision and
/// seeds/trials as exact integers, so spec_from_json(spec_to_json(spec))
/// reproduces the spec FIELD FOR FIELD — the contract that lets the
/// distributed launcher (src/orchestrate) hand a spec to remote
/// lnc_sweep shards and still merge bit-identically.
std::string spec_to_json(const ScenarioSpec& spec);

/// Serializes a telemetry block as a JSON object — the shared wire form
/// used by sweep shard files (scenario/sweep.cpp) and the bench binaries'
/// TABLE_*.json `telemetry` member (bench/bench_common.h):
///
///   {"messages": M, "words": W, "rounds": R, "ball_expansions": B,
///    "arena_peak_bytes": A, "wall_seconds": S}
std::string telemetry_to_json(const local::Telemetry& telemetry);

/// Reads a telemetry block written by telemetry_to_json. Missing keys
/// default to zero (forward compatibility with pre-telemetry files).
local::Telemetry telemetry_from_json(const Json& json);

/// Serializes a backend/tuning configuration as a JSON object — the wire
/// form bench TABLE_*.json files attach as their `optimization` member so
/// ablation trajectories record exactly which backend produced a row:
///
///   {"backend": "vectorized", "batch_trials": 32,
///    "use_silent_skip": true, "use_done_mask": true,
///    "reuse_round_buffers": true}
std::string optimization_to_json(const local::OptimizationConfig& config);

}  // namespace lnc::scenario
