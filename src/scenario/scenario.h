// Declarative experiment scenarios.
//
// A ScenarioSpec names one component of each kind from the registries
// (scenario/registry.h), a shared parameter map, an n-grid, a trial count,
// and a base seed — a complete experiment description as DATA. compile()
// validates the spec and lowers it into the existing ExperimentPlan
// factories (local/experiment.h, decide/experiment_plans.h, custom plans),
// so local::BatchRunner remains the only trial executor; scenario/sweep.h
// runs the compiled plans (whole or sharded across processes) and formats
// results.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "local/experiment.h"
#include "scenario/registry.h"

namespace lnc::scenario {

/// How a grid point's graph is represented at execution time. Purely an
/// execution-resource choice, never a results choice: both paths produce
/// bit-identical tallies, telemetry, and cache keys for the same spec
/// (cache_normal_form strips this field).
///
///   kAuto         — materialize up to kMaterializeCap nodes, go implicit
///                   beyond (requires an implicit-capable scenario there);
///   kMaterialized — always build the CSR graph;
///   kImplicit     — always synthesize neighborhoods on demand (requires
///                   an implicit-capable scenario at every grid point).
enum class Execution { kAuto, kMaterialized, kImplicit };

/// Largest n kAuto will materialize. Above this a CSR graph plus ids
/// costs tens of MB and climbing — the regime implicit execution exists
/// for.
inline constexpr std::uint64_t kMaterializeCap = 4'000'000;

const char* to_string(Execution execution) noexcept;
std::optional<Execution> execution_from_string(std::string_view text) noexcept;

struct ScenarioSpec {
  std::string name;
  std::string doc;

  std::string topology;
  std::string language;
  std::string construction;
  std::string decider = "exact";

  /// One shared namespace validated against the union of the four
  /// components' schemas (shared keys — e.g. "colors" — intentionally
  /// reach every component that declares them).
  ParamMap params;

  /// Fault model from the faults registry ("none" = perfectly reliable
  /// execution — the default, and byte-compatible with specs predating
  /// the fault axis). Fault parameters live in their own namespace
  /// (`fault_params`), validated against the fault entry's schema only:
  /// fault knobs like p-loss never collide with component parameters.
  std::string fault = "none";
  ParamMap fault_params;

  /// What each trial contributes (local/batch_runner.h):
  ///   kSuccess — a {0,1} outcome through the decider slot (Wilson
  ///              estimate of the success probability);
  ///   kValue   — the named `statistic` of the construction's output,
  ///              averaged with exact-sum mean/stddev;
  ///   kCounter — the same statistic summed exactly into integer slots.
  /// Value/counter workloads measure the construction directly, so they
  /// require the "exact" pseudo-decider and a registered statistic.
  local::WorkloadKind workload = local::WorkloadKind::kSuccess;

  /// The registered statistic a value/counter workload evaluates per
  /// trial (ignored for success workloads).
  std::string statistic;

  std::vector<std::uint64_t> n_grid;
  std::uint64_t trials = 1000;
  std::uint64_t base_seed = 1;

  /// Success notion of a trial: accept (true) or reject (false) — the
  /// reject side measures failure/rejection probabilities (e.g. Claim-2
  /// beta, the no-side of Eq. (1)). Ignored by value/counter workloads.
  bool success_on_accept = true;

  /// Execution mode for ball-based constructions (ignored otherwise).
  local::ExecMode mode = local::ExecMode::kBalls;

  /// Trial-execution backend for engine-backed constructions. kAuto lets
  /// compile() pick per grid point via OptimizationConfig::automatic;
  /// the named backends force the choice (kVectorized silently degrades
  /// to kBatched when the construction is not vectorizable). Recorded in
  /// spec JSON and warned about on sweep-shard merge mismatch.
  local::OptimizationConfig::Backend backend =
      local::OptimizationConfig::Backend::kAuto;

  /// Graph representation at execution time (see Execution above). Like
  /// `backend`, forcing it is a performance/memory choice, never a
  /// results choice.
  Execution execution = Execution::kAuto;
};

/// Resolves the spec against the registries: empty string when the spec is
/// well-formed, else a human-readable description of the first problem
/// (unknown component, parameter no component declares, empty grid, a
/// ring-only construction on a non-ring topology, a decider whose
/// language requirements the spec's language cannot meet, ...).
std::string validate(const ScenarioSpec& spec);

/// A spec compiled against the registries: resolved components plus one
/// ExperimentPlan per grid point. Owns everything the plans capture; keep
/// it alive while running them. Instances are interned process-wide, so
/// recompiling the same spec does not rebuild graphs.
class CompiledScenario {
 public:
  struct GridPoint {
    std::uint64_t requested_n = 0;
    std::shared_ptr<const local::Instance> instance;
    local::ExperimentPlan plan;
  };

  const ScenarioSpec& spec() const noexcept { return spec_; }
  const std::vector<GridPoint>& points() const noexcept { return points_; }
  const lang::Language& language() const noexcept { return *language_; }
  const Construction& construction() const noexcept { return *construction_; }
  /// Null for the "exact" pseudo-decider.
  const decide::RandomizedDecider* decider() const noexcept {
    return decider_.get();
  }
  /// The spec's fault model (never null; trivial() for fault="none").
  const fault::FaultModel& fault_model() const noexcept {
    return *fault_model_;
  }

 private:
  friend CompiledScenario compile(const ScenarioSpec& spec);

  ScenarioSpec spec_;
  std::unique_ptr<lang::Language> language_;
  std::unique_ptr<Construction> construction_;
  std::unique_ptr<decide::RandomizedDecider> decider_;
  std::shared_ptr<const fault::FaultModel> fault_model_;
  std::vector<GridPoint> points_;
};

/// Compiles a validated spec (asserts validate(spec) is clean).
CompiledScenario compile(const ScenarioSpec& spec);

}  // namespace lnc::scenario
