// The shipped scenario presets: named, validated ScenarioSpecs covering
// rings, hard instances, grids, random graphs, and trees, and exercising
// every decider family (exact, lcl, amos, resilient, slack). Mirrored as
// JSON files under scenarios/ for the --spec workflow; `lnc_sweep --list`
// prints this catalogue.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace lnc::scenario {

/// All built-in presets, in registration order. Every entry validates
/// cleanly against the registries (asserted on first access).
const std::vector<ScenarioSpec>& preset_scenarios();

/// Lookup by name; null when absent.
const ScenarioSpec* find_preset(const std::string& name);

}  // namespace lnc::scenario
