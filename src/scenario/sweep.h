// Executing compiled scenarios — whole, or as one shard of a
// cross-process run (ROADMAP "Sharded batch execution").
//
// Sharding splits every grid point's trial range [0, trials) into
// near-equal contiguous slices; per-trial Philox streams are pure
// functions of the trial index, so merging shard tallies reproduces the
// unsharded Estimate BIT FOR BIT (tests/scenario_test.cpp asserts this).
// Shard results round-trip through JSON so `lnc_sweep --shard i/k` runs
// can land on different machines and be merged offline.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>

#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "util/table.h"

namespace lnc::obs {
class Progress;
}  // namespace lnc::obs

namespace lnc::scenario {

struct SweepOptions {
  unsigned shard = 0;        ///< this run's shard index in [0, shard_count)
  unsigned shard_count = 1;  ///< 1 == unsharded
  /// Explicit trial slice [begin, end) instead of an i-of-k shard —
  /// the incremental top-up path (serve::SweepService, lnc_sweep
  /// --trial-range). Requires shard == 0 && shard_count == 1 and
  /// end <= the spec's trial count. Per-trial seeds depend only on the
  /// trial index, so a ranged result merges bit-identically with any
  /// abutting ranges (merge_trial_ranges).
  std::optional<local::TrialRange> trial_range;
  const stats::ThreadPool* pool = nullptr;  ///< null => sequential trials
  /// Optional live-progress heartbeat, ticked once per completed trial
  /// (lnc_sweep --progress). Timing-only: never affects results.
  obs::Progress* progress = nullptr;
};

struct SweepRow {
  std::uint64_t requested_n = 0;
  std::uint64_t actual_n = 0;        ///< instance node count realized
  std::uint64_t total_trials = 0;    ///< the plan's full trial count
  local::ShardTally tally;           ///< this result's executed share,
                                     ///< including its telemetry block
  /// TRUE elapsed wall-clock for this row's local computation (start to
  /// finish of the grid point, one measurement per run) — unlike
  /// telemetry.wall_seconds, which SUMS per-trial time across workers
  /// and so exceeds elapsed time on multi-threaded runs. Summed when
  /// merging shards (total machine-time across the fleet). Machine-
  /// dependent; never part of the deterministic contract.
  double elapsed_seconds = 0.0;
};

struct SweepResult {
  std::string scenario;
  std::uint64_t base_seed = 0;
  unsigned shard = 0;
  unsigned shard_count = 1;
  /// The workload the rows tally (which ShardTally block is meaningful).
  local::WorkloadKind workload = local::WorkloadKind::kSuccess;
  /// The backend the spec requested (kAuto unless forced). Shards run
  /// under different backends still merge — that bit-identity is the
  /// contract — but merge_sweep_files warns on a mismatch so a mixed
  /// fleet is visible rather than silent.
  local::OptimizationConfig::Backend backend =
      local::OptimizationConfig::Backend::kAuto;
  /// The contiguous trial slice the rows tally, [trial_begin, trial_end).
  /// 0/0 means unknown (files written by pre-range binary generations);
  /// complete results cover [0, total_trials). Carried through JSON so
  /// range-partitioned results (cache top-ups, elastic shards) merge by
  /// explicit extent rather than i-of-k index.
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_end = 0;
  std::vector<SweepRow> rows;
  /// Observability metrics merged across the sweep's workers (per-trial
  /// wall-time / throughput histograms and friends). Empty unless
  /// obs::metrics_enabled() was set during the run (lnc_sweep --trace);
  /// lands in the JSON as an optional top-level `metrics` block and
  /// merges across shards order-free. Timing-only — ignored by every
  /// determinism gate.
  obs::MetricsRegistry metrics;

  /// True when the result covers every trial (unsharded or merged).
  bool complete() const noexcept {
    for (const SweepRow& row : rows) {
      if (row.tally.trials != row.total_trials) return false;
    }
    return shard_count == 1;
  }
};

/// Executes (this shard of) a compiled scenario.
SweepResult run_sweep(const CompiledScenario& scenario,
                      const SweepOptions& options = {});

/// Pre-flight check for merge_sweeps: empty string when the shards fit
/// together (same scenario run, same split factor, distinct shard
/// indices, full trial coverage), else a human-readable description of
/// the first problem. CLI callers surface this instead of hitting the
/// library asserts below.
std::string can_merge(std::span<const SweepResult> shards);

/// Merges shard results of the same scenario run (matching name, seed,
/// grid, and total trial counts; together covering every trial). The
/// merged rows' estimates equal an unsharded run's exactly. Asserts on
/// input can_merge rejects.
SweepResult merge_sweeps(std::span<const SweepResult> shards);

/// Pre-flight check for merge_trial_ranges: empty string when the parts
/// are range-partitioned results of the same scenario/seed/workload that
/// start at trial 0 and abut contiguously (each part's rows covering
/// exactly its [trial_begin, trial_end) extent), else a diagnostic.
/// Unlike can_merge, parts may disagree on total_trials — a cached
/// result at T' merges with a [T', T) top-up into a result at T.
std::string can_merge_trial_ranges(std::span<const SweepResult> parts);

/// Merges contiguous trial-range partitions in order of trial_begin:
/// cached accumulators over [0, T') plus a delta over [T', T) produce
/// the run-at-T result BIT FOR BIT (per-trial seeds depend only on the
/// trial index, never on the total count). The merged result's
/// total_trials is the final part's trial_end. Asserts on input
/// can_merge_trial_ranges rejects.
SweepResult merge_trial_ranges(std::span<const SweepResult> parts);

/// The Wilson estimate of a complete success row.
stats::Estimate row_estimate(const SweepRow& row);

/// The exact-sum mean/stddev of a complete value row. Because the row's
/// accumulators are exact, the result is bit-identical whether the row
/// came from one unsharded run or any merged shard partition.
stats::MeanEstimate row_mean(const SweepRow& row);

/// All rows' telemetry merged (the whole-sweep communication volume).
local::Telemetry result_telemetry(const SweepResult& result);

/// Human-readable table (estimate/mean/count columns only for complete
/// results; workload-appropriate columns per row). `with_telemetry`
/// appends the deterministic communication-volume columns
/// (msgs / words / rounds / balls) to every row.
util::Table to_table(const SweepResult& result, bool with_telemetry = false);

/// Grep-stable per-row summary lines for complete value/counter results
/// (full %.17g precision, so diffing the lines across thread counts and
/// shard layouts asserts the exact-merge contract at the CLI level):
///
///   value[scenario/nN]: mean=M stddev=S trials=T
///   counter[scenario/nN]: sum=C mean=M trials=T
///
/// Empty for success workloads and for incomplete (sharded) results.
std::vector<std::string> summary_lines(const SweepResult& result);

/// Shard-file JSON round trip (cross-process merge). Rows carry a
/// `telemetry` block plus, per workload, a `values` block (human-readable
/// sum/sum_sq doubles AND the authoritative exact-sum hex words) or a
/// `counts` array; readers tolerate their absence (files written by
/// older binaries merge with zeroed blocks). Unrecognized keys are
/// reported through `warnings` when non-null — the guard that surfaces
/// stale shard files written by a different binary generation.
/// The file additionally stamps the writing binary's identity
/// (`seed_stream_epoch`, `build_rev` — util/build_info.h); readers
/// tolerate their absence and warn when the file's epoch differs from
/// the running binary's, so a stale result is diagnosable, not wrong.
void write_json(std::ostream& os, const SweepResult& result);
SweepResult sweep_from_json(const std::string& text,
                            std::vector<std::string>* warnings = nullptr);

/// Same, from an already-parsed JSON object — used where a result is
/// embedded inside a larger document (serve cache entry files).
SweepResult sweep_from_json(const Json& root,
                            std::vector<std::string>* warnings = nullptr);

/// Writes a result file ATOMICALLY (tmp + rename) — the file either holds
/// the complete JSON or does not exist; a torn write, a full disk, or a
/// straggler process killed mid-write can never leave a partial file for
/// a merge to trip over. Returns an empty string on success, else a
/// human-readable error (the tmp file is cleaned up). Shared by
/// `lnc_sweep --out` and the launch coordinator's merged output.
std::string write_json_file(const std::string& path,
                            const SweepResult& result);

/// Reads complete shard-result files and merges them — the gather step
/// shared by `lnc_sweep --merge` and the distributed launcher
/// (src/orchestrate). Throws std::runtime_error naming the offending file
/// on an unreadable/unparseable path and with can_merge's diagnostic when
/// the shards do not fit together; per-file parse warnings are prefixed
/// with their path.
SweepResult merge_sweep_files(std::span<const std::string> paths,
                              std::vector<std::string>* warnings = nullptr);

}  // namespace lnc::scenario
