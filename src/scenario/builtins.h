// Internal: registration hook wiring the built-in component catalogue
// (scenario/builtins.cpp) into the registry singletons (registry.cpp).
// Not part of the public scenario API.
#pragma once

#include "scenario/registry.h"

namespace lnc::scenario::detail {

void register_builtins(Registry<TopologyEntry>& topologies,
                       Registry<LanguageEntry>& languages,
                       Registry<ConstructionEntry>& constructions,
                       Registry<DeciderEntry>& deciders,
                       Registry<StatisticEntry>& statistics,
                       Registry<FaultEntry>& faults);

}  // namespace lnc::scenario::detail
