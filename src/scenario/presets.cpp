#include "scenario/presets.h"

#include "util/assert.h"

namespace lnc::scenario {
namespace {

std::vector<ScenarioSpec> build_presets() {
  std::vector<ScenarioSpec> presets;

  {
    ScenarioSpec spec;
    spec.name = "ring-slack-coloring";
    spec.doc =
        "E2's positive side: the zero-round uniform 3-coloring against the "
        "eps-slack decider on rings (randomization HELPS above eps = 5/9).";
    spec.topology = "ring";
    spec.language = "coloring";
    spec.construction = "rand-coloring";
    spec.decider = "slack";
    spec.params = {{"colors", 3}, {"eps", 0.65}};
    spec.n_grid = {24, 60, 180};
    spec.trials = 2000;
    spec.base_seed = 0xE2;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hard-ring-resilient-coloring";
    spec.doc =
        "The Theorem-1 pipeline on one hard ring: construct with the "
        "uniform coloring, decide with the Corollary-1 resilient decider.";
    spec.topology = "hard-ring";
    spec.language = "coloring";
    spec.construction = "rand-coloring";
    spec.decider = "resilient";
    spec.params = {{"colors", 3}, {"faults", 1}};
    spec.n_grid = {12, 24, 48};
    spec.trials = 2000;
    spec.base_seed = 0xE6;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hard-ring-beta";
    spec.doc =
        "Claim-2 beta: probability that the uniform coloring's output lies "
        "OUTSIDE the 1-resilient relaxation on the consecutive ring.";
    spec.topology = "hard-ring";
    spec.language = "resilient-coloring";
    spec.construction = "rand-coloring";
    spec.decider = "exact";
    spec.params = {{"colors", 3}, {"faults", 1}};
    spec.n_grid = {12, 24, 48};
    spec.trials = 3000;
    spec.base_seed = 0xBE;
    spec.success_on_accept = false;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ring-amos-yes";
    spec.doc =
        "amos yes side (E1): one selected node; the golden-ratio decider "
        "accepts with probability ~ p* = 0.618.";
    spec.topology = "ring";
    spec.language = "amos";
    spec.construction = "select-id-below";
    spec.decider = "amos";
    spec.params = {{"count", 1}};
    spec.n_grid = {16, 64};
    spec.trials = 4000;
    spec.base_seed = 0xA1;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ring-amos-no";
    spec.doc =
        "amos no side (E1): two selected nodes; rejection probability "
        "~ 1 - p*^2 = 0.618.";
    spec.topology = "ring";
    spec.language = "amos";
    spec.construction = "select-id-below";
    spec.decider = "amos";
    spec.params = {{"count", 2}};
    spec.n_grid = {16, 64};
    spec.trials = 4000;
    spec.base_seed = 0xA2;
    spec.success_on_accept = false;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "grid-lll-resilient";
    spec.doc =
        "Definition 1 beyond rings: random bits on a grid against the "
        "f-resilient decider for the LLL avoidance language.";
    spec.topology = "grid";
    spec.language = "lll-avoidance";
    spec.construction = "weak-color-mc";
    spec.decider = "resilient";
    spec.params = {{"fixup-rounds", 0}, {"faults", 4}};
    spec.n_grid = {49, 100};
    spec.trials = 1500;
    spec.base_seed = 0x6D;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "gnp-weak-coloring";
    spec.doc =
        "Naor-Stockmeyer territory on random bounded-degree graphs: "
        "constant-round Monte-Carlo weak 2-coloring, checked by the "
        "radius-1 LD decider.";
    spec.topology = "gnp";
    spec.language = "weak-coloring";
    spec.construction = "weak-color-mc";
    spec.decider = "lcl";
    spec.params = {{"edge-prob", 0.08}, {"max-degree", 6},
                   {"fixup-rounds", 6}, {"colors", 2}};
    spec.n_grid = {64, 256};
    spec.trials = 1500;
    spec.base_seed = 0x6E;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "random-regular-mis-luby";
    spec.doc =
        "The non-constant-time contrast class (E10): Luby's MIS on random "
        "3-regular graphs, verified by the LD decider (success must be 1).";
    spec.topology = "random-regular";
    spec.language = "mis";
    spec.construction = "luby-mis";
    spec.decider = "lcl";
    spec.params = {{"degree", 3}};
    spec.n_grid = {64, 256};
    spec.trials = 400;
    spec.base_seed = 0x10B;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "tree-matching";
    spec.doc =
        "Randomized maximal matching on bounded-degree random trees, "
        "checked exactly (success must be 1).";
    spec.topology = "random-tree";
    spec.language = "matching";
    spec.construction = "rand-matching";
    spec.decider = "exact";
    spec.params = {{"max-degree", 3}};
    spec.n_grid = {64, 256};
    spec.trials = 400;
    spec.base_seed = 0x7E;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hard-ring-cole-vishkin";
    spec.doc =
        "The deterministic upper bound (E3): Cole-Vishkin 3-coloring on "
        "consecutive rings, checked by the LD coloring decider (success "
        "must be 1; one trial suffices, more exercise program recycling).";
    spec.topology = "hard-ring";
    spec.language = "coloring";
    spec.construction = "cole-vishkin";
    spec.decider = "lcl";
    spec.params = {{"colors", 3}};
    spec.n_grid = {16, 128, 1024};
    spec.trials = 8;
    spec.base_seed = 0xC3;
    presets.push_back(spec);
  }

  {
    ScenarioSpec spec;
    spec.name = "ring-mis-implicit";
    spec.doc =
        "Giga-scale showcase for implicit topologies: K-phase Luby MIS on "
        "the ring, checked by the LD decider — every trial touches only "
        "radius-K balls, so --execution implicit streams C_n at n = 10^8 "
        "and beyond in ball-bounded memory, bit-identical to the "
        "materialized run at any n both can reach.";
    spec.topology = "ring";
    spec.language = "mis";
    spec.construction = "luby-ball";
    spec.decider = "lcl";
    spec.params = {{"phases", 4}};
    spec.n_grid = {4096};
    spec.trials = 200;
    spec.base_seed = 7;
    presets.push_back(spec);
  }

  {
    ScenarioSpec spec;
    spec.name = "luby-mis-rounds";
    spec.doc =
        "E10's round-growth side as a VALUE sweep: expected rounds of "
        "Luby's MIS on random 3-regular graphs grow ~ log2(n) (no "
        "constant-round decision analogue exists — the contrast class).";
    spec.topology = "random-regular";
    spec.language = "mis";
    spec.construction = "luby-mis";
    spec.workload = local::WorkloadKind::kValue;
    spec.statistic = "rounds";
    spec.params = {{"degree", 3}};
    spec.n_grid = {64, 256, 1024};
    spec.trials = 300;
    spec.base_seed = 0x10C;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ring-mis-luby-rounds";
    spec.doc =
        "Luby's MIS round growth on the paper's canonical family: expected "
        "rounds on C_n with random identities grow ~ log2(n). The ring "
        "variant of luby-mis-rounds, and the showcase workload for the "
        "trial-vectorized backend (long halted-relay tails, contiguous "
        "neighborhoods).";
    spec.topology = "ring";
    spec.language = "mis";
    spec.construction = "luby-mis";
    spec.workload = local::WorkloadKind::kValue;
    spec.statistic = "rounds";
    spec.params = {{"random-ids", 1}};
    spec.n_grid = {256, 1024, 4096};
    spec.trials = 300;
    spec.base_seed = 0x10D;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "rand-matching-rounds";
    spec.doc =
        "E10's second algorithm as a VALUE sweep: expected rounds of "
        "propose-and-accept maximal matching on bounded-degree random "
        "trees.";
    spec.topology = "random-tree";
    spec.language = "matching";
    spec.construction = "rand-matching";
    spec.workload = local::WorkloadKind::kValue;
    spec.statistic = "rounds";
    spec.params = {{"max-degree", 3}};
    spec.n_grid = {64, 256, 1024};
    spec.trials = 300;
    spec.base_seed = 0x7F;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "gnp-weak-coloring-quality";
    spec.doc =
        "Weak-coloring output quality as a VALUE sweep: mean bad balls "
        "left by the zero-fixup Monte-Carlo weak 2-coloring on random "
        "bounded-degree graphs (0 = perfect configuration).";
    spec.topology = "gnp";
    spec.language = "weak-coloring";
    spec.construction = "weak-color-mc";
    spec.workload = local::WorkloadKind::kValue;
    spec.statistic = "bad-balls";
    spec.params = {{"edge-prob", 0.08}, {"max-degree", 6},
                   {"fixup-rounds", 0}, {"colors", 2}};
    spec.n_grid = {64, 256};
    spec.trials = 500;
    spec.base_seed = 0x6F;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ring-amos-words";
    spec.doc =
        "Telemetry-derived COUNTER sweep: total simulation-theorem word "
        "volume charged by the zero-round amos marker on rings, summed "
        "exactly across trials (and across shards).";
    spec.topology = "ring";
    spec.language = "amos";
    spec.construction = "select-id-below";
    spec.workload = local::WorkloadKind::kCounter;
    spec.statistic = "words";
    spec.params = {{"count", 1}};
    spec.n_grid = {16, 64};
    spec.trials = 500;
    spec.base_seed = 0xA3;
    presets.push_back(spec);
  }

  {
    ScenarioSpec spec;
    spec.name = "ring-amos-drop";
    spec.doc =
        "Resilience sweep over lossy links: the E1 amos yes side where "
        "every decider-phase ball is censored by 10% per-edge loss — "
        "measures how far the golden-ratio acceptance degrades when the "
        "verifier sees an incomplete neighborhood.";
    spec.topology = "ring";
    spec.language = "amos";
    spec.construction = "select-id-below";
    spec.decider = "amos";
    spec.fault = "drop";
    spec.fault_params = {{"p-loss", 0.1}};
    spec.params = {{"count", 1}};
    spec.n_grid = {16, 64};
    spec.trials = 4000;
    spec.base_seed = 0xFA1;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "luby-mis-crash";
    spec.doc =
        "Resilience sweep over crash-stop nodes: Luby's MIS on random "
        "3-regular graphs where each node dies before round 1 with "
        "probability 5% and falls silent — survivors must still produce "
        "an independent set that is maximal among themselves (checked "
        "globally, so success measures crash damage).";
    spec.topology = "random-regular";
    spec.language = "mis";
    spec.construction = "luby-mis";
    spec.decider = "exact";
    spec.fault = "crash";
    spec.fault_params = {{"p-crash", 0.05}, {"crash-round", 1}};
    spec.params = {{"degree", 3}};
    spec.n_grid = {64, 256};
    spec.trials = 400;
    spec.base_seed = 0xFA2;
    presets.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "rand-matching-churn";
    spec.doc =
        "Resilience sweep over edge churn: propose-and-accept maximal "
        "matching on bounded-degree random trees where every edge is "
        "independently down 10% of the rounds — proposals and acceptances "
        "that cross a down edge are lost both ways.";
    spec.topology = "random-tree";
    spec.language = "matching";
    spec.construction = "rand-matching";
    spec.decider = "exact";
    spec.fault = "churn";
    spec.fault_params = {{"p-churn", 0.1}};
    spec.params = {{"max-degree", 3}};
    spec.n_grid = {64, 256};
    spec.trials = 400;
    spec.base_seed = 0xFA3;
    presets.push_back(spec);
  }

  for (const ScenarioSpec& spec : presets) {
    const std::string error = validate(spec);
    LNC_EXPECTS(error.empty() && "invalid built-in preset");
    (void)error;
  }
  return presets;
}

}  // namespace

const std::vector<ScenarioSpec>& preset_scenarios() {
  static const std::vector<ScenarioSpec>* presets =
      new std::vector<ScenarioSpec>(build_presets());
  return *presets;
}

const ScenarioSpec* find_preset(const std::string& name) {
  for (const ScenarioSpec& spec : preset_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace lnc::scenario
