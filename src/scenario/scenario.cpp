#include "scenario/scenario.h"

#include <utility>

#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::scenario {
namespace {

/// Seed-derivation tags separating the per-grid-point streams.
constexpr std::uint64_t kPlanSeedTag = 0xE1;

/// The union-of-schemas membership test for one user parameter key.
bool key_declared(const std::string& key,
                  const std::vector<const ParamSchema*>& schemas) {
  for (const ParamSchema* schema : schemas) {
    for (const ParamSpec& spec : *schema) {
      if (spec.name == key) return true;
    }
  }
  return false;
}

}  // namespace

std::string validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "scenario has no name";
  const TopologyEntry* topology = topologies().find(spec.topology);
  if (topology == nullptr) return "unknown topology '" + spec.topology + "'";
  const LanguageEntry* language = languages().find(spec.language);
  if (language == nullptr) return "unknown language '" + spec.language + "'";
  const ConstructionEntry* construction =
      constructions().find(spec.construction);
  if (construction == nullptr) {
    return "unknown construction '" + spec.construction + "'";
  }
  const DeciderEntry* decider = deciders().find(spec.decider);
  if (decider == nullptr) return "unknown decider '" + spec.decider + "'";

  const std::vector<const ParamSchema*> schemas = {
      &topology->schema, &language->schema, &construction->schema,
      &decider->schema};
  for (const auto& [key, value] : spec.params) {
    (void)value;
    if (!key_declared(key, schemas)) {
      return "parameter '" + key + "' is not declared by any of the four "
             "components";
    }
  }

  if (spec.n_grid.empty()) return "empty n-grid";
  if (spec.trials == 0) return "zero trials";
  if (construction->ring_only && !is_canonical_ring(spec.topology)) {
    return "construction '" + spec.construction +
           "' requires the canonical ring topology";
  }
  if (decider->needs_lcl) {
    const std::unique_ptr<lang::Language> built =
        make_language(spec.language, spec.params);
    if (lcl_core(*built) == nullptr) {
      return "decider '" + spec.decider + "' needs an LCL-backed language, "
             "but '" + spec.language + "' has no LCL core";
    }
  }
  return {};
}

CompiledScenario compile(const ScenarioSpec& spec) {
  const std::string error = validate(spec);
  LNC_EXPECTS(error.empty() && "invalid scenario spec");

  const DeciderEntry* decider_entry = deciders().find(spec.decider);

  CompiledScenario compiled;
  compiled.spec_ = spec;
  compiled.language_ = make_language(spec.language, spec.params);
  compiled.construction_ = make_construction(spec.construction, spec.params);
  if (!decider_entry->global_check) {
    compiled.decider_ =
        make_decider(spec.decider, compiled.language_.get(), spec.params);
  }

  const lang::Language* language = compiled.language_.get();
  const Construction* construction = compiled.construction_.get();
  const decide::RandomizedDecider* decider = compiled.decider_.get();
  const local::RandomizedBallAlgorithm* ball = construction->ball_algorithm();
  const bool accept = spec.success_on_accept;

  decide::EvaluateOptions eval_options;
  eval_options.grant_n = decider_entry->needs_n;

  compiled.points_.reserve(spec.n_grid.size());
  for (const std::uint64_t n : spec.n_grid) {
    const std::uint64_t instance_seed = rand::mix_keys(spec.base_seed, n);
    const std::uint64_t plan_seed =
        rand::mix_keys(instance_seed, kPlanSeedTag);
    const std::string plan_name = spec.name + "/n" + std::to_string(n);

    CompiledScenario::GridPoint point;
    point.requested_n = n;
    point.instance =
        interned_instance(spec.topology, n, spec.params, instance_seed);
    const local::Instance& inst = *point.instance;

    if (decider == nullptr) {
      // "exact": success == (global membership verdict == accept side).
      if (ball != nullptr) {
        point.plan = local::construction_plan(
            plan_name, inst, *ball,
            [language, accept](const local::Instance& instance,
                               const local::Labeling& output) {
              return language->contains(instance, output) == accept;
            },
            spec.trials, plan_seed, spec.mode);
      } else {
        const local::Instance* inst_ptr = point.instance.get();
        point.plan = local::custom_plan(
            plan_name, spec.trials, plan_seed,
            [inst_ptr, language, construction, accept](
                const local::TrialEnv& env) {
              local::Labeling& output = env.arena->labeling();
              construction->run(*inst_ptr, env, output);
              return language->contains(*inst_ptr, output) == accept;
            });
      }
    } else if (ball != nullptr) {
      point.plan = decide::construct_then_decide_plan(
          plan_name, inst, *ball, *decider, spec.trials, plan_seed,
          eval_options, accept, spec.mode);
    } else {
      const local::Instance* inst_ptr = point.instance.get();
      point.plan = local::custom_plan(
          plan_name, spec.trials, plan_seed,
          [inst_ptr, construction, decider, eval_options,
           accept](const local::TrialEnv& env) {
            local::Labeling& output = env.arena->labeling();
            construction->run(*inst_ptr, env, output);
            const rand::PhiloxCoins d_coins = env.decision_coins();
            decide::EvaluateOptions trial_options = eval_options;
            trial_options.telemetry = &env.arena->telemetry();
            const decide::DecisionOutcome outcome = decide::evaluate(
                *inst_ptr, output, *decider, d_coins, trial_options);
            return outcome.accepted == accept;
          });
    }
    compiled.points_.push_back(std::move(point));
  }
  return compiled;
}

}  // namespace lnc::scenario
