#include "scenario/scenario.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "fault/fault.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::scenario {
namespace {

/// Seed-derivation tags separating the per-grid-point streams.
constexpr std::uint64_t kPlanSeedTag = 0xE1;

/// The one unknown-component diagnostic every registry lookup emits:
/// "unknown <kind> '<name>'; available: a, b, c". Uniform across all six
/// registries so callers (and tests) can rely on one shape.
template <typename Entry>
std::string unknown_component(const char* kind, const std::string& name,
                              const Registry<Entry>& registry) {
  std::string message = "unknown ";
  message += kind;
  message += " '" + name + "'; available: ";
  bool first = true;
  for (const Entry* entry : registry.all()) {
    if (!first) message += ", ";
    message += entry->name;
    first = false;
  }
  return message;
}

/// Union-of-schemas check for one user parameter: the key must be
/// declared by some component, and the value must satisfy the declared
/// range of EVERY declaring component (shared keys reach them all).
/// Empty string when fine, else the diagnostic.
std::string check_param(const std::string& key, double value,
                        const std::vector<const ParamSchema*>& schemas) {
  bool declared = false;
  for (const ParamSchema* schema : schemas) {
    for (const ParamSpec& spec : *schema) {
      if (spec.name != key) continue;
      declared = true;
      // Negated >= form so NaN fails the check instead of slipping
      // through to abort in a component constructor.
      if (!(value >= spec.min_value && value <= spec.max_value)) {
        std::ostringstream os;
        os << "parameter '" << key << "' = " << value << " is outside the "
           << "declared range [" << spec.min_value << ", " << spec.max_value
           << "] (" << spec.doc << ")";
        return os.str();
      }
    }
  }
  if (!declared) {
    return "parameter '" + key + "' is not declared by any of the four "
           "components";
  }
  return {};
}

}  // namespace

const char* to_string(Execution execution) noexcept {
  switch (execution) {
    case Execution::kAuto:
      return "auto";
    case Execution::kMaterialized:
      return "materialized";
    case Execution::kImplicit:
      return "implicit";
  }
  return "auto";
}

std::optional<Execution> execution_from_string(
    std::string_view text) noexcept {
  if (text == "auto") return Execution::kAuto;
  if (text == "materialized") return Execution::kMaterialized;
  if (text == "implicit") return Execution::kImplicit;
  return std::nullopt;
}

std::string validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "scenario has no name";
  const TopologyEntry* topology = topologies().find(spec.topology);
  if (topology == nullptr) {
    return unknown_component("topology", spec.topology, topologies());
  }
  const LanguageEntry* language = languages().find(spec.language);
  if (language == nullptr) {
    return unknown_component("language", spec.language, languages());
  }
  const ConstructionEntry* construction =
      constructions().find(spec.construction);
  if (construction == nullptr) {
    return unknown_component("construction", spec.construction,
                             constructions());
  }
  const DeciderEntry* decider = deciders().find(spec.decider);
  if (decider == nullptr) {
    return unknown_component("decider", spec.decider, deciders());
  }
  const FaultEntry* fault_entry = faults().find(spec.fault);
  if (fault_entry == nullptr) {
    return unknown_component("fault", spec.fault, faults());
  }

  const std::vector<const ParamSchema*> schemas = {
      &topology->schema, &language->schema, &construction->schema,
      &decider->schema};
  for (const auto& [key, value] : spec.params) {
    const std::string problem = check_param(key, value, schemas);
    if (!problem.empty()) return problem;
  }

  // Fault parameters are a separate namespace: checked against the fault
  // entry's schema only. `none` has an empty schema, so any fault-param on
  // it is rejected here (keeping "none + defaults" the exact spec shape
  // old cache keys hashed).
  for (const auto& [key, value] : spec.fault_params) {
    bool declared = false;
    for (const ParamSpec& fspec : fault_entry->schema) {
      if (fspec.name != key) continue;
      declared = true;
      if (!(value >= fspec.min_value && value <= fspec.max_value)) {
        std::ostringstream os;
        os << "fault parameter '" << key << "' = " << value
           << " is outside the declared range [" << fspec.min_value << ", "
           << fspec.max_value << "] (" << fspec.doc << ")";
        return os.str();
      }
    }
    if (!declared) {
      return "fault parameter '" + key + "' is not declared by fault model '" +
             spec.fault + "'";
    }
  }

  if (spec.n_grid.empty()) return "empty n-grid";
  if (spec.trials == 0) return "zero trials";
  if (construction->ring_only && !is_canonical_ring(spec.topology)) {
    return "construction '" + spec.construction +
           "' requires the canonical ring topology";
  }

  // Non-trivial fault models constrain the execution paths: the
  // construction must tolerate silent ports / censored balls
  // (fault_capable), ball constructions must run in ball mode (the
  // messages/two-phase simulation modes have no fault semantics), and
  // implicit streaming points are out (the realized fault subgraph is
  // charged per materialized trial).
  if (spec.fault != "none") {
    if (!construction->fault_capable) {
      return "fault model '" + spec.fault + "' requires a fault-capable "
             "construction, but '" + spec.construction +
             "' does not tolerate faulty execution (sequential-greedy and "
             "orientation-dependent algorithms deadlock or corrupt state "
             "when neighbors fall silent)";
    }
    if (spec.mode != local::ExecMode::kBalls) {
      const std::unique_ptr<Construction> built =
          make_construction(spec.construction, spec.params);
      if (built->ball_algorithm() != nullptr) {
        return "fault model '" + spec.fault + "' requires mode=balls for "
               "ball-backed constructions (the simulation-theorem modes "
               "have no fault semantics)";
      }
    }
    bool implicit_under_fault =
        spec.execution == Execution::kImplicit;
    for (const std::uint64_t n : spec.n_grid) {
      if (spec.execution == Execution::kAuto && n > kMaterializeCap) {
        implicit_under_fault = true;
      }
    }
    if (implicit_under_fault) {
      return "fault model '" + spec.fault + "' requires materialized "
             "execution (implicit streaming points cannot charge the "
             "realized fault subgraph's telemetry)";
    }
  }
  if (decider->needs_lcl) {
    const std::unique_ptr<lang::Language> built =
        make_language(spec.language, spec.params);
    if (lcl_core(*built) == nullptr) {
      return "decider '" + spec.decider + "' needs an LCL-backed language, "
             "but '" + spec.language + "' has no LCL core";
    }
  }

  // Node ids are 32-bit (kInvalidNode reserved); no execution mode can
  // exceed that.
  for (const std::uint64_t n : spec.n_grid) {
    if (n >= static_cast<std::uint64_t>(graph::kInvalidNode)) {
      return "n = " + std::to_string(n) + " exceeds the 32-bit NodeId range";
    }
  }

  // Implicit-execution eligibility: every grid point that will run without
  // a materialized graph (execution=implicit, or execution=auto beyond
  // kMaterializeCap) must be streamable — an implicit-capable family that
  // accepts the parameters, ball exec mode, a ball-backed construction, a
  // success workload, and a local (non-global-check) decider.
  std::uint64_t implicit_n = 0;
  bool any_implicit = false;
  for (const std::uint64_t n : spec.n_grid) {
    if (spec.execution == Execution::kImplicit ||
        (spec.execution == Execution::kAuto && n > kMaterializeCap)) {
      any_implicit = true;
      implicit_n = n;
      break;
    }
  }
  if (any_implicit) {
    const std::string why =
        spec.execution == Execution::kImplicit
            ? "execution=implicit"
            : "n = " + std::to_string(implicit_n) +
                  " exceeds the materialization cap (" +
                  std::to_string(kMaterializeCap) + ")";
    if (!topology->build_implicit) {
      return why + ", but topology '" + spec.topology +
             "' has no implicit representation";
    }
    const ParamMap merged = merged_params(topology->schema, spec.params);
    if (topology->build_implicit(
            implicit_n, merged,
            rand::mix_keys(spec.base_seed, implicit_n)) == nullptr) {
      return why + ", but topology '" + spec.topology +
             "' declines implicit construction for these parameters "
             "(implicit instances carry the computed consecutive identity "
             "assignment — random-ids must be 0)";
    }
    if (spec.mode != local::ExecMode::kBalls) {
      return why + ", which requires mode=balls (implicit instances have "
             "no materialized graph for the engine to step)";
    }
    if (spec.workload != local::WorkloadKind::kSuccess) {
      return why + ", which requires a success workload (value/counter "
             "statistics read an O(n) output labeling)";
    }
    if (decider->global_check) {
      return why + ", which requires a local decider — the 'exact' global "
             "membership check reads an O(n) output labeling";
    }
    const std::unique_ptr<Construction> built =
        make_construction(spec.construction, spec.params);
    if (built->ball_algorithm() == nullptr) {
      return why + ", which requires a ball-backed construction, but '" +
             spec.construction + "' is engine-backed";
    }
  }

  if (spec.workload == local::WorkloadKind::kSuccess) {
    if (!spec.statistic.empty()) {
      return "success workloads take no statistic (got '" + spec.statistic +
             "'; declare a value or counter workload to measure it)";
    }
    return {};
  }
  const char* workload_name = local::to_string(spec.workload);
  if (spec.decider != "exact") {
    return std::string(workload_name) +
           " workloads measure the construction's output directly and "
           "require the 'exact' pseudo-decider, not '" + spec.decider + "'";
  }
  if (spec.statistic.empty()) {
    return std::string(workload_name) +
           " workload needs a statistic (e.g. 'rounds'; see the statistics "
           "catalogue)";
  }
  const StatisticEntry* statistic = statistics().find(spec.statistic);
  if (statistic == nullptr) {
    return unknown_component("statistic", spec.statistic, statistics());
  }
  if (spec.workload == local::WorkloadKind::kCounter &&
      !statistic->integer_valued) {
    return "statistic '" + spec.statistic + "' is not integer-valued; "
           "counter workloads sum exact integer slots — use a value "
           "workload instead";
  }
  if (statistic->needs_lcl) {
    const std::unique_ptr<lang::Language> built =
        make_language(spec.language, spec.params);
    if (lcl_core(*built) == nullptr) {
      return "statistic '" + spec.statistic + "' needs an LCL-backed "
             "language, but '" + spec.language + "' has no LCL core";
    }
  }
  return {};
}

CompiledScenario compile(const ScenarioSpec& spec) {
  const std::string error = validate(spec);
  LNC_EXPECTS(error.empty() && "invalid scenario spec");

  const DeciderEntry* decider_entry = deciders().find(spec.decider);

  CompiledScenario compiled;
  compiled.spec_ = spec;
  compiled.language_ = make_language(spec.language, spec.params);
  compiled.construction_ = make_construction(spec.construction, spec.params);
  compiled.fault_model_ = make_fault(spec.fault, spec.fault_params);
  if (!decider_entry->global_check) {
    compiled.decider_ =
        make_decider(spec.decider, compiled.language_.get(), spec.params);
  }

  const lang::Language* language = compiled.language_.get();
  const Construction* construction = compiled.construction_.get();
  const decide::RandomizedDecider* decider = compiled.decider_.get();
  // Null for trivial models: every execution path below bypasses the
  // fault machinery entirely then, keeping fault="none" bit-identical to
  // pre-fault runs.
  const fault::FaultModel* fault = compiled.fault_model_->trivial()
                                       ? nullptr
                                       : compiled.fault_model_.get();
  const local::RandomizedBallAlgorithm* ball = construction->ball_algorithm();
  // Engine constructions whose factory implements create_vector() can run
  // trial-vectorized; probe the capability once for the whole grid. The
  // SoA lockstep path has no fault hooks, so faulty specs stay on the
  // scalar engine (which realizes faults round by round).
  const local::NodeProgramFactory* engine_factory =
      construction->engine_factory();
  const bool vectorizable = engine_factory != nullptr &&
                            engine_factory->create_vector() != nullptr &&
                            fault == nullptr;
  const bool accept = spec.success_on_accept;

  decide::EvaluateOptions eval_options;
  eval_options.grant_n = decider_entry->needs_n;
  eval_options.fault = fault;

  // Value/counter workloads evaluate a registered statistic per trial.
  // Registry entries are process-lifetime, so plans may capture the entry.
  const StatisticEntry* statistic =
      spec.workload != local::WorkloadKind::kSuccess
          ? statistics().find(spec.statistic)
          : nullptr;
  // Shared per-trial body of the custom statistic paths: run the
  // construction (ball algorithms through the spec's exec mode, so
  // --mode means the same thing on every workload path), snapshot the
  // telemetry delta when the statistic reads it, evaluate.
  const local::ExecMode mode = spec.mode;
  const auto evaluate_statistic =
      [language, construction, statistic, ball, mode,
       fault](const local::Instance& instance, const local::TrialEnv& env) {
        local::Labeling& output = env.arena->labeling();
        local::Telemetry before;
        if (statistic->needs_telemetry) before = env.arena->telemetry();
        StatisticContext ctx;
        if (ball != nullptr) {
          const rand::PhiloxCoins fault_coins = env.fault_coins();
          local::ExecOptions exec_options;
          exec_options.arena = env.arena;
          if (fault != nullptr) {
            exec_options.fault = fault;
            exec_options.fault_coins = &fault_coins;
          }
          local::run_construction_into(instance, *ball,
                                       env.construction_coins(), mode,
                                       output, exec_options);
          ctx.outcome = Construction::Outcome{ball->radius()};
        } else {
          Construction::RunOptions run_options;
          run_options.fault = fault;
          ctx.outcome = construction->run(instance, env, output, run_options);
        }
        if (statistic->needs_telemetry) {
          const local::Telemetry& after = env.arena->telemetry();
          ctx.delta.messages_sent =
              after.messages_sent - before.messages_sent;
          ctx.delta.words_sent = after.words_sent - before.words_sent;
          ctx.delta.rounds_executed =
              after.rounds_executed - before.rounds_executed;
          ctx.delta.ball_expansions =
              after.ball_expansions - before.ball_expansions;
        }
        ctx.instance = &instance;
        ctx.output = &output;
        ctx.language = language;
        return statistic->eval(ctx);
      };

  compiled.points_.reserve(spec.n_grid.size());
  for (const std::uint64_t n : spec.n_grid) {
    const std::uint64_t instance_seed = rand::mix_keys(spec.base_seed, n);
    const std::uint64_t plan_seed =
        rand::mix_keys(instance_seed, kPlanSeedTag);
    const std::string plan_name = spec.name + "/n" + std::to_string(n);

    CompiledScenario::GridPoint point;
    point.requested_n = n;
    // Representation choice per grid point (validated above): implicit
    // points stream neighborhoods on demand and route into the streaming
    // construct-then-decide plan; everything else materializes the CSR
    // graph exactly as before.
    const bool implicit_point =
        spec.execution == Execution::kImplicit ||
        (spec.execution == Execution::kAuto && n > kMaterializeCap);
    point.instance =
        implicit_point
            ? interned_implicit_instance(spec.topology, n, spec.params,
                                         instance_seed)
            : interned_instance(spec.topology, n, spec.params, instance_seed);
    LNC_EXPECTS(point.instance != nullptr);
    const local::Instance& inst = *point.instance;

    if (spec.workload == local::WorkloadKind::kValue) {
      if (ball != nullptr && !statistic->needs_telemetry) {
        // Ball-based construction: route through the standard value-plan
        // factory (honoring the exec mode). Ball runs execute in their
        // radius, so the outcome is a grid-point constant.
        const Construction::Outcome ball_outcome{ball->radius()};
        point.plan = local::construction_value_plan(
            plan_name, inst, *ball,
            [language, statistic, ball_outcome](
                const local::Instance& instance,
                const local::Labeling& output) {
              StatisticContext ctx;
              ctx.instance = &instance;
              ctx.output = &output;
              ctx.outcome = ball_outcome;
              ctx.language = language;
              return statistic->eval(ctx);
            },
            spec.trials, plan_seed, spec.mode, /*grant_n=*/false, fault);
      } else {
        const local::Instance* inst_ptr = point.instance.get();
        point.plan = local::custom_value_plan(
            plan_name, spec.trials, plan_seed,
            [inst_ptr, evaluate_statistic](const local::TrialEnv& env) {
              return evaluate_statistic(*inst_ptr, env);
            });
      }
    } else if (spec.workload == local::WorkloadKind::kCounter) {
      const local::Instance* inst_ptr = point.instance.get();
      point.plan = local::custom_count_plan(
          plan_name, spec.trials, plan_seed, 1,
          [inst_ptr, evaluate_statistic](const local::TrialEnv& env,
                                         std::span<std::uint64_t> slots) {
            slots[0] += static_cast<std::uint64_t>(
                std::llround(evaluate_statistic(*inst_ptr, env)));
          });
    } else if (decider == nullptr) {
      // "exact": success == (global membership verdict == accept side).
      if (ball != nullptr) {
        point.plan = local::construction_plan(
            plan_name, inst, *ball,
            [language, accept](const local::Instance& instance,
                               const local::Labeling& output) {
              return language->contains(instance, output) == accept;
            },
            spec.trials, plan_seed, spec.mode, /*grant_n=*/false, fault);
      } else {
        const local::Instance* inst_ptr = point.instance.get();
        point.plan = local::custom_plan(
            plan_name, spec.trials, plan_seed,
            [inst_ptr, language, construction, accept, fault](
                const local::TrialEnv& env) {
              local::Labeling& output = env.arena->labeling();
              Construction::RunOptions run_options;
              run_options.fault = fault;
              construction->run(*inst_ptr, env, output, run_options);
              return language->contains(*inst_ptr, output) == accept;
            });
      }
    } else if (ball != nullptr) {
      point.plan = decide::construct_then_decide_plan(
          plan_name, inst, *ball, *decider, spec.trials, plan_seed,
          eval_options, accept, spec.mode);
    } else {
      const local::Instance* inst_ptr = point.instance.get();
      point.plan = local::custom_plan(
          plan_name, spec.trials, plan_seed,
          [inst_ptr, construction, decider, eval_options, accept,
           fault](const local::TrialEnv& env) {
            local::Labeling& output = env.arena->labeling();
            Construction::RunOptions run_options;
            run_options.fault = fault;
            construction->run(*inst_ptr, env, output, run_options);
            const rand::PhiloxCoins d_coins = env.decision_coins();
            const rand::PhiloxCoins f_coins = env.fault_coins();
            decide::EvaluateOptions trial_options = eval_options;
            trial_options.telemetry = &env.arena->telemetry();
            trial_options.ball = &env.arena->ball_workspace();
            if (fault != nullptr) trial_options.fault_coins = &f_coins;
            const decide::DecisionOutcome outcome = decide::evaluate(
                *inst_ptr, output, *decider, d_coins, trial_options);
            return outcome.accepted == accept;
          });
    }

    // Backend selection. Every plan carries an OptimizationConfig so a
    // forced --backend naive/batched is honored on every path; kAuto
    // resolves through the size-based tuner. Vectorizable engine
    // constructions additionally get the SoA execution hooks — the
    // workload-matching finish turns each lockstep trial's output into
    // exactly what the scalar trial body would have tallied.
    {
      double mean_degree = 0.0;
      if (inst.is_implicit()) {
        mean_degree = inst.implicit->mean_degree();
      } else if (inst.node_count() > 0) {
        double degree_sum = 0.0;
        for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
          degree_sum += static_cast<double>(inst.g.degree(v));
        }
        mean_degree = degree_sum / static_cast<double>(inst.node_count());
      }
      local::OptimizationConfig config = local::OptimizationConfig::automatic(
          inst.node_count(), spec.trials, mean_degree);
      if (spec.backend != local::OptimizationConfig::Backend::kAuto) {
        config.backend = spec.backend;
      }
      point.plan.optimization = config;
    }
    if (vectorizable) {
      const local::Instance* inst_ptr = point.instance.get();
      point.plan.vector.instance = inst_ptr;
      point.plan.vector.factory = engine_factory;
      if (spec.workload == local::WorkloadKind::kValue ||
          spec.workload == local::WorkloadKind::kCounter) {
        const auto finish_statistic =
            [inst_ptr, language, statistic](
                const local::TrialEnv& /*env*/, const local::Labeling& output,
                int rounds, const local::Telemetry& delta) {
              StatisticContext ctx;
              ctx.instance = inst_ptr;
              ctx.output = &output;
              ctx.outcome = Construction::Outcome{rounds};
              ctx.language = language;
              if (statistic->needs_telemetry) ctx.delta = delta;
              return statistic->eval(ctx);
            };
        if (spec.workload == local::WorkloadKind::kValue) {
          point.plan.vector.value_finish =
              [finish_statistic](const local::TrialEnv& env,
                                 const local::Labeling& output, int rounds,
                                 const local::Telemetry& delta) {
                return finish_statistic(env, output, rounds, delta);
              };
        } else {
          point.plan.vector.count_finish =
              [finish_statistic](const local::TrialEnv& env,
                                 const local::Labeling& output, int rounds,
                                 const local::Telemetry& delta,
                                 std::span<std::uint64_t> slots) {
                slots[0] += static_cast<std::uint64_t>(
                    std::llround(finish_statistic(env, output, rounds, delta)));
              };
        }
      } else if (decider == nullptr) {
        point.plan.vector.success_finish =
            [inst_ptr, language, accept](const local::TrialEnv& /*env*/,
                                         const local::Labeling& output,
                                         int /*rounds*/,
                                         const local::Telemetry& /*delta*/) {
              return language->contains(*inst_ptr, output) == accept;
            };
      } else {
        point.plan.vector.success_finish =
            [inst_ptr, decider, eval_options, accept](
                const local::TrialEnv& env, const local::Labeling& output,
                int /*rounds*/, const local::Telemetry& /*delta*/) {
              const rand::PhiloxCoins d_coins = env.decision_coins();
              decide::EvaluateOptions trial_options = eval_options;
              trial_options.telemetry = &env.arena->telemetry();
              trial_options.ball = &env.arena->ball_workspace();
              const decide::DecisionOutcome outcome = decide::evaluate(
                  *inst_ptr, output, *decider, d_coins, trial_options);
              return outcome.accepted == accept;
            };
      }
    }
    compiled.points_.push_back(std::move(point));
  }
  return compiled;
}

}  // namespace lnc::scenario
