#include "scenario/spec_json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/string_util.h"

namespace lnc::scenario {
namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("JSON error at offset " + std::to_string(offset) +
                           ": " + what);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      fail(pos_, std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char ch = peek();
    if (ch == '{') return parse_object();
    if (ch == '[') return parse_array();
    if (ch == '"') {
      Json value;
      value.kind = Json::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      Json value;
      value.kind = Json::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      Json value;
      value.kind = Json::Kind::kBool;
      return value;
    }
    if (consume_literal("null")) return {};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // \uXXXX, UTF-8-encoded (BMP code points; surrogate pairs are
            // not combined — the stack only ever emits \u00XX for control
            // characters, but files written by other tools parse too).
            if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char hex = text_[pos_ + static_cast<std::size_t>(k)];
              code <<= 4;
              if (hex >= '0' && hex <= '9') {
                code |= static_cast<unsigned>(hex - '0');
              } else if (hex >= 'a' && hex <= 'f') {
                code |= static_cast<unsigned>(hex - 'a' + 10);
              } else if (hex >= 'A' && hex <= 'F') {
                code |= static_cast<unsigned>(hex - 'A' + 10);
              } else {
                fail(pos_ + static_cast<std::size_t>(k),
                     "bad \\u escape digit");
              }
            }
            pos_ += 4;
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(
                  static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail(pos_ - 1, "unsupported escape");
        }
        continue;
      }
      out.push_back(ch);
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail(start, "expected a value");
    Json json;
    json.kind = Json::Kind::kNumber;
    json.number = value;
    // Plain non-negative integer tokens additionally keep their exact
    // 64-bit value (doubles round above 2^53 — seeds are full-width).
    const std::string_view token(begin, static_cast<std::size_t>(end - begin));
    if (!token.empty() &&
        token.find_first_not_of("0123456789") == std::string_view::npos) {
      char* int_end = nullptr;
      errno = 0;
      const std::uint64_t exact = std::strtoull(begin, &int_end, 10);
      if (int_end == end && errno == 0) {
        json.is_uint64 = true;
        json.integer = exact;
      }
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return json;
  }

  Json parse_array() {
    expect('[');
    Json value;
    value.kind = Json::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char ch = peek();
      ++pos_;
      if (ch == ']') return value;
      if (ch != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json value;
    value.kind = Json::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail(pos_, "expected object key string");
      std::string key = parse_string();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      const char ch = peek();
      ++pos_;
      if (ch == '}') return value;
      if (ch != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const std::string& what) {
  throw std::runtime_error("JSON type error: " + what);
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

bool Json::has(const std::string& key) const {
  return kind == Kind::kObject && object.find(key) != object.end();
}

const Json& Json::at(const std::string& key) const {
  if (kind != Kind::kObject) type_error("not an object (key '" + key + "')");
  const auto it = object.find(key);
  if (it == object.end()) type_error("missing key '" + key + "'");
  return it->second;
}

bool Json::as_bool() const {
  if (kind != Kind::kBool) type_error("expected a boolean");
  return boolean;
}

double Json::as_number() const {
  if (kind != Kind::kNumber) type_error("expected a number");
  return number;
}

std::uint64_t Json::as_uint64() const {
  if (kind != Kind::kNumber || !is_uint64) {
    type_error("expected a non-negative integer");
  }
  return integer;
}

const std::string& Json::as_string() const {
  if (kind != Kind::kString) type_error("expected a string");
  return string;
}

const Json::Array& Json::as_array() const {
  if (kind != Kind::kArray) type_error("expected an array");
  return array;
}

const Json::Object& Json::as_object() const {
  if (kind != Kind::kObject) type_error("expected an object");
  return object;
}

ScenarioSpec spec_from_json(const std::string& text) {
  return spec_from_json(Json::parse(text));
}

ScenarioSpec spec_from_json(const Json& root) {
  ScenarioSpec spec;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "doc") {
      spec.doc = value.as_string();
    } else if (key == "topology") {
      spec.topology = value.as_string();
    } else if (key == "language") {
      spec.language = value.as_string();
    } else if (key == "construction") {
      spec.construction = value.as_string();
    } else if (key == "decider") {
      spec.decider = value.as_string();
    } else if (key == "fault") {
      spec.fault = value.as_string();
    } else if (key == "fault-params") {
      for (const auto& [param_name, param_value] : value.as_object()) {
        spec.fault_params[param_name] = param_value.as_number();
      }
    } else if (key == "params") {
      for (const auto& [param_name, param_value] : value.as_object()) {
        spec.params[param_name] = param_value.as_number();
      }
    } else if (key == "n") {
      for (const Json& n : value.as_array()) {
        spec.n_grid.push_back(n.as_uint64());
      }
    } else if (key == "trials") {
      spec.trials = value.as_uint64();
    } else if (key == "seed") {
      spec.base_seed = value.as_uint64();
    } else if (key == "workload") {
      const std::optional<local::WorkloadKind> kind =
          local::workload_from_string(value.as_string());
      if (!kind) {
        throw std::runtime_error(
            "spec 'workload' must be success|value|counter");
      }
      spec.workload = *kind;
    } else if (key == "statistic") {
      spec.statistic = value.as_string();
    } else if (key == "success") {
      const std::string& side = value.as_string();
      if (side != "accept" && side != "reject") {
        throw std::runtime_error("spec 'success' must be accept|reject");
      }
      spec.success_on_accept = side == "accept";
    } else if (key == "backend") {
      const std::optional<local::OptimizationConfig::Backend> backend =
          local::backend_from_string(value.as_string());
      if (!backend) {
        throw std::runtime_error(
            "spec 'backend' must be auto|naive|batched|vectorized, got '" +
            value.as_string() + "'");
      }
      spec.backend = *backend;
    } else if (key == "execution") {
      const std::optional<Execution> execution =
          execution_from_string(value.as_string());
      if (!execution) {
        throw std::runtime_error(
            "spec 'execution' must be auto|materialized|implicit, got '" +
            value.as_string() + "'");
      }
      spec.execution = *execution;
    } else if (key == "mode") {
      const std::string& mode = value.as_string();
      if (mode == "balls") {
        spec.mode = local::ExecMode::kBalls;
      } else if (mode == "messages") {
        spec.mode = local::ExecMode::kMessages;
      } else if (mode == "two-phase") {
        spec.mode = local::ExecMode::kTwoPhase;
      } else {
        throw std::runtime_error(
            "spec 'mode' must be balls|messages|two-phase");
      }
    } else {
      throw std::runtime_error("unknown spec key '" + key + "'");
    }
  }
  return spec;
}

ScenarioSpec cache_normal_form(const ScenarioSpec& spec) {
  ScenarioSpec normal = spec;
  // Not part of WHICH curve: the cache stores an explicit trial range at
  // the entry's own seed, labels don't change results, and backends are
  // bit-identical by contract (CI backend identity gate). Mode stays —
  // measured vs modeled telemetry makes ball/message runs distinct
  // cacheable results.
  normal.trials = 0;
  normal.base_seed = 0;
  normal.name.clear();
  normal.doc.clear();
  normal.backend = local::OptimizationConfig::Backend::kAuto;
  // Implicit and materialized execution of one spec are bit-identical by
  // contract (CI implicit topology gate), so runs on either path share a
  // cache entry and top each other up.
  normal.execution = Execution::kAuto;
  // Fault canonicalization: "none" always normalizes to the absent block
  // (pre-fault keys stay byte-unchanged), and non-trivial models
  // materialize their schema defaults so `drop` and `drop{p-loss=0.1}` —
  // the same realized adversary — share one cache entry.
  if (normal.fault == "none") {
    normal.fault_params.clear();
  } else if (const FaultEntry* entry = faults().find(normal.fault)) {
    normal.fault_params = merged_params(entry->schema, normal.fault_params);
  }
  return normal;
}

std::string spec_to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{\"name\": \"" << util::json_escape(spec.name) << "\"";
  if (!spec.doc.empty()) {
    os << ", \"doc\": \"" << util::json_escape(spec.doc) << "\"";
  }
  os << ", \"topology\": \"" << util::json_escape(spec.topology)
     << "\", \"language\": \"" << util::json_escape(spec.language)
     << "\", \"construction\": \"" << util::json_escape(spec.construction)
     << "\", \"decider\": \"" << util::json_escape(spec.decider) << "\"";
  // The fault block is emitted only when non-trivial: specs predating the
  // fault axis (and every cache key derived from their JSON) stay
  // byte-unchanged, and fault="none" IS the absent block.
  if (spec.fault != "none") {
    os << ", \"fault\": \"" << util::json_escape(spec.fault) << "\"";
    if (!spec.fault_params.empty()) {
      os << ", \"fault-params\": {";
      bool first = true;
      for (const auto& [key, value] : spec.fault_params) {
        if (!first) os << ", ";
        first = false;
        std::ostringstream number;
        number.precision(17);
        number << value;
        os << "\"" << util::json_escape(key) << "\": " << number.str();
      }
      os << "}";
    }
  }
  if (!spec.params.empty()) {
    os << ", \"params\": {";
    bool first = true;
    // ParamMap is ordered — emission is deterministic.
    for (const auto& [key, value] : spec.params) {
      if (!first) os << ", ";
      first = false;
      std::ostringstream number;
      number.precision(17);  // doubles round-trip at 17 significant digits
      number << value;
      os << "\"" << util::json_escape(key) << "\": " << number.str();
    }
    os << "}";
  }
  os << ", \"workload\": \"" << local::to_string(spec.workload) << "\"";
  if (!spec.statistic.empty()) {
    os << ", \"statistic\": \"" << util::json_escape(spec.statistic) << "\"";
  }
  os << ", \"n\": [";
  for (std::size_t i = 0; i < spec.n_grid.size(); ++i) {
    if (i > 0) os << ", ";
    os << spec.n_grid[i];
  }
  os << "], \"trials\": " << spec.trials << ", \"seed\": " << spec.base_seed
     << ", \"success\": \"" << (spec.success_on_accept ? "accept" : "reject")
     << "\", \"mode\": \"" << local::to_string(spec.mode)
     << "\", \"backend\": \"" << local::to_string(spec.backend) << "\"";
  // Emitted only when forced: kAuto stays implicit so pre-existing spec
  // JSON (and every cache key derived from it) is byte-unchanged.
  if (spec.execution != Execution::kAuto) {
    os << ", \"execution\": \"" << to_string(spec.execution) << "\"";
  }
  os << "}\n";
  return os.str();
}

std::string telemetry_to_json(const local::Telemetry& telemetry) {
  std::ostringstream os;
  os.precision(9);
  os << "{\"messages\": " << telemetry.messages_sent
     << ", \"words\": " << telemetry.words_sent
     << ", \"rounds\": " << telemetry.rounds_executed
     << ", \"ball_expansions\": " << telemetry.ball_expansions;
  // Fault counters appear only when a fault model actually charged them:
  // fault-free telemetry JSON is byte-identical to the pre-fault format.
  if (telemetry.messages_dropped != 0) {
    os << ", \"messages_dropped\": " << telemetry.messages_dropped;
  }
  if (telemetry.nodes_crashed != 0) {
    os << ", \"nodes_crashed\": " << telemetry.nodes_crashed;
  }
  if (telemetry.edges_churned != 0) {
    os << ", \"edges_churned\": " << telemetry.edges_churned;
  }
  os << ", \"arena_peak_bytes\": " << telemetry.arena_peak_bytes
     << ", \"wall_seconds\": " << telemetry.wall_seconds << "}";
  return os.str();
}

std::string optimization_to_json(const local::OptimizationConfig& config) {
  std::ostringstream os;
  os << "{\"backend\": \"" << local::to_string(config.backend)
     << "\", \"batch_trials\": " << config.batch_trials
     << ", \"use_silent_skip\": "
     << (config.use_silent_skip ? "true" : "false")
     << ", \"use_done_mask\": " << (config.use_done_mask ? "true" : "false")
     << ", \"reuse_round_buffers\": "
     << (config.reuse_round_buffers ? "true" : "false") << "}";
  return os.str();
}

local::Telemetry telemetry_from_json(const Json& json) {
  local::Telemetry telemetry;
  if (json.has("messages")) {
    telemetry.messages_sent = json.at("messages").as_uint64();
  }
  if (json.has("words")) telemetry.words_sent = json.at("words").as_uint64();
  if (json.has("rounds")) {
    telemetry.rounds_executed = json.at("rounds").as_uint64();
  }
  if (json.has("ball_expansions")) {
    telemetry.ball_expansions = json.at("ball_expansions").as_uint64();
  }
  if (json.has("messages_dropped")) {
    telemetry.messages_dropped = json.at("messages_dropped").as_uint64();
  }
  if (json.has("nodes_crashed")) {
    telemetry.nodes_crashed = json.at("nodes_crashed").as_uint64();
  }
  if (json.has("edges_churned")) {
    telemetry.edges_churned = json.at("edges_churned").as_uint64();
  }
  if (json.has("arena_peak_bytes")) {
    telemetry.arena_peak_bytes = json.at("arena_peak_bytes").as_uint64();
  }
  if (json.has("wall_seconds")) {
    telemetry.wall_seconds = json.at("wall_seconds").as_number();
  }
  return telemetry;
}

}  // namespace lnc::scenario
