// The scenario registries — string-addressable catalogues of the four
// component kinds every experiment in this repo wires together:
//
//   topology      — instance families (graph/generators + identity policy);
//   language      — the distributed language being constructed/decided
//                   (lang/*, including the paper's relaxations);
//   construction  — Monte-Carlo / deterministic construction algorithms
//                   (src/algo), uniformly runnable per trial whether they
//                   are ball algorithms or engine node programs;
//   decider       — randomized local deciders (src/decide), plus the
//                   pseudo-decider "exact" (global membership check).
//
// Each entry self-describes with a name, a parameter schema (numeric
// knobs with defaults and docs), and a doc string, so drivers can list,
// validate, and build components without compiling new binaries. A
// scenario (scenario/scenario.h) references entries by name and compiles
// into ExperimentPlans; `lnc_sweep` exposes the whole catalogue on the
// command line.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "decide/decider.h"
#include "fault/fault.h"
#include "lang/language.h"
#include "local/batch_runner.h"
#include "local/instance.h"

namespace lnc::scenario {

/// Numeric parameters keyed by name. Every component knob in the repo is
/// numeric, which keeps specs JSON-friendly; validation fills defaults and
/// rejects keys no component schema declares.
using ParamMap = std::map<std::string, double>;

/// One declared knob of a component. The inclusive [min_value, max_value]
/// range mirrors the component's constructor preconditions, so spec-level
/// validation rejects out-of-range values with a diagnostic instead of
/// letting the build abort on a contract violation.
struct ParamSpec {
  std::string name;
  double default_value = 0.0;
  std::string doc;
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
};
using ParamSchema = std::vector<ParamSpec>;

/// Completes `params` against `schema`: the result holds every schema key
/// (user value if given, default otherwise). Keys outside the schema are
/// IGNORED here — scenarios share one parameter namespace across their
/// four components, so cross-component keys are expected; spec-level
/// validation separately rejects keys unknown to all schemas.
ParamMap merged_params(const ParamSchema& schema, const ParamMap& params);

/// The numeric value of `name` in a merged map (asserts presence).
double param(const ParamMap& merged, const std::string& name);

// ---------------------------------------------------------------------------
// Topologies

struct TopologyEntry {
  std::string name;
  std::string doc;
  ParamSchema schema;
  /// Builds the instance (graph + identities + inputs). `n` is the
  /// REQUESTED size; rigid families (grid, hypercube, petersen) realize
  /// the nearest size they support — read node_count() off the result.
  /// `params` is schema-merged; `seed` drives any sampling, so equal
  /// arguments always produce equal instances.
  std::function<local::Instance(std::uint64_t n, const ParamMap& params,
                                std::uint64_t seed)>
      build;
  /// Implicit counterpart of `build`: synthesizes the SAME topology
  /// (identical size realization, identical edges — the bit-identity
  /// contract tests/topology_test.cpp asserts) as an on-demand
  /// ImplicitTopology, so ball-mode plans run at n beyond what `build`
  /// can materialize. Null when the family cannot be sampled locally;
  /// a non-null hook may still return null for parameter combinations it
  /// cannot honor (e.g. random-ids=1 — implicit instances carry the
  /// computed consecutive assignment).
  std::function<std::shared_ptr<const graph::ImplicitTopology>(
      std::uint64_t n, const ParamMap& params, std::uint64_t seed)>
      build_implicit;
};

// ---------------------------------------------------------------------------
// Languages

/// Implemented by registered relaxation wrappers (f-resilient, eps-slack,
/// poly-resilient) so deciders can reach the LCL core they check balls
/// against. Prefer the free function lcl_core() below, which also handles
/// plain LCL languages and the raw lang/relax.h wrappers.
class RelaxedLanguage : public lang::Language {
 public:
  virtual const lang::LclLanguage& core() const = 0;
};

/// The LCL language underlying `language`: the language itself when it is
/// an LclLanguage, the base of a (registered or raw) relaxation wrapper,
/// null otherwise (e.g. amos).
const lang::LclLanguage* lcl_core(const lang::Language& language);

/// True for the topologies that realize the canonical oriented cycle —
/// the shapes ring_only constructions (Cole-Vishkin) accept.
bool is_canonical_ring(const std::string& topology);

struct LanguageEntry {
  std::string name;
  std::string doc;
  ParamSchema schema;
  std::function<std::unique_ptr<lang::Language>(const ParamMap& params)> build;
};

// ---------------------------------------------------------------------------
// Constructions

/// A construction algorithm resolved from the registry: one uniform way to
/// run one construction per trial, regardless of substrate (ball algorithm
/// vs engine node program). Randomness comes from the trial's construction
/// coins; scratch from the trial's WorkerArena.
class Construction {
 public:
  struct Outcome {
    int rounds = 0;  ///< LOCAL rounds executed (0 for zero-round/ball runs)
  };

  /// Per-run knobs beyond the TrialEnv. `pool` requests parallel NODE
  /// stepping inside the run (engine substrate ablations); Monte-Carlo
  /// sweeps parallelize across trials instead and leave it null. A
  /// non-null, non-trivial `fault` runs the construction under that
  /// adversary (drawing from the trial's fault_coins()); only
  /// fault-capable constructions accept one — scenario validation
  /// enforces the flag.
  struct RunOptions {
    const stats::ThreadPool* pool = nullptr;
    const fault::FaultModel* fault = nullptr;
  };

  virtual ~Construction() = default;
  virtual std::string name() const = 0;

  /// Runs one construction into `output` (resized to inst.node_count()).
  virtual Outcome run(const local::Instance& inst, const local::TrialEnv& env,
                      local::Labeling& output,
                      const RunOptions& options) const = 0;
  Outcome run(const local::Instance& inst, const local::TrialEnv& env,
              local::Labeling& output) const {
    return run(inst, env, output, RunOptions());
  }

  /// The underlying ball algorithm when this construction is ball-based —
  /// non-null lets scenario compilation route through the existing
  /// local::construction_plan / decide::construct_then_decide_plan
  /// factories (with exec-mode control) instead of a custom trial.
  virtual const local::RandomizedBallAlgorithm* ball_algorithm() const {
    return nullptr;
  }

  /// The node-program factory when this construction is an engine program
  /// — non-null lets scenario compilation probe the factory's
  /// create_vector() capability and attach a trial-vectorized execution
  /// (local/vector_engine.h) to the compiled plan.
  virtual const local::NodeProgramFactory* engine_factory() const {
    return nullptr;
  }
};

struct ConstructionEntry {
  std::string name;
  std::string doc;
  ParamSchema schema;
  bool randomized = true;
  /// Requires the canonical oriented cycle (graph::cycle) as topology.
  bool ring_only = false;
  /// The language this construction naturally targets (empty when there
  /// is no sensible default) — drivers use it to verify outputs without
  /// being told a language explicitly.
  std::string default_language;
  /// Honors Construction::RunOptions::fault: its run is well-defined when
  /// nodes crash and deliveries vanish (ball algorithms censored by the
  /// fault subgraph, or engine programs hardened against silent ports).
  /// Validation rejects non-trivial faults on entries left at false.
  bool fault_capable = false;
  std::function<std::unique_ptr<Construction>(const ParamMap& params)> build;
};

// ---------------------------------------------------------------------------
// Statistics (value / counter workloads)

/// Everything a per-trial statistic may read: the instance, the
/// construction's output labeling and outcome (executed rounds), the
/// scenario's language, and the trial's telemetry delta — the
/// communication volume this construction run charged (measured for
/// engine runs, simulation-theorem-modeled for ball runs).
struct StatisticContext {
  const local::Instance* instance = nullptr;
  const local::Labeling* output = nullptr;
  Construction::Outcome outcome;
  const lang::Language* language = nullptr;
  local::Telemetry delta;
};

/// One registered per-trial statistic — the quantity a value workload
/// averages (BatchRunner::run_mean) or a counter workload sums exactly.
struct StatisticEntry {
  std::string name;
  std::string doc;
  /// Integer-valued statistics are eligible for counter workloads: their
  /// per-trial values sum exactly into uint64 slots. Opt-in (false by
  /// default) so a forgotten flag on a fractional statistic fails safe —
  /// value workloads always work.
  bool integer_valued = false;
  /// Requires lcl_core(language) != null (bad-ball statistics).
  bool needs_lcl = false;
  /// Reads the trial's telemetry delta; scenario compilation then routes
  /// the plan through the custom path that snapshots telemetry per trial.
  bool needs_telemetry = false;
  std::function<double(const StatisticContext&)> eval;
};

// ---------------------------------------------------------------------------
// Faults

/// One registered fault model (src/fault/): an adversary every scenario
/// may name. `build` receives schema-merged params; the returned model is
/// immutable and shareable across trials (all per-trial state lives in
/// the trial's fault coin stream).
struct FaultEntry {
  std::string name;
  std::string doc;
  ParamSchema schema;
  std::function<std::shared_ptr<const fault::FaultModel>(
      const ParamMap& params)>
      build;
};

// ---------------------------------------------------------------------------
// Deciders

/// Adapts a deterministic decider to the randomized interface (ignores the
/// coins; guarantee 1), so every decider slot in the registry speaks
/// RandomizedDecider.
class AsRandomizedDecider final : public decide::RandomizedDecider {
 public:
  explicit AsRandomizedDecider(std::unique_ptr<decide::Decider> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  int radius() const override { return inner_->radius(); }
  double guarantee() const override { return 1.0; }
  bool accept(const decide::DeciderView& view,
              const rand::CoinProvider& /*coins*/) const override {
    return inner_->accept(view);
  }

 private:
  std::unique_ptr<decide::Decider> inner_;
};

struct DeciderEntry {
  std::string name;
  std::string doc;
  ParamSchema schema;
  /// The pseudo-decider "exact": global membership check by the scenario's
  /// language instead of a local decider (measures the construction's raw
  /// success probability r). `build` is unused when set.
  bool global_check = false;
  /// Requires lcl_core(language) != null (bad-ball-based deciders).
  bool needs_lcl = false;
  /// Evaluation must grant knowledge of n (the BPLD#node deciders).
  bool needs_n = false;
  /// `language` may be null for language-independent deciders (amos).
  std::function<std::unique_ptr<decide::RandomizedDecider>(
      const lang::Language* language, const ParamMap& params)>
      build;
};

// ---------------------------------------------------------------------------
// The registries

template <typename Entry>
class Registry {
 public:
  /// Registers an entry (unique names; re-registration asserts).
  void add(Entry entry);

  /// Looks an entry up by name; null when absent.
  const Entry* find(const std::string& name) const;

  /// All entries in name order.
  std::vector<const Entry*> all() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// The process-wide registries. First access registers the built-in
/// components (scenario/builtins.cpp); callers may add their own through
/// the mutable accessors before building scenarios.
Registry<TopologyEntry>& topologies();
Registry<LanguageEntry>& languages();
Registry<ConstructionEntry>& constructions();
Registry<DeciderEntry>& deciders();
Registry<StatisticEntry>& statistics();
Registry<FaultEntry>& faults();

// ---------------------------------------------------------------------------
// Convenience builders (assert on unknown names; scenario/scenario.h
// offers the error-returning validation path)

/// Builds an instance of the named topology at requested size n.
local::Instance build_instance(const std::string& topology, std::uint64_t n,
                               const ParamMap& params = {},
                               std::uint64_t seed = 1);

/// Process-wide interned fixed instances keyed by (topology, n, params,
/// seed): repeated requests — across plans, sweeps, and worker samplers —
/// share one immutable instance instead of rebuilding the graph
/// (ROADMAP "Instance caching"). Thread-safe.
std::shared_ptr<const local::Instance> interned_instance(
    const std::string& topology, std::uint64_t n, const ParamMap& params = {},
    std::uint64_t seed = 1);

/// Same interning for the implicit representation (distinct key space —
/// the two representations of one spec coexist without evicting each
/// other). Asserts the named topology declares build_implicit; returns
/// null when the hook declines the parameter combination.
std::shared_ptr<const local::Instance> interned_implicit_instance(
    const std::string& topology, std::uint64_t n, const ParamMap& params = {},
    std::uint64_t seed = 1);

std::unique_ptr<lang::Language> make_language(const std::string& name,
                                              const ParamMap& params = {});
std::unique_ptr<Construction> make_construction(const std::string& name,
                                                const ParamMap& params = {});
std::unique_ptr<decide::RandomizedDecider> make_decider(
    const std::string& name, const lang::Language* language,
    const ParamMap& params = {});
std::shared_ptr<const fault::FaultModel> make_fault(
    const std::string& name, const ParamMap& params = {});

}  // namespace lnc::scenario
