// The built-in component catalogue: every topology family, language,
// construction algorithm, and decider the repo implements, registered
// under stable string names so scenarios (and the lnc_sweep CLI) can
// reference them as data. Adding a component here makes it available to
// every preset, spec file, and bench binary at once.
#include "scenario/builtins.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/cole_vishkin.h"
#include "algo/greedy_by_id.h"
#include "algo/luby_mis.h"
#include "algo/moser_tardos.h"
#include "algo/rand_coloring.h"
#include "algo/rand_matching.h"
#include "algo/weak_color_mc.h"
#include "core/hard_instances.h"
#include "decide/amos_decider.h"
#include "decide/lcl_decider.h"
#include "decide/resilient_decider.h"
#include "decide/slack_decider.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "graph/implicit.h"
#include "lang/amos.h"
#include "lang/coloring.h"
#include "lang/domset.h"
#include "lang/frugal.h"
#include "lang/lll.h"
#include "lang/matching.h"
#include "lang/mis.h"
#include "lang/relax.h"
#include "lang/weak_coloring.h"
#include "local/experiment.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::scenario::detail {
namespace {

// ---------------------------------------------------------------- helpers --

/// Identity-derivation tag: keeps identity sampling independent of the
/// topology's own edge sampling under one scenario seed.
constexpr std::uint64_t kIdSeedTag = 0x1D;

/// Round cap for engine constructions under a non-trivial fault model:
/// faults can stall termination (a node whose progress messages always
/// drop never halts), so a faulty run that exhausts this budget is a
/// legitimate outcome, not an engine bug. Deterministic in the fault
/// coins, so the cap itself never breaks bit-reproducibility.
constexpr int kFaultMaxRounds = 256;

ident::IdAssignment ids_for(graph::NodeId n, bool random_ids,
                            std::uint64_t seed) {
  if (random_ids) {
    return ident::random_permutation(n, rand::mix_keys(seed, kIdSeedTag));
  }
  return ident::consecutive(n);
}

local::Instance instance_for(graph::Graph g, bool random_ids,
                             std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  return local::make_instance(std::move(g), ids_for(n, random_ids, seed));
}

bool flag(const ParamMap& merged, const std::string& name) {
  return param(merged, name) != 0.0;
}

const ParamSpec kRandomIdsOff{"random-ids", 0,
                              "1 = seed-derived permutation identities, "
                              "0 = consecutive 1..n",
                              0, 1};
const ParamSpec kRandomIdsOn{"random-ids", 1,
                             "1 = seed-derived permutation identities, "
                             "0 = consecutive 1..n",
                             0, 1};

// ------------------------------------------------------------- topologies --

void register_topologies(Registry<TopologyEntry>& topologies) {
  topologies.add(
      {"ring",
       "Cycle C_n (n >= 3) — the paper's canonical family; consecutive "
       "identities by default (the Corollary-1 hard case).",
       {kRandomIdsOff},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 3));
         return instance_for(graph::cycle(size), flag(p, "random-ids"), seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         const auto size =
             static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 3));
         return graph::implicit_cycle(size);
       }});
  topologies.add(
      {"hard-ring",
       "Claim-2 hard instance: C_n with consecutive identities starting at "
       "id-start (the identity-floor knob of the claim).",
       {{"id-start", 1, "smallest identity (Claim 2's Imin)", 0, 1e18}},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 3));
         return core::consecutive_ring(
             size, static_cast<ident::Identity>(param(p, "id-start")));
       },
       // id-start offsets the identity assignment, which implicit
       // instances compute as consecutive 1..n — not representable.
       nullptr});
  topologies.add(
      {"path",
       "Path P_n.",
       {kRandomIdsOff},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 1));
         return instance_for(graph::path(size), flag(p, "random-ids"), seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         const auto size =
             static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 1));
         return graph::implicit_path(size);
       }});
  topologies.add(
      {"grid",
       "Near-square grid: the largest s x s grid with s*s <= n (degree <= 4).",
       {kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         graph::NodeId side = 1;
         while (static_cast<std::uint64_t>(side + 1) * (side + 1) <= n) ++side;
         side = std::max<graph::NodeId>(side, 2);
         return instance_for(graph::grid(side, side), flag(p, "random-ids"),
                             seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         graph::NodeId side = 1;
         while (static_cast<std::uint64_t>(side + 1) * (side + 1) <= n) ++side;
         side = std::max<graph::NodeId>(side, 2);
         return graph::implicit_grid(side, side);
       }});
  topologies.add(
      {"torus",
       "Near-square torus (4-regular): the largest s x s torus with "
       "s*s <= n, s >= 3.",
       {kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         graph::NodeId side = 3;
         while (static_cast<std::uint64_t>(side + 1) * (side + 1) <= n) ++side;
         return instance_for(graph::torus(side, side), flag(p, "random-ids"),
                             seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         graph::NodeId side = 3;
         while (static_cast<std::uint64_t>(side + 1) * (side + 1) <= n) ++side;
         return graph::implicit_torus(side, side);
       }});
  topologies.add(
      {"hypercube",
       "d-dimensional hypercube: the largest d with 2^d <= n (d >= 1).",
       {kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         int d = 1;
         while ((std::uint64_t{1} << (d + 1)) <= std::max<std::uint64_t>(n, 2)) {
           ++d;
         }
         return instance_for(graph::hypercube(d), flag(p, "random-ids"), seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         int d = 1;
         while ((std::uint64_t{1} << (d + 1)) <= std::max<std::uint64_t>(n, 2)) {
           ++d;
         }
         return graph::implicit_hypercube(d);
       }});
  topologies.add(
      {"binary-tree",
       "Complete binary tree with n nodes (heap indexing, degree <= 3).",
       {kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 1));
         return instance_for(graph::binary_tree(size), flag(p, "random-ids"),
                             seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t /*seed*/)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         const auto size =
             static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 1));
         return graph::implicit_binary_tree(size);
       }});
  topologies.add(
      {"random-regular",
       "Random near-d-regular simple graph (union of seed-keyed "
       "permutation 2-factors, locally samplable); n is bumped by one when "
       "n*d is odd.",
       {{"degree", 3, "regular degree d", 1, 1024}, kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto degree = static_cast<graph::NodeId>(param(p, "degree"));
         auto size = static_cast<graph::NodeId>(
             std::max<std::uint64_t>(n, degree + 1));
         if ((static_cast<std::uint64_t>(size) * degree) % 2 != 0) ++size;
         return instance_for(graph::random_regular_cycles(size, degree, seed),
                             flag(p, "random-ids"), seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         const auto degree = static_cast<graph::NodeId>(param(p, "degree"));
         auto size = static_cast<graph::NodeId>(
             std::max<std::uint64_t>(n, degree + 1));
         if ((static_cast<std::uint64_t>(size) * degree) % 2 != 0) ++size;
         return graph::implicit_random_regular_cycles(size, degree, seed);
       }});
  topologies.add(
      {"gnp",
       "Erdos-Renyi G(n, p) conditioned on max degree <= max-degree — the "
       "promise F_k realized on random instances (hash-sampled edges, "
       "locally samplable).",
       {{"edge-prob", 0.1, "edge probability p", 0, 1},
        {"max-degree", 8, "degree cap (the promise's k)", 0, 1e9},
        kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 2));
         return instance_for(
             graph::gnp_hash(size, param(p, "edge-prob"),
                             static_cast<graph::NodeId>(param(p, "max-degree")),
                             seed),
             flag(p, "random-ids"), seed);
       },
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed)
           -> std::shared_ptr<const graph::ImplicitTopology> {
         if (flag(p, "random-ids")) return nullptr;
         const auto size =
             static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 2));
         return graph::implicit_gnp_hash(
             size, param(p, "edge-prob"),
             static_cast<graph::NodeId>(param(p, "max-degree")), seed);
       }});
  topologies.add(
      {"random-tree",
       "Random tree with maximum degree <= max-degree.",
       {{"max-degree", 3, "degree cap", 2, 1e9}, kRandomIdsOn},
       [](std::uint64_t n, const ParamMap& p, std::uint64_t seed) {
         const auto size = static_cast<graph::NodeId>(std::max<std::uint64_t>(n, 1));
         return instance_for(
             graph::random_tree_bounded(
                 size, static_cast<graph::NodeId>(param(p, "max-degree")), seed),
             flag(p, "random-ids"), seed);
       },
       // Sequential attachment sampler — no local neighborhood oracle.
       nullptr});
  topologies.add(
      {"petersen",
       "The Petersen graph (3-regular, girth 5); n is ignored (always 10).",
       {kRandomIdsOff},
       [](std::uint64_t /*n*/, const ParamMap& p, std::uint64_t seed) {
         return instance_for(graph::petersen(), flag(p, "random-ids"), seed);
       },
       // Fixed 10-node graph — nothing to gain from implicitness.
       nullptr});
}

// -------------------------------------------------------------- languages --

/// Owns a ProperColoring base plus one of the paper's three relaxations of
/// it, exposing the base as the LCL core deciders check against.
class ColoringRelaxation final : public RelaxedLanguage {
 public:
  enum class Kind { kResilient, kSlack, kPoly };

  ColoringRelaxation(int colors, Kind kind, double value) : base_(colors) {
    switch (kind) {
      case Kind::kResilient:
        relaxed_ = std::make_unique<lang::FResilient>(
            base_, static_cast<std::size_t>(value));
        break;
      case Kind::kSlack:
        relaxed_ = std::make_unique<lang::EpsSlack>(base_, value);
        break;
      case Kind::kPoly:
        relaxed_ = std::make_unique<lang::PolyResilient>(base_, value);
        break;
    }
  }

  std::string name() const override { return relaxed_->name(); }
  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override {
    return relaxed_->contains(inst, output);
  }
  const lang::LclLanguage& core() const override { return base_; }

 private:
  lang::ProperColoring base_;
  std::unique_ptr<lang::Language> relaxed_;
};

void register_languages(Registry<LanguageEntry>& languages) {
  languages.add({"coloring",
                 "Proper q-coloring (radius-1 LCL) — the running example.",
                 {{"colors", 3, "palette size q", 1, 1e9}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::ProperColoring>(
                       static_cast<int>(param(p, "colors")));
                 }});
  languages.add({"weak-coloring",
                 "Weak q-coloring (Naor-Stockmeyer): every non-isolated node "
                 "has a differing neighbor.",
                 {{"colors", 2, "palette size q", 2, 1e9}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::WeakColoring>(
                       static_cast<int>(param(p, "colors")));
                 }});
  languages.add({"mis",
                 "Maximal independent set (radius-1 LCL).",
                 {},
                 [](const ParamMap&) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::MaximalIndependentSet>();
                 }});
  languages.add({"matching",
                 "Maximal matching; outputs name the matched neighbor.",
                 {},
                 [](const ParamMap&) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::MaximalMatching>();
                 }});
  languages.add({"minimal-dominating-set",
                 "Minimal dominating set (radius-2 LCL).",
                 {},
                 [](const ParamMap&) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::MinimalDominatingSet>();
                 }});
  languages.add({"lll-avoidance",
                 "The LLL system: no closed neighborhood is monochromatic.",
                 {},
                 [](const ParamMap&) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::LllAvoidance>();
                 }});
  languages.add({"frugal-coloring",
                 "c-frugal proper coloring (paper, section 4).",
                 {{"colors", 4, "palette size", 1, 1e9},
                  {"frugality", 1, "max per-color multiplicity c", 1, 1e9}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::FrugalColoring>(
                       static_cast<int>(param(p, "colors")),
                       static_cast<int>(param(p, "frugality")));
                 }});
  languages.add({"amos",
                 "At most one selected (global; the LD-vs-BPLD separator).",
                 {},
                 [](const ParamMap&) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<lang::Amos>();
                 }});
  languages.add({"resilient-coloring",
                 "f-resilient relaxation of proper coloring (Definition 1): "
                 "at most `faults` bad balls.",
                 {{"colors", 3, "palette size", 1, 1e9},
                  {"faults", 1, "fault budget f", 0, 1e9}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<ColoringRelaxation>(
                       static_cast<int>(param(p, "colors")),
                       ColoringRelaxation::Kind::kResilient,
                       param(p, "faults"));
                 }});
  languages.add({"slack-coloring",
                 "eps-slack relaxation of proper coloring: at most eps*n bad "
                 "balls (BPLD#node territory).",
                 {{"colors", 3, "palette size", 1, 1e9},
                  {"eps", 0.1, "slack fraction", 0, 1}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<ColoringRelaxation>(
                       static_cast<int>(param(p, "colors")),
                       ColoringRelaxation::Kind::kSlack, param(p, "eps"));
                 }});
  languages.add({"poly-resilient-coloring",
                 "n^c-resilient coloring — the paper's section-5 open-problem "
                 "regime.",
                 {{"colors", 3, "palette size", 1, 1e9},
                  {"exponent", 0.5, "budget exponent c in (0, 1)", 0, 1}},
                 [](const ParamMap& p) -> std::unique_ptr<lang::Language> {
                   return std::make_unique<ColoringRelaxation>(
                       static_cast<int>(param(p, "colors")),
                       ColoringRelaxation::Kind::kPoly, param(p, "exponent"));
                 }});
}

// ----------------------------------------------------------- constructions --

/// Ball-algorithm-backed construction (direct ball runner; scenario
/// compilation may still re-route through the messages/two-phase modes).
class BallConstruction final : public Construction {
 public:
  explicit BallConstruction(
      std::unique_ptr<local::RandomizedBallAlgorithm> algo)
      : algo_(std::move(algo)) {}

  std::string name() const override { return algo_->name(); }

  Outcome run(const local::Instance& inst, const local::TrialEnv& env,
              local::Labeling& output,
              const RunOptions& run_options) const override {
    const rand::PhiloxCoins coins = env.construction_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    local::ExecOptions options;
    options.arena = env.arena;
    if (run_options.fault != nullptr && !run_options.fault->trivial()) {
      options.fault = run_options.fault;
      options.fault_coins = &fault_coins;
    }
    local::run_construction_into(inst, *algo_, coins, local::ExecMode::kBalls,
                                 output, options);
    return {algo_->radius()};
  }

  const local::RandomizedBallAlgorithm* ball_algorithm() const override {
    return algo_.get();
  }

 private:
  std::unique_ptr<local::RandomizedBallAlgorithm> algo_;
};

/// Engine-program-backed construction.
class EngineConstruction final : public Construction {
 public:
  EngineConstruction(std::unique_ptr<local::NodeProgramFactory> factory,
                     bool randomized)
      : factory_(std::move(factory)), randomized_(randomized) {}

  std::string name() const override { return factory_->name(); }

  Outcome run(const local::Instance& inst, const local::TrialEnv& env,
              local::Labeling& output,
              const RunOptions& run_options) const override {
    const rand::PhiloxCoins coins = env.construction_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    local::EngineOptions options;
    if (randomized_) options.coins = &coins;
    if (env.arena != nullptr) options.scratch = &env.arena->engine();
    options.pool = run_options.pool;
    const bool faulty =
        run_options.fault != nullptr && !run_options.fault->trivial();
    if (faulty) {
      options.fault = run_options.fault;
      options.fault_coins = &fault_coins;
      // Lossy/crashed neighborhoods can stall progress detection forever
      // (e.g. a proposer whose acceptances always drop); cap the rounds and
      // let undecided nodes keep their current output.
      options.max_rounds = kFaultMaxRounds;
    }
    local::EngineResult result = run_engine(inst, *factory_, options);
    if (!faulty) LNC_ASSERT(result.completed);
    output = std::move(result.output);
    return {result.rounds};
  }

  const local::NodeProgramFactory* engine_factory() const override {
    return factory_.get();
  }

 private:
  std::unique_ptr<local::NodeProgramFactory> factory_;
  bool randomized_;
};

/// Zero-round amos construction: a node selects itself iff its identity is
/// at most `count` — on permutation identities 1..n this marks exactly
/// `count` nodes, giving declarative yes (count <= 1) and no (count >= 2)
/// amos configurations.
class SelectIdBelow final : public local::RandomizedBallAlgorithm {
 public:
  explicit SelectIdBelow(std::uint64_t count) : count_(count) {}
  std::string name() const override {
    return "select-id-below(" + std::to_string(count_) + ")";
  }
  int radius() const override { return 0; }
  local::Label compute(const local::View& view,
                       const rand::CoinProvider& /*coins*/) const override {
    return view.center_identity() <= count_ ? lang::Amos::kSelected : 0;
  }

 private:
  std::uint64_t count_;
};

/// K-phase Luby MIS simulated inside the radius-K ball. Phase-j priorities
/// are pure functions of (coins, identity, j), so every ball containing a
/// node replays the same trajectory for it — the consistency the implicit
/// streaming path relies on when it recomputes members' outputs from their
/// own balls. The center's state after K phases depends on exactly its
/// radius-K ball (a node at distance d is simulated faithfully through
/// phase K-d, and only its early phases reach the center), so simulating
/// the whole ball and reading the center is a faithful K-round LOCAL
/// algorithm. Output: 1 = joined the MIS; undecided centers output 0.
class LubyBallMis final : public local::RandomizedBallAlgorithm {
 public:
  explicit LubyBallMis(int phases) : phases_(phases) {}

  std::string name() const override {
    return "luby-ball(" + std::to_string(phases_) + ")";
  }
  int radius() const override { return phases_; }

  local::Label compute(const local::View& view,
                       const rand::CoinProvider& coins) const override {
    const graph::BallView& ball = *view.ball;
    const graph::NodeId size = ball.size();
    // Per-thread simulation state: compute() is shared across workers, and
    // these stay ball-sized (never O(n)).
    static thread_local std::vector<std::uint8_t> state;  // 0 undecided,
    static thread_local std::vector<std::uint8_t> wins;   // 1 in MIS, 2 out
    static thread_local std::vector<std::uint64_t> priority;
    state.assign(size, 0);
    wins.assign(size, 0);
    priority.resize(size);
    for (int phase = 0; phase < phases_; ++phase) {
      for (graph::NodeId v = 0; v < size; ++v) {
        if (state[v] == 0) {
          priority[v] =
              coins.draw(view.identity(v), static_cast<std::uint64_t>(phase));
        }
      }
      for (graph::NodeId v = 0; v < size; ++v) {
        if (state[v] != 0) {
          wins[v] = 0;
          continue;
        }
        bool best = true;
        for (const graph::NodeId w : ball.neighbors(v)) {
          if (state[w] != 0) continue;
          if (priority[w] < priority[v] ||
              (priority[w] == priority[v] &&
               view.identity(w) < view.identity(v))) {
            best = false;
            break;
          }
        }
        wins[v] = best ? 1 : 0;
      }
      // Two adjacent undecided nodes never both win (strict total order by
      // (priority, identity)), so applying joins in index order is safe.
      for (graph::NodeId v = 0; v < size; ++v) {
        if (wins[v] == 0) continue;
        state[v] = 1;
        for (const graph::NodeId w : ball.neighbors(v)) {
          if (state[w] == 0) state[w] = 2;
        }
      }
    }
    return state[0] == 1 ? 1 : 0;
  }

 private:
  int phases_;
};

/// Cole-Vishkin on the oriented ring; the iteration budget derives from
/// the instance's actual identity range, so one registered entry serves
/// every ring size.
class ColeVishkinConstruction final : public Construction {
 public:
  std::string name() const override { return "cole-vishkin"; }

  Outcome run(const local::Instance& inst, const local::TrialEnv& env,
              local::Labeling& output,
              const RunOptions& run_options) const override {
    int bits = 1;
    while ((inst.ids.max_identity() >> bits) != 0) ++bits;
    local::EngineOptions options;
    options.grant_ring_orientation = true;
    if (env.arena != nullptr) options.scratch = &env.arena->engine();
    options.pool = run_options.pool;
    local::EngineResult result =
        run_engine(inst, factory_for_bits(bits), options);
    LNC_ASSERT(result.completed);
    output = std::move(result.output);
    return {result.rounds};
  }

 private:
  /// Interned immutable factories, one per identity width. A stack-local
  /// factory per trial would defeat run_engine's program recycling (the
  /// scratch compares factory addresses across runs); these live for the
  /// process, so consecutive trials on one worker recycle their programs.
  static const algo::ColeVishkinFactory& factory_for_bits(int bits) {
    static const auto table = [] {
      std::vector<std::unique_ptr<algo::ColeVishkinFactory>> factories;
      factories.reserve(64);
      for (int b = 1; b <= 64; ++b) {
        factories.push_back(std::make_unique<algo::ColeVishkinFactory>(b));
      }
      return factories;
    }();
    LNC_EXPECTS(bits >= 1 && bits <= 64);
    return *table[static_cast<std::size_t>(bits) - 1];
  }
};

/// Distributed Moser-Tardos resampling (4 LOCAL rounds per phase).
class MoserTardosConstruction final : public Construction {
 public:
  explicit MoserTardosConstruction(int max_phases) : max_phases_(max_phases) {}

  std::string name() const override { return "moser-tardos"; }

  Outcome run(const local::Instance& inst, const local::TrialEnv& env,
              local::Labeling& output,
              const RunOptions& /*run_options*/) const override {
    const rand::PhiloxCoins coins = env.construction_coins();
    algo::MoserTardosResult result =
        algo::run_moser_tardos(inst, coins, max_phases_);
    output = std::move(result.assignment);
    return {4 * result.phases};
  }

 private:
  int max_phases_;
};

void register_constructions(Registry<ConstructionEntry>& constructions) {
  constructions.add(
      {"rand-coloring",
       "Zero-round uniform random q-coloring — the paper's section-1.1 "
       "Monte-Carlo witness.",
       {{"colors", 3, "palette size q", 1, 1e9}},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"coloring",
       /*fault_capable=*/true,
       [](const ParamMap& p) -> std::unique_ptr<Construction> {
         return std::make_unique<BallConstruction>(
             std::make_unique<algo::UniformRandomColoring>(
                 static_cast<int>(param(p, "colors"))));
       }});
  constructions.add(
      {"select-id-below",
       "Zero-round amos marker: select iff identity <= count (exactly "
       "`count` selected under permutation identities).",
       {{"count", 1, "number of selected nodes", 0, 1e18}},
       /*randomized=*/false, /*ring_only=*/false,
       /*default_language=*/"amos",
       /*fault_capable=*/true,
       [](const ParamMap& p) -> std::unique_ptr<Construction> {
         return std::make_unique<BallConstruction>(
             std::make_unique<SelectIdBelow>(
                 static_cast<std::uint64_t>(param(p, "count"))));
       }});
  constructions.add(
      {"weak-color-mc",
       "Constant-round Monte-Carlo weak 2-coloring with R fix-up rounds.",
       {{"fixup-rounds", 6, "resampling rounds R", 0, 1e6}},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"weak-coloring",
       /*fault_capable=*/true,
       [](const ParamMap& p) -> std::unique_ptr<Construction> {
         return std::make_unique<EngineConstruction>(
             std::make_unique<algo::WeakColorMcFactory>(
                 static_cast<int>(param(p, "fixup-rounds"))),
             /*randomized=*/true);
       }});
  constructions.add(
      {"luby-mis",
       "Luby's randomized MIS (O(log n) expected phases).",
       {},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"mis",
       /*fault_capable=*/true,
       [](const ParamMap&) -> std::unique_ptr<Construction> {
         return std::make_unique<EngineConstruction>(
             std::make_unique<algo::LubyMisFactory>(), /*randomized=*/true);
       }});
  constructions.add(
      {"luby-ball",
       "K-phase Luby MIS simulated inside the radius-K ball — a "
       "constant-round Monte-Carlo MIS construction (ball-backed, so it "
       "streams over implicit giga-scale topologies).",
       {{"phases", 2, "Luby phases K (= ball radius)", 1, 64}},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"mis",
       /*fault_capable=*/true,
       [](const ParamMap& p) -> std::unique_ptr<Construction> {
         return std::make_unique<BallConstruction>(
             std::make_unique<LubyBallMis>(
                 static_cast<int>(param(p, "phases"))));
       }});
  constructions.add(
      {"rand-matching",
       "Randomized maximal matching by propose-and-accept.",
       {},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"matching",
       /*fault_capable=*/true,
       [](const ParamMap&) -> std::unique_ptr<Construction> {
         return std::make_unique<EngineConstruction>(
             std::make_unique<algo::RandMatchingFactory>(),
             /*randomized=*/true);
       }});
  constructions.add(
      {"greedy-coloring",
       "Sequential-greedy (Delta+1)-coloring by identity (Theta(n) on "
       "consecutive rings).",
       {},
       /*randomized=*/false, /*ring_only=*/false,
       /*default_language=*/"coloring",
       /*fault_capable=*/false,
       [](const ParamMap&) -> std::unique_ptr<Construction> {
         return std::make_unique<EngineConstruction>(
             std::make_unique<algo::GreedyColoringFactory>(),
             /*randomized=*/false);
       }});
  constructions.add(
      {"greedy-mis",
       "Sequential-greedy MIS by identity.",
       {},
       /*randomized=*/false, /*ring_only=*/false,
       /*default_language=*/"mis",
       /*fault_capable=*/false,
       [](const ParamMap&) -> std::unique_ptr<Construction> {
         return std::make_unique<EngineConstruction>(
             std::make_unique<algo::GreedyMisFactory>(), /*randomized=*/false);
       }});
  constructions.add(
      {"cole-vishkin",
       "Cole-Vishkin 3-coloring of the oriented ring in O(log* n) rounds.",
       {},
       /*randomized=*/false, /*ring_only=*/true,
       /*default_language=*/"coloring",
       /*fault_capable=*/false,
       [](const ParamMap&) -> std::unique_ptr<Construction> {
         return std::make_unique<ColeVishkinConstruction>();
       }});
  constructions.add(
      {"moser-tardos",
       "Distributed Moser-Tardos resampling for the LLL system.",
       {{"max-phases", 10000, "resampling phase cap", 1, 1e9}},
       /*randomized=*/true, /*ring_only=*/false,
       /*default_language=*/"lll-avoidance",
       /*fault_capable=*/false,
       [](const ParamMap& p) -> std::unique_ptr<Construction> {
         return std::make_unique<MoserTardosConstruction>(
             static_cast<int>(param(p, "max-phases")));
       }});
}

// ---------------------------------------------------------------- deciders --

/// Radius-t deterministic "local population count" decider for amos:
/// reject iff the ball holds >= 2 selected nodes. Registered because E9
/// uses it as the LD-side foil; it errs whenever two selected nodes are
/// more than 2t apart.
class LocalCountDecider final : public decide::Decider {
 public:
  explicit LocalCountDecider(int radius) : radius_(radius) {}
  std::string name() const override {
    return "local-count(t=" + std::to_string(radius_) + ")";
  }
  int radius() const override { return radius_; }
  bool accept(const decide::DeciderView& view) const override {
    int selected = 0;
    for (graph::NodeId local = 0; local < view.view.ball->size(); ++local) {
      if (view.output_of(local) == lang::Amos::kSelected) ++selected;
    }
    return selected <= 1;
  }

 private:
  int radius_;
};

void register_deciders(Registry<DeciderEntry>& deciders) {
  deciders.add({"exact",
                "Pseudo-decider: global membership check by the scenario's "
                "language (measures the construction's raw success "
                "probability).",
                {},
                /*global_check=*/true,
                /*needs_lcl=*/false,
                /*needs_n=*/false,
                nullptr});
  deciders.add(
      {"lcl",
       "The canonical deterministic LD decider: accept iff the radius-t "
       "ball is not in Bad(L).",
       {},
       /*global_check=*/false,
       /*needs_lcl=*/true,
       /*needs_n=*/false,
       [](const lang::Language* language, const ParamMap&)
           -> std::unique_ptr<decide::RandomizedDecider> {
         const lang::LclLanguage* core = lcl_core(*language);
         return std::make_unique<AsRandomizedDecider>(
             std::make_unique<decide::LclDecider>(*core));
       }});
  deciders.add(
      {"amos",
       "Zero-round randomized amos decider: selected nodes accept with "
       "probability p (golden-ratio optimum by default).",
       {{"p", -1, "acceptance probability at selected nodes; -1 = optimum",
         -1, 1}},
       /*global_check=*/false,
       /*needs_lcl=*/false,
       /*needs_n=*/false,
       [](const lang::Language*, const ParamMap& p)
           -> std::unique_ptr<decide::RandomizedDecider> {
         return std::make_unique<decide::AmosDecider>(param(p, "p"));
       }});
  deciders.add(
      {"resilient",
       "Corollary-1 decider for f-resilient relaxations: bad balls accept "
       "with probability p in (2^-1/f, 2^-1/(f+1)).",
       {{"faults", 1, "fault budget f", 1, 1e9},
        {"p", -1, "per-bad-ball acceptance; -1 = interval geometric mean",
         -1, 1}},
       /*global_check=*/false,
       /*needs_lcl=*/true,
       /*needs_n=*/false,
       [](const lang::Language* language, const ParamMap& p)
           -> std::unique_ptr<decide::RandomizedDecider> {
         const lang::LclLanguage* core = lcl_core(*language);
         return std::make_unique<decide::ResilientDecider>(
             *core, static_cast<std::size_t>(param(p, "faults")),
             param(p, "p"));
       }});
  deciders.add(
      {"slack",
       "BPLD#node decider for eps-slack relaxations (fault budget eps*n; "
       "nodes must know n).",
       {{"eps", 0.1, "slack fraction", 1e-9, 1}},
       /*global_check=*/false,
       /*needs_lcl=*/true,
       /*needs_n=*/true,
       [](const lang::Language* language, const ParamMap& p)
           -> std::unique_ptr<decide::RandomizedDecider> {
         const lang::LclLanguage* core = lcl_core(*language);
         return std::make_unique<decide::SlackDecider>(*core,
                                                       param(p, "eps"));
       }});
  deciders.add(
      {"local-count",
       "Deterministic radius-t amos foil: reject iff >= 2 selected in the "
       "ball (errs once the diameter exceeds 2t — E9).",
       {{"radius", 1, "ball radius t", 0, 1e6}},
       /*global_check=*/false,
       /*needs_lcl=*/false,
       /*needs_n=*/false,
       [](const lang::Language*, const ParamMap& p)
           -> std::unique_ptr<decide::RandomizedDecider> {
         return std::make_unique<AsRandomizedDecider>(
             std::make_unique<LocalCountDecider>(
                 static_cast<int>(param(p, "radius"))));
       }});
}

// -------------------------------------------------------------- statistics --

void register_statistics(Registry<StatisticEntry>& statistics) {
  statistics.add(
      {"rounds",
       "LOCAL rounds the construction executed this trial (engine programs "
       "report their actual round count; ball algorithms their radius) — "
       "the E10 contrast quantity.",
       /*integer_valued=*/true, /*needs_lcl=*/false, /*needs_telemetry=*/false,
       [](const StatisticContext& ctx) {
         return static_cast<double>(ctx.outcome.rounds);
       }});
  statistics.add(
      {"output-size",
       "Nodes with a nonzero output label — MIS size, matched nodes, "
       "selected amos nodes.",
       /*integer_valued=*/true, /*needs_lcl=*/false, /*needs_telemetry=*/false,
       [](const StatisticContext& ctx) {
         std::uint64_t nonzero = 0;
         for (const local::Label label : *ctx.output) {
           if (label != 0) ++nonzero;
         }
         return static_cast<double>(nonzero);
       }});
  statistics.add(
      {"distinct-labels",
       "Distinct output labels used (the palette a coloring actually "
       "spends).",
       /*integer_valued=*/true, /*needs_lcl=*/false, /*needs_telemetry=*/false,
       [](const StatisticContext& ctx) {
         std::vector<local::Label> labels(ctx.output->begin(),
                                          ctx.output->end());
         std::sort(labels.begin(), labels.end());
         return static_cast<double>(
             std::unique(labels.begin(), labels.end()) - labels.begin());
       }});
  statistics.add(
      {"bad-balls",
       "Bad balls of the language's LCL core in the output — 0 is a "
       "perfect configuration, so the mean measures output quality.",
       /*integer_valued=*/true, /*needs_lcl=*/true, /*needs_telemetry=*/false,
       [](const StatisticContext& ctx) {
         const lang::LclLanguage* core = lcl_core(*ctx.language);
         LNC_ASSERT(core != nullptr);
         return static_cast<double>(
             core->count_bad_balls(*ctx.instance, *ctx.output));
       }});
  statistics.add(
      {"messages",
       "Messages the construction run charged this trial (measured for "
       "engine runs, simulation-theorem-modeled for ball runs).",
       /*integer_valued=*/true, /*needs_lcl=*/false, /*needs_telemetry=*/true,
       [](const StatisticContext& ctx) {
         return static_cast<double>(ctx.delta.messages_sent);
       }});
  statistics.add(
      {"words",
       "64-bit words the construction run charged this trial (measured "
       "for engine runs, simulation-theorem-modeled for ball runs).",
       /*integer_valued=*/true, /*needs_lcl=*/false, /*needs_telemetry=*/true,
       [](const StatisticContext& ctx) {
         return static_cast<double>(ctx.delta.words_sent);
       }});
}

// ------------------------------------------------------------ fault models --

void register_faults(Registry<FaultEntry>& faults) {
  faults.add({"none",
              "No faults: every message delivers, every node and edge stays "
              "up. The default; specs omitting the fault block get this.",
              {},
              [](const ParamMap&) { return fault::make_none(); }});
  faults.add({"drop",
              "Lossy links: each delivery is independently dropped with "
              "probability p-loss (the sender never learns).",
              {{"p-loss", 0.1, "per-delivery loss probability", 0, 1}},
              [](const ParamMap& p) {
                return fault::make_drop(param(p, "p-loss"));
              }});
  faults.add({"crash",
              "Crash-stop nodes: with probability p-crash a node dies before "
              "a round drawn uniformly from [1, crash-round] and falls "
              "silent for the rest of the run.",
              {{"p-crash", 0.05, "per-node crash probability", 0, 1},
               {"crash-round", 1, "latest possible crash round", 1, 1e6}},
              [](const ParamMap& p) {
                return fault::make_crash(
                    param(p, "p-crash"),
                    static_cast<std::uint64_t>(param(p, "crash-round")));
              }});
  faults.add({"churn",
              "Edge churn: each edge is independently down for each round "
              "with probability p-churn (no message crosses either way).",
              {{"p-churn", 0.1, "per-edge per-round outage probability", 0, 1}},
              [](const ParamMap& p) {
                return fault::make_churn(param(p, "p-churn"));
              }});
}

}  // namespace

void register_builtins(Registry<TopologyEntry>& topologies,
                       Registry<LanguageEntry>& languages,
                       Registry<ConstructionEntry>& constructions,
                       Registry<DeciderEntry>& deciders,
                       Registry<StatisticEntry>& statistics,
                       Registry<FaultEntry>& faults) {
  register_topologies(topologies);
  register_languages(languages);
  register_constructions(constructions);
  register_deciders(deciders);
  register_statistics(statistics);
  register_faults(faults);
}

}  // namespace lnc::scenario::detail
