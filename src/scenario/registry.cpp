#include "scenario/registry.h"

#include <ios>
#include <mutex>
#include <sstream>

#include "lang/relax.h"
#include "scenario/builtins.h"
#include "util/assert.h"

namespace lnc::scenario {

ParamMap merged_params(const ParamSchema& schema, const ParamMap& params) {
  ParamMap merged;
  for (const ParamSpec& spec : schema) {
    const auto it = params.find(spec.name);
    merged[spec.name] = it != params.end() ? it->second : spec.default_value;
  }
  return merged;
}

double param(const ParamMap& merged, const std::string& name) {
  const auto it = merged.find(name);
  LNC_EXPECTS(it != merged.end() && "parameter not in merged map");
  return it->second;
}

bool is_canonical_ring(const std::string& topology) {
  return topology == "ring" || topology == "hard-ring";
}

const lang::LclLanguage* lcl_core(const lang::Language& language) {
  if (const auto* lcl = dynamic_cast<const lang::LclLanguage*>(&language)) {
    return lcl;
  }
  if (const auto* relaxed = dynamic_cast<const RelaxedLanguage*>(&language)) {
    return &relaxed->core();
  }
  if (const auto* raw = dynamic_cast<const lang::FResilient*>(&language)) {
    return &raw->base();
  }
  if (const auto* raw = dynamic_cast<const lang::EpsSlack*>(&language)) {
    return &raw->base();
  }
  if (const auto* raw = dynamic_cast<const lang::PolyResilient*>(&language)) {
    return &raw->base();
  }
  return nullptr;
}

template <typename Entry>
void Registry<Entry>::add(Entry entry) {
  LNC_EXPECTS(!entry.name.empty());
  const auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  (void)it;
  LNC_EXPECTS(inserted && "duplicate registry name");
}

template <typename Entry>
const Entry* Registry<Entry>::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() ? &it->second : nullptr;
}

template <typename Entry>
std::vector<const Entry*> Registry<Entry>::all() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(&entry);
  return out;
}

template class Registry<TopologyEntry>;
template class Registry<LanguageEntry>;
template class Registry<ConstructionEntry>;
template class Registry<DeciderEntry>;
template class Registry<StatisticEntry>;
template class Registry<FaultEntry>;

namespace {

struct Registries {
  Registry<TopologyEntry> topologies;
  Registry<LanguageEntry> languages;
  Registry<ConstructionEntry> constructions;
  Registry<DeciderEntry> deciders;
  Registry<StatisticEntry> statistics;
  Registry<FaultEntry> faults;
};

/// Built-ins register during the (thread-safe) static-local init, so the
/// public accessors below never hand out a half-populated registry.
Registries& registries() {
  static Registries* instance = [] {
    auto* r = new Registries;
    detail::register_builtins(r->topologies, r->languages, r->constructions,
                              r->deciders, r->statistics, r->faults);
    return r;
  }();
  return *instance;
}

}  // namespace

Registry<TopologyEntry>& topologies() { return registries().topologies; }
Registry<LanguageEntry>& languages() { return registries().languages; }
Registry<ConstructionEntry>& constructions() {
  return registries().constructions;
}
Registry<DeciderEntry>& deciders() { return registries().deciders; }
Registry<StatisticEntry>& statistics() { return registries().statistics; }
Registry<FaultEntry>& faults() { return registries().faults; }

local::Instance build_instance(const std::string& topology, std::uint64_t n,
                               const ParamMap& params, std::uint64_t seed) {
  const TopologyEntry* entry = topologies().find(topology);
  LNC_EXPECTS(entry != nullptr && "unknown topology");
  return entry->build(n, merged_params(entry->schema, params), seed);
}

std::shared_ptr<const local::Instance> interned_instance(
    const std::string& topology, std::uint64_t n, const ParamMap& params,
    std::uint64_t seed) {
  const TopologyEntry* entry = topologies().find(topology);
  LNC_EXPECTS(entry != nullptr && "unknown topology");
  const ParamMap merged = merged_params(entry->schema, params);

  std::ostringstream key_stream;
  // hexfloat keeps the key injective in the parameter values — default
  // stream precision would collide parameters agreeing to 6 digits.
  key_stream << std::hexfloat << topology << '/' << n << '/' << seed;
  for (const auto& [name, value] : merged) {
    key_stream << '/' << name << '=' << value;
  }
  const std::string key = key_stream.str();

  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const local::Instance>>* cache =
      new std::map<std::string, std::shared_ptr<const local::Instance>>;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  // Build outside the lock (instances can be large); last writer wins on a
  // race, and both builds are identical by determinism in (params, seed).
  auto built = std::make_shared<const local::Instance>(
      entry->build(n, merged, seed));
  const std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] = cache->emplace(key, std::move(built));
  (void)inserted;
  return it->second;
}

std::shared_ptr<const local::Instance> interned_implicit_instance(
    const std::string& topology, std::uint64_t n, const ParamMap& params,
    std::uint64_t seed) {
  const TopologyEntry* entry = topologies().find(topology);
  LNC_EXPECTS(entry != nullptr && "unknown topology");
  LNC_EXPECTS(entry->build_implicit &&
              "topology has no implicit representation");
  const ParamMap merged = merged_params(entry->schema, params);

  // "implicit:" prefixes the key space so the two representations of one
  // spec intern side by side instead of evicting each other.
  std::ostringstream key_stream;
  key_stream << std::hexfloat << "implicit:" << topology << '/' << n << '/'
             << seed;
  for (const auto& [name, value] : merged) {
    key_stream << '/' << name << '=' << value;
  }
  const std::string key = key_stream.str();

  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const local::Instance>>* cache =
      new std::map<std::string, std::shared_ptr<const local::Instance>>;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  std::shared_ptr<const graph::ImplicitTopology> implicit =
      entry->build_implicit(n, merged, seed);
  if (implicit == nullptr) return nullptr;  // hook declined the params
  auto built = std::make_shared<const local::Instance>(
      local::make_implicit_instance(std::move(implicit)));
  const std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] = cache->emplace(key, std::move(built));
  (void)inserted;
  return it->second;
}

std::unique_ptr<lang::Language> make_language(const std::string& name,
                                              const ParamMap& params) {
  const LanguageEntry* entry = languages().find(name);
  LNC_EXPECTS(entry != nullptr && "unknown language");
  return entry->build(merged_params(entry->schema, params));
}

std::unique_ptr<Construction> make_construction(const std::string& name,
                                                const ParamMap& params) {
  const ConstructionEntry* entry = constructions().find(name);
  LNC_EXPECTS(entry != nullptr && "unknown construction");
  return entry->build(merged_params(entry->schema, params));
}

std::unique_ptr<decide::RandomizedDecider> make_decider(
    const std::string& name, const lang::Language* language,
    const ParamMap& params) {
  const DeciderEntry* entry = deciders().find(name);
  LNC_EXPECTS(entry != nullptr && "unknown decider");
  LNC_EXPECTS(!entry->global_check &&
              "the exact pseudo-decider has no decider object");
  if (entry->needs_lcl) {
    LNC_EXPECTS(language != nullptr && lcl_core(*language) != nullptr &&
                "decider needs an LCL-backed language");
  }
  return entry->build(language, merged_params(entry->schema, params));
}

std::shared_ptr<const fault::FaultModel> make_fault(const std::string& name,
                                                    const ParamMap& params) {
  const FaultEntry* entry = faults().find(name);
  LNC_EXPECTS(entry != nullptr && "unknown fault model");
  return entry->build(merged_params(entry->schema, params));
}

}  // namespace lnc::scenario
