#include "scenario/sweep.h"

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/progress.h"
#include "obs/trace.h"
#include "scenario/spec_json.h"
#include "util/assert.h"
#include "util/build_info.h"
#include "util/file_util.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace lnc::scenario {

SweepResult run_sweep(const CompiledScenario& scenario,
                      const SweepOptions& options) {
  LNC_EXPECTS(options.shard_count > 0 && options.shard < options.shard_count);
  if (options.trial_range) {
    LNC_EXPECTS(options.shard == 0 && options.shard_count == 1 &&
                "an explicit trial range cannot be combined with sharding");
    LNC_EXPECTS(options.trial_range->begin <= options.trial_range->end &&
                options.trial_range->end <= scenario.spec().trials &&
                "trial range outside [0, trials)");
  }
  SweepResult result;
  result.scenario = scenario.spec().name;
  result.base_seed = scenario.spec().base_seed;
  result.shard = options.shard;
  result.shard_count = options.shard_count;
  result.workload = scenario.spec().workload;
  result.backend = scenario.spec().backend;

  local::BatchRunner runner(options.pool);
  runner.set_progress(options.progress);
  result.rows.reserve(scenario.points().size());
  bool range_recorded = false;
  const obs::Span sweep_span("sweep",
                             obs::span_args("scenario", result.scenario));
  for (const CompiledScenario::GridPoint& point : scenario.points()) {
    const local::TrialRange range =
        options.trial_range
            ? *options.trial_range
            : local::shard_range(point.plan.trials, options.shard,
                                 options.shard_count);
    if (!range_recorded) {
      // Every grid point shares the spec's trial count, so the slice is
      // uniform across rows; record it once as the result's extent.
      result.trial_begin = range.begin;
      result.trial_end = range.end;
      range_recorded = true;
    }
    SweepRow row;
    row.requested_n = point.requested_n;
    row.actual_n = point.instance->node_count();
    row.total_trials = point.plan.trials;
    {
      // True elapsed wall-clock per grid point (one measurement, NOT the
      // per-trial sum telemetry.wall_seconds accumulates) plus the row's
      // trace span. Timing-only observability.
      const obs::Span row_span("row", obs::span_args("n", row.requested_n));
      const util::Timer row_timer;
      row.tally = runner.run_shard(point.plan, range);
      row.elapsed_seconds = row_timer.elapsed_seconds();
    }
    result.metrics.merge(runner.last_metrics());
    result.rows.push_back(row);
  }
  return result;
}

std::string can_merge(std::span<const SweepResult> shards) {
  if (shards.empty()) return "no shard results to merge";
  std::set<unsigned> seen_shards;
  std::vector<std::uint64_t> covered(shards[0].rows.size(), 0);
  for (const SweepResult& shard : shards) {
    if (shard.scenario != shards[0].scenario ||
        shard.base_seed != shards[0].base_seed ||
        shard.rows.size() != shards[0].rows.size()) {
      return "shards come from different scenario runs ('" + shard.scenario +
             "' vs '" + shards[0].scenario + "')";
    }
    if (shard.workload != shards[0].workload) {
      return std::string("shards tally different workloads (") +
             local::to_string(shard.workload) + " vs " +
             local::to_string(shards[0].workload) + ")";
    }
    if (shard.shard_count != shards[0].shard_count) {
      return "shards use different split factors (" +
             std::to_string(shard.shard_count) + " vs " +
             std::to_string(shards[0].shard_count) + ")";
    }
    if (!seen_shards.insert(shard.shard).second) {
      return "shard " + std::to_string(shard.shard) + " given twice";
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
      const SweepRow& row = shard.rows[i];
      const SweepRow& first = shards[0].rows[i];
      if (row.requested_n != first.requested_n ||
          row.total_trials != first.total_trials) {
        return "shards disagree on the n-grid or trial counts";
      }
      if (!row.tally.counts.empty() && !first.tally.counts.empty() &&
          row.tally.counts.size() != first.tally.counts.size()) {
        return "shards carry counter rows of different widths (" +
               std::to_string(row.tally.counts.size()) + " vs " +
               std::to_string(first.tally.counts.size()) +
               " slots at n = " + std::to_string(row.requested_n) + ")";
      }
      covered[i] += row.tally.trials;
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (covered[i] != shards[0].rows[i].total_trials) {
      return "shards cover " + std::to_string(covered[i]) + " of " +
             std::to_string(shards[0].rows[i].total_trials) +
             " trials at n = " +
             std::to_string(shards[0].rows[i].requested_n) +
             " (missing or extra shard files)";
    }
  }
  return {};
}

SweepResult merge_sweeps(std::span<const SweepResult> shards) {
  LNC_EXPECTS(!shards.empty());
  SweepResult merged;
  merged.scenario = shards[0].scenario;
  merged.base_seed = shards[0].base_seed;
  merged.shard = 0;
  merged.shard_count = 1;
  merged.workload = shards[0].workload;
  merged.backend = shards[0].backend;
  merged.rows = shards[0].rows;
  merged.metrics = shards[0].metrics;

  // Duplicate shard files would double-count trials yet can still sum to
  // total_trials (e.g. the same half merged twice) — reject repeats and
  // mismatched splits outright.
  std::set<unsigned> seen_shards = {shards[0].shard};
  for (std::size_t s = 1; s < shards.size(); ++s) {
    const SweepResult& shard = shards[s];
    LNC_EXPECTS(shard.scenario == merged.scenario &&
                shard.base_seed == merged.base_seed &&
                shard.rows.size() == merged.rows.size() &&
                "merging results of different scenario runs");
    LNC_EXPECTS(shard.workload == merged.workload &&
                "merging results of different workloads");
    LNC_EXPECTS(shard.shard_count == shards[0].shard_count &&
                "merging shards of different split factors");
    LNC_EXPECTS(seen_shards.insert(shard.shard).second &&
                "merging the same shard twice");
    for (std::size_t i = 0; i < merged.rows.size(); ++i) {
      SweepRow& row = merged.rows[i];
      const SweepRow& other = shard.rows[i];
      LNC_EXPECTS(other.requested_n == row.requested_n &&
                  other.total_trials == row.total_trials &&
                  "merging rows of different grid points");
      row.tally.successes += other.tally.successes;
      row.tally.trials += other.tally.trials;
      // Exact accumulators merge exactly: the merged row's mean/stddev
      // equal the unsharded run's bit for bit.
      row.tally.value_sum.merge(other.tally.value_sum);
      row.tally.value_sum_sq.merge(other.tally.value_sum_sq);
      if (!other.tally.counts.empty()) {
        if (row.tally.counts.empty()) {
          row.tally.counts.assign(other.tally.counts.size(), 0);
        }
        LNC_EXPECTS(row.tally.counts.size() == other.tally.counts.size() &&
                    "merging counter rows of different widths");
        for (std::size_t j = 0; j < row.tally.counts.size(); ++j) {
          row.tally.counts[j] += other.tally.counts[j];
        }
      }
      row.tally.telemetry.merge(other.tally.telemetry);
      // Machine-time across the fleet: the merged row's elapsed seconds
      // is the sum of each shard's true wall-clock.
      row.elapsed_seconds += other.elapsed_seconds;
    }
    merged.metrics.merge(shard.metrics);
  }
  for (const SweepRow& row : merged.rows) {
    LNC_EXPECTS(row.tally.trials == row.total_trials &&
                "merged shards do not cover the full trial range");
  }
  merged.trial_begin = 0;
  merged.trial_end = merged.rows.empty() ? 0 : merged.rows[0].total_trials;
  return merged;
}

std::string can_merge_trial_ranges(std::span<const SweepResult> parts) {
  if (parts.empty()) return "no range partitions to merge";
  std::uint64_t expected_begin = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    const SweepResult& part = parts[s];
    if (part.scenario != parts[0].scenario ||
        part.base_seed != parts[0].base_seed ||
        part.rows.size() != parts[0].rows.size()) {
      return "range partitions come from different scenario runs ('" +
             part.scenario + "' vs '" + parts[0].scenario + "')";
    }
    if (part.workload != parts[0].workload) {
      return std::string("range partitions tally different workloads (") +
             local::to_string(part.workload) + " vs " +
             local::to_string(parts[0].workload) + ")";
    }
    if (part.trial_begin == 0 && part.trial_end == 0 && !part.rows.empty() &&
        part.rows[0].tally.trials != 0) {
      return "partition " + std::to_string(s) +
             " does not declare its trial range (file written by a "
             "pre-range binary generation?)";
    }
    if (part.trial_begin != expected_begin) {
      return "partition " + std::to_string(s) + " covers trials [" +
             std::to_string(part.trial_begin) + ", " +
             std::to_string(part.trial_end) + ") but [" +
             std::to_string(expected_begin) +
             ", ...) is the next uncovered range (partitions must be "
             "given in order and abut exactly)";
    }
    if (part.trial_end < part.trial_begin) {
      return "partition " + std::to_string(s) + " has an inverted range";
    }
    const std::uint64_t extent = part.trial_end - part.trial_begin;
    for (std::size_t i = 0; i < part.rows.size(); ++i) {
      const SweepRow& row = part.rows[i];
      const SweepRow& first = parts[0].rows[i];
      if (row.requested_n != first.requested_n) {
        return "range partitions disagree on the n-grid";
      }
      if (row.tally.trials != extent) {
        return "partition " + std::to_string(s) + " tallies " +
               std::to_string(row.tally.trials) + " trials at n = " +
               std::to_string(row.requested_n) +
               " but declares the range [" +
               std::to_string(part.trial_begin) + ", " +
               std::to_string(part.trial_end) + ")";
      }
      if (!row.tally.counts.empty() && !first.tally.counts.empty() &&
          row.tally.counts.size() != first.tally.counts.size()) {
        return "range partitions carry counter rows of different widths";
      }
    }
    expected_begin = part.trial_end;
  }
  return {};
}

SweepResult merge_trial_ranges(std::span<const SweepResult> parts) {
  LNC_EXPECTS(!parts.empty());
  LNC_EXPECTS(can_merge_trial_ranges(parts).empty() &&
              "merging range partitions that do not abut");
  SweepResult merged;
  merged.scenario = parts[0].scenario;
  merged.base_seed = parts[0].base_seed;
  merged.shard = 0;
  merged.shard_count = 1;
  merged.workload = parts[0].workload;
  merged.backend = parts[0].backend;
  merged.rows = parts[0].rows;
  merged.metrics = parts[0].metrics;
  for (std::size_t s = 1; s < parts.size(); ++s) {
    const SweepResult& part = parts[s];
    merged.metrics.merge(part.metrics);
    for (std::size_t i = 0; i < merged.rows.size(); ++i) {
      SweepRow& row = merged.rows[i];
      const SweepRow& other = part.rows[i];
      row.tally.successes += other.tally.successes;
      row.tally.trials += other.tally.trials;
      // ExactSum merge is exact: the result equals a single run over the
      // union range bit for bit.
      row.tally.value_sum.merge(other.tally.value_sum);
      row.tally.value_sum_sq.merge(other.tally.value_sum_sq);
      if (!other.tally.counts.empty()) {
        if (row.tally.counts.empty()) {
          row.tally.counts.assign(other.tally.counts.size(), 0);
        }
        LNC_EXPECTS(row.tally.counts.size() == other.tally.counts.size() &&
                    "merging counter rows of different widths");
        for (std::size_t j = 0; j < row.tally.counts.size(); ++j) {
          row.tally.counts[j] += other.tally.counts[j];
        }
      }
      row.tally.telemetry.merge(other.tally.telemetry);
      row.elapsed_seconds += other.elapsed_seconds;
    }
  }
  merged.trial_begin = 0;
  merged.trial_end = parts.back().trial_end;
  for (SweepRow& row : merged.rows) {
    // The merged result is a complete run at the union's trial count —
    // the partitions' own totals (a cached run at T' carries T', its
    // top-up carries T) are superseded.
    row.total_trials = merged.trial_end;
    LNC_EXPECTS(row.tally.trials == row.total_trials &&
                "merged range partitions do not cover [0, total)");
  }
  return merged;
}

stats::Estimate row_estimate(const SweepRow& row) {
  LNC_EXPECTS(row.tally.trials == row.total_trials &&
              "estimate of an incomplete (sharded) row");
  const local::ShardTally tallies[] = {row.tally};
  return local::merge_tallies(tallies);
}

stats::MeanEstimate row_mean(const SweepRow& row) {
  LNC_EXPECTS(row.tally.trials == row.total_trials &&
              "mean of an incomplete (sharded) row");
  return stats::finalize_mean_exact(row.tally.value_sum,
                                    row.tally.value_sum_sq,
                                    row.tally.trials);
}

local::Telemetry result_telemetry(const SweepResult& result) {
  local::Telemetry merged;
  for (const SweepRow& row : result.rows) merged.merge(row.tally.telemetry);
  return merged;
}

namespace {

void add_telemetry_cells(util::Table& table, const SweepRow& row) {
  table.add_cell(row.tally.telemetry.messages_sent)
      .add_cell(row.tally.telemetry.words_sent)
      .add_cell(row.tally.telemetry.rounds_executed)
      .add_cell(row.tally.telemetry.ball_expansions);
}

std::uint64_t row_count_sum(const SweepRow& row) {
  std::uint64_t sum = 0;
  for (const std::uint64_t count : row.tally.counts) sum += count;
  return sum;
}

/// Full round-trip precision — the form the grep-stable summary lines and
/// the JSON sum fields use, so textual equality implies bit equality.
std::string format_exact(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

/// The tally column(s) of one row, headed per workload.
void add_workload_headers(std::vector<std::string>& headers,
                          local::WorkloadKind workload, bool complete) {
  switch (workload) {
    case local::WorkloadKind::kSuccess:
      if (complete) {
        headers.insert(headers.end(),
                       {"successes", "p_hat", "ci lo", "ci hi"});
      } else {
        headers.push_back("shard successes");
      }
      break;
    case local::WorkloadKind::kValue:
      if (complete) {
        headers.insert(headers.end(), {"mean", "stddev"});
      } else {
        headers.push_back("shard sum");
      }
      break;
    case local::WorkloadKind::kCounter:
      if (complete) {
        headers.insert(headers.end(), {"count", "mean/trial"});
      } else {
        headers.push_back("shard count");
      }
      break;
  }
}

void add_workload_cells(util::Table& table, const SweepRow& row,
                        local::WorkloadKind workload, bool complete) {
  switch (workload) {
    case local::WorkloadKind::kSuccess:
      if (complete) {
        const stats::Estimate estimate = row_estimate(row);
        table.add_cell(row.tally.successes)
            .add_cell(estimate.p_hat, 4)
            .add_cell(estimate.ci.lo, 4)
            .add_cell(estimate.ci.hi, 4);
      } else {
        table.add_cell(row.tally.successes);
      }
      break;
    case local::WorkloadKind::kValue:
      if (complete) {
        const stats::MeanEstimate mean = row_mean(row);
        table.add_cell(mean.mean, 4).add_cell(mean.stddev, 4);
      } else {
        table.add_cell(row.tally.value_sum.value(), 4);
      }
      break;
    case local::WorkloadKind::kCounter: {
      const std::uint64_t sum = row_count_sum(row);
      table.add_cell(sum);
      if (complete) {
        table.add_cell(row.tally.trials == 0
                           ? 0.0
                           : static_cast<double>(sum) /
                                 static_cast<double>(row.tally.trials),
                       4);
      }
      break;
    }
  }
}

}  // namespace

util::Table to_table(const SweepResult& result, bool with_telemetry) {
  // Only the deterministic counters appear as columns — the table stays
  // diffable across thread counts and shard layouts; timing lives in the
  // JSON telemetry block and the CLI's `timing:` line.
  const std::vector<std::string> telemetry_headers = {"msgs", "words",
                                                      "rounds", "balls"};
  const bool complete = result.complete();
  std::vector<std::string> headers = {"n", "actual n"};
  headers.push_back(complete ? "trials" : "shard trials");
  add_workload_headers(headers, result.workload, complete);
  if (!complete) headers.push_back("of total");
  if (with_telemetry) {
    headers.insert(headers.end(), telemetry_headers.begin(),
                   telemetry_headers.end());
  }
  util::Table table(std::move(headers));
  for (const SweepRow& row : result.rows) {
    table.new_row()
        .add_cell(row.requested_n)
        .add_cell(row.actual_n)
        .add_cell(row.tally.trials);
    add_workload_cells(table, row, result.workload, complete);
    if (!complete) table.add_cell(row.total_trials);
    if (with_telemetry) add_telemetry_cells(table, row);
  }
  return table;
}

std::vector<std::string> summary_lines(const SweepResult& result) {
  std::vector<std::string> lines;
  if (!result.complete() ||
      result.workload == local::WorkloadKind::kSuccess) {
    return lines;
  }
  for (const SweepRow& row : result.rows) {
    const std::string where =
        result.scenario + "/n" + std::to_string(row.requested_n);
    if (result.workload == local::WorkloadKind::kValue) {
      const stats::MeanEstimate mean = row_mean(row);
      lines.push_back("value[" + where + "]: mean=" +
                      format_exact(mean.mean) + " stddev=" +
                      format_exact(mean.stddev) + " trials=" +
                      std::to_string(mean.trials));
    } else {
      const std::uint64_t sum = row_count_sum(row);
      const double mean =
          row.tally.trials == 0
              ? 0.0
              : static_cast<double>(sum) /
                    static_cast<double>(row.tally.trials);
      lines.push_back("counter[" + where + "]: sum=" + std::to_string(sum) +
                      " mean=" + format_exact(mean) + " trials=" +
                      std::to_string(row.tally.trials));
    }
  }
  return lines;
}

void write_json(std::ostream& os, const SweepResult& result) {
  os << "{\"scenario\": \"" << util::json_escape(result.scenario)
     << "\", \"base_seed\": " << result.base_seed
     << ", \"shard\": " << result.shard
     << ", \"shard_count\": " << result.shard_count << ", \"workload\": \""
     << local::to_string(result.workload) << "\", \"backend\": \""
     << local::to_string(result.backend)
     << "\", \"trial_begin\": " << result.trial_begin
     << ", \"trial_end\": " << result.trial_end
     << ", \"seed_stream_epoch\": " << util::seed_stream_epoch()
     << ", \"build_rev\": \"" << util::json_escape(util::build_rev())
     << "\", \"rows\": [";
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const SweepRow& row = result.rows[i];
    if (i > 0) os << ", ";
    os << "{\"n\": " << row.requested_n << ", \"actual_n\": " << row.actual_n
       << ", \"total_trials\": " << row.total_trials
       << ", \"trials\": " << row.tally.trials
       << ", \"successes\": " << row.tally.successes;
    if (result.workload == local::WorkloadKind::kValue) {
      // sum/sum_sq are the human-readable rounded views; the exact hex
      // words are what cross-process merges actually accumulate.
      os << ", \"values\": {\"sum\": "
         << format_exact(row.tally.value_sum.value()) << ", \"sum_sq\": "
         << format_exact(row.tally.value_sum_sq.value())
         << ", \"exact_sum\": \"" << row.tally.value_sum.to_hex()
         << "\", \"exact_sum_sq\": \"" << row.tally.value_sum_sq.to_hex()
         << "\"}";
    }
    if (result.workload == local::WorkloadKind::kCounter) {
      os << ", \"counts\": [";
      for (std::size_t j = 0; j < row.tally.counts.size(); ++j) {
        if (j > 0) os << ", ";
        os << row.tally.counts[j];
      }
      os << "]";
    }
    os << ", \"telemetry\": " << telemetry_to_json(row.tally.telemetry)
       << ", \"elapsed_seconds\": " << format_exact(row.elapsed_seconds)
       << "}";
  }
  os << "]";
  if (!result.metrics.empty()) {
    // Optional observability block (lnc_sweep --trace): timing
    // histograms merged across workers. Machine-dependent by nature;
    // every determinism gate ignores it.
    os << ", \"metrics\": " << result.metrics.to_json();
  }
  os << "}\n";
}

SweepResult sweep_from_json(const std::string& text,
                            std::vector<std::string>* warnings) {
  return sweep_from_json(Json::parse(text), warnings);
}

SweepResult sweep_from_json(const Json& root,
                            std::vector<std::string>* warnings) {
  // Deduplicated by (where, key): a 50-row shard file with one foreign
  // row key warns once, not 50 times.
  std::set<std::pair<std::string, std::string>> warned;
  auto warn_unknown = [&](const Json::Object& object,
                          std::initializer_list<const char*> known,
                          const std::string& where) {
    if (warnings == nullptr) return;
    for (const auto& [key, value] : object) {
      (void)value;
      bool recognized = false;
      for (const char* name : known) recognized |= key == name;
      if (!recognized && warned.emplace(where, key).second) {
        warnings->push_back("unrecognized " + where + " key '" + key +
                            "' (shard file written by a different "
                            "lnc_sweep generation?)");
      }
    }
  };
  warn_unknown(root.as_object(),
               {"scenario", "base_seed", "shard", "shard_count", "workload",
                "backend", "trial_begin", "trial_end", "seed_stream_epoch",
                "build_rev", "rows", "metrics"},
               "top-level");
  SweepResult result;
  result.scenario = root.at("scenario").as_string();
  result.base_seed = root.at("base_seed").as_uint64();
  result.shard = static_cast<unsigned>(root.at("shard").as_uint64());
  result.shard_count =
      static_cast<unsigned>(root.at("shard_count").as_uint64());
  if (root.has("trial_begin")) {
    result.trial_begin = root.at("trial_begin").as_uint64();
  }
  if (root.has("trial_end")) {
    result.trial_end = root.at("trial_end").as_uint64();
  }
  if (warnings != nullptr && root.has("seed_stream_epoch")) {
    const std::uint64_t epoch = root.at("seed_stream_epoch").as_uint64();
    if (epoch != util::seed_stream_epoch()) {
      warnings->push_back(
          "result file was written at seed-stream epoch " +
          std::to_string(epoch) + " but this binary is at epoch " +
          std::to_string(util::seed_stream_epoch()) +
          " — its trial streams are NOT mergeable with fresh runs");
    }
  }
  if (root.has("workload")) {
    // Absent in files written by success-only binary generations.
    const std::string& workload = root.at("workload").as_string();
    const std::optional<local::WorkloadKind> kind =
        local::workload_from_string(workload);
    if (!kind) {
      throw std::runtime_error("shard file 'workload' must be "
                               "success|value|counter, got '" +
                               workload + "'");
    }
    result.workload = *kind;
  }
  if (root.has("backend")) {
    // Absent in files written by pre-backend binary generations.
    const std::string& backend = root.at("backend").as_string();
    const std::optional<local::OptimizationConfig::Backend> parsed =
        local::backend_from_string(backend);
    if (!parsed) {
      throw std::runtime_error(
          "shard file 'backend' must be auto|naive|batched|vectorized, "
          "got '" + backend + "'");
    }
    result.backend = *parsed;
  }
  for (const Json& row_json : root.at("rows").as_array()) {
    warn_unknown(row_json.as_object(),
                 {"n", "actual_n", "total_trials", "trials", "successes",
                  "values", "counts", "telemetry", "elapsed_seconds"},
                 "row");
    SweepRow row;
    row.requested_n = row_json.at("n").as_uint64();
    row.actual_n = row_json.at("actual_n").as_uint64();
    row.total_trials = row_json.at("total_trials").as_uint64();
    row.tally.trials = row_json.at("trials").as_uint64();
    row.tally.successes = row_json.at("successes").as_uint64();
    if (row_json.has("values")) {
      const Json& values = row_json.at("values");
      warn_unknown(values.as_object(),
                   {"sum", "sum_sq", "exact_sum", "exact_sum_sq"},
                   "values-block");
      // The exact hex words are authoritative; the rounded doubles are a
      // fallback for hand-written files (exactness then only holds for
      // sums that are representable, e.g. small integers).
      if (values.has("exact_sum")) {
        row.tally.value_sum =
            stats::ExactSum::from_hex(values.at("exact_sum").as_string());
      } else if (values.has("sum")) {
        row.tally.value_sum.add(values.at("sum").as_number());
      }
      if (values.has("exact_sum_sq")) {
        row.tally.value_sum_sq =
            stats::ExactSum::from_hex(values.at("exact_sum_sq").as_string());
      } else if (values.has("sum_sq")) {
        row.tally.value_sum_sq.add(values.at("sum_sq").as_number());
      }
    }
    if (row_json.has("counts")) {
      for (const Json& count : row_json.at("counts").as_array()) {
        row.tally.counts.push_back(count.as_uint64());
      }
    }
    if (row_json.has("telemetry")) {
      row.tally.telemetry = telemetry_from_json(row_json.at("telemetry"));
    }
    if (row_json.has("elapsed_seconds")) {
      row.elapsed_seconds = row_json.at("elapsed_seconds").as_number();
    }
    result.rows.push_back(row);
  }
  if (root.has("metrics")) {
    result.metrics = obs::MetricsRegistry::from_json(
        root.at("metrics"), "metrics", warnings);
  }
  if (!root.has("trial_begin") && !root.has("trial_end") &&
      !result.rows.empty() && result.complete()) {
    // Pre-range files carry no extent; a complete one provably covers
    // [0, total). Sharded legacy files stay 0/0 (unknown) — the range
    // merge rejects them with a diagnostic rather than guessing.
    result.trial_end = result.rows[0].total_trials;
  }
  return result;
}

std::string write_json_file(const std::string& path,
                            const SweepResult& result) {
  std::ostringstream os;
  write_json(os, result);
  return util::write_file_atomic(path, os.str());
}

SweepResult merge_sweep_files(std::span<const std::string> paths,
                              std::vector<std::string>* warnings) {
  if (paths.empty()) {
    throw std::runtime_error("no shard result files to merge");
  }
  std::vector<SweepResult> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string text;
    const std::string read_error = util::read_file(path, text);
    if (!read_error.empty()) {
      throw std::runtime_error("shard result: " + read_error);
    }
    std::vector<std::string> file_warnings;
    try {
      shards.push_back(sweep_from_json(
          text, warnings != nullptr ? &file_warnings : nullptr));
    } catch (const std::exception& ex) {
      throw std::runtime_error("shard result '" + path +
                               "': " + ex.what());
    }
    if (warnings != nullptr) {
      for (const std::string& warning : file_warnings) {
        warnings->push_back(path + ": " + warning);
      }
    }
  }
  if (warnings != nullptr) {
    // Mixed backends still merge bit-identically (that contract is what
    // tests/vector_engine_test.cpp asserts), so a mismatch is a warning,
    // not a merge failure — but a fleet silently running half naive and
    // half vectorized is worth surfacing.
    for (std::size_t s = 1; s < shards.size(); ++s) {
      if (shards[s].backend != shards[0].backend) {
        warnings->push_back(
            std::string("shard files were produced under different "
                        "backends (") +
            local::to_string(shards[0].backend) + " vs " +
            local::to_string(shards[s].backend) +
            "); tallies still merge bit-identically");
        break;
      }
    }
  }
  const std::string error = can_merge(shards);
  if (!error.empty()) {
    throw std::runtime_error("cannot merge shard results: " + error);
  }
  return merge_sweeps(shards);
}

}  // namespace lnc::scenario
