#include "scenario/sweep.h"

#include <initializer_list>
#include <ostream>
#include <set>

#include "scenario/spec_json.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lnc::scenario {

SweepResult run_sweep(const CompiledScenario& scenario,
                      const SweepOptions& options) {
  LNC_EXPECTS(options.shard_count > 0 && options.shard < options.shard_count);
  SweepResult result;
  result.scenario = scenario.spec().name;
  result.base_seed = scenario.spec().base_seed;
  result.shard = options.shard;
  result.shard_count = options.shard_count;

  local::BatchRunner runner(options.pool);
  result.rows.reserve(scenario.points().size());
  for (const CompiledScenario::GridPoint& point : scenario.points()) {
    const local::TrialRange range = local::shard_range(
        point.plan.trials, options.shard, options.shard_count);
    SweepRow row;
    row.requested_n = point.requested_n;
    row.actual_n = point.instance->node_count();
    row.total_trials = point.plan.trials;
    row.tally = runner.run_shard(point.plan, range);
    result.rows.push_back(row);
  }
  return result;
}

std::string can_merge(std::span<const SweepResult> shards) {
  if (shards.empty()) return "no shard results to merge";
  std::set<unsigned> seen_shards;
  std::vector<std::uint64_t> covered(shards[0].rows.size(), 0);
  for (const SweepResult& shard : shards) {
    if (shard.scenario != shards[0].scenario ||
        shard.base_seed != shards[0].base_seed ||
        shard.rows.size() != shards[0].rows.size()) {
      return "shards come from different scenario runs ('" + shard.scenario +
             "' vs '" + shards[0].scenario + "')";
    }
    if (shard.shard_count != shards[0].shard_count) {
      return "shards use different split factors (" +
             std::to_string(shard.shard_count) + " vs " +
             std::to_string(shards[0].shard_count) + ")";
    }
    if (!seen_shards.insert(shard.shard).second) {
      return "shard " + std::to_string(shard.shard) + " given twice";
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
      const SweepRow& row = shard.rows[i];
      const SweepRow& first = shards[0].rows[i];
      if (row.requested_n != first.requested_n ||
          row.total_trials != first.total_trials) {
        return "shards disagree on the n-grid or trial counts";
      }
      covered[i] += row.tally.trials;
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (covered[i] != shards[0].rows[i].total_trials) {
      return "shards cover " + std::to_string(covered[i]) + " of " +
             std::to_string(shards[0].rows[i].total_trials) +
             " trials at n = " +
             std::to_string(shards[0].rows[i].requested_n) +
             " (missing or extra shard files)";
    }
  }
  return {};
}

SweepResult merge_sweeps(std::span<const SweepResult> shards) {
  LNC_EXPECTS(!shards.empty());
  SweepResult merged;
  merged.scenario = shards[0].scenario;
  merged.base_seed = shards[0].base_seed;
  merged.shard = 0;
  merged.shard_count = 1;
  merged.rows = shards[0].rows;

  // Duplicate shard files would double-count trials yet can still sum to
  // total_trials (e.g. the same half merged twice) — reject repeats and
  // mismatched splits outright.
  std::set<unsigned> seen_shards = {shards[0].shard};
  for (std::size_t s = 1; s < shards.size(); ++s) {
    const SweepResult& shard = shards[s];
    LNC_EXPECTS(shard.scenario == merged.scenario &&
                shard.base_seed == merged.base_seed &&
                shard.rows.size() == merged.rows.size() &&
                "merging results of different scenario runs");
    LNC_EXPECTS(shard.shard_count == shards[0].shard_count &&
                "merging shards of different split factors");
    LNC_EXPECTS(seen_shards.insert(shard.shard).second &&
                "merging the same shard twice");
    for (std::size_t i = 0; i < merged.rows.size(); ++i) {
      SweepRow& row = merged.rows[i];
      const SweepRow& other = shard.rows[i];
      LNC_EXPECTS(other.requested_n == row.requested_n &&
                  other.total_trials == row.total_trials &&
                  "merging rows of different grid points");
      row.tally.successes += other.tally.successes;
      row.tally.trials += other.tally.trials;
      row.tally.telemetry.merge(other.tally.telemetry);
    }
  }
  for (const SweepRow& row : merged.rows) {
    LNC_EXPECTS(row.tally.trials == row.total_trials &&
                "merged shards do not cover the full trial range");
  }
  return merged;
}

stats::Estimate row_estimate(const SweepRow& row) {
  LNC_EXPECTS(row.tally.trials == row.total_trials &&
              "estimate of an incomplete (sharded) row");
  const local::ShardTally tallies[] = {row.tally};
  return local::merge_tallies(tallies);
}

local::Telemetry result_telemetry(const SweepResult& result) {
  local::Telemetry merged;
  for (const SweepRow& row : result.rows) merged.merge(row.tally.telemetry);
  return merged;
}

namespace {

void add_telemetry_cells(util::Table& table, const SweepRow& row) {
  table.add_cell(row.tally.telemetry.messages_sent)
      .add_cell(row.tally.telemetry.words_sent)
      .add_cell(row.tally.telemetry.rounds_executed)
      .add_cell(row.tally.telemetry.ball_expansions);
}

}  // namespace

util::Table to_table(const SweepResult& result, bool with_telemetry) {
  // Only the deterministic counters appear as columns — the table stays
  // diffable across thread counts and shard layouts; timing lives in the
  // JSON telemetry block and the CLI's `timing:` line.
  const std::vector<std::string> telemetry_headers = {"msgs", "words",
                                                      "rounds", "balls"};
  if (!result.complete()) {
    std::vector<std::string> headers = {"n", "actual n", "shard trials",
                                        "shard successes", "of total"};
    if (with_telemetry) {
      headers.insert(headers.end(), telemetry_headers.begin(),
                     telemetry_headers.end());
    }
    util::Table table(std::move(headers));
    for (const SweepRow& row : result.rows) {
      table.new_row()
          .add_cell(row.requested_n)
          .add_cell(row.actual_n)
          .add_cell(row.tally.trials)
          .add_cell(row.tally.successes)
          .add_cell(row.total_trials);
      if (with_telemetry) add_telemetry_cells(table, row);
    }
    return table;
  }
  std::vector<std::string> headers = {"n",         "actual n", "trials",
                                      "successes", "p_hat",    "ci lo",
                                      "ci hi"};
  if (with_telemetry) {
    headers.insert(headers.end(), telemetry_headers.begin(),
                   telemetry_headers.end());
  }
  util::Table table(std::move(headers));
  for (const SweepRow& row : result.rows) {
    const stats::Estimate estimate = row_estimate(row);
    table.new_row()
        .add_cell(row.requested_n)
        .add_cell(row.actual_n)
        .add_cell(row.tally.trials)
        .add_cell(row.tally.successes)
        .add_cell(estimate.p_hat, 4)
        .add_cell(estimate.ci.lo, 4)
        .add_cell(estimate.ci.hi, 4);
    if (with_telemetry) add_telemetry_cells(table, row);
  }
  return table;
}

void write_json(std::ostream& os, const SweepResult& result) {
  os << "{\"scenario\": \"" << util::json_escape(result.scenario)
     << "\", \"base_seed\": " << result.base_seed
     << ", \"shard\": " << result.shard
     << ", \"shard_count\": " << result.shard_count << ", \"rows\": [";
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const SweepRow& row = result.rows[i];
    if (i > 0) os << ", ";
    os << "{\"n\": " << row.requested_n << ", \"actual_n\": " << row.actual_n
       << ", \"total_trials\": " << row.total_trials
       << ", \"trials\": " << row.tally.trials
       << ", \"successes\": " << row.tally.successes << ", \"telemetry\": "
       << telemetry_to_json(row.tally.telemetry) << "}";
  }
  os << "]}\n";
}

SweepResult sweep_from_json(const std::string& text,
                            std::vector<std::string>* warnings) {
  const Json root = Json::parse(text);
  // Deduplicated by (where, key): a 50-row shard file with one foreign
  // row key warns once, not 50 times.
  std::set<std::pair<std::string, std::string>> warned;
  auto warn_unknown = [&](const Json::Object& object,
                          std::initializer_list<const char*> known,
                          const std::string& where) {
    if (warnings == nullptr) return;
    for (const auto& [key, value] : object) {
      (void)value;
      bool recognized = false;
      for (const char* name : known) recognized |= key == name;
      if (!recognized && warned.emplace(where, key).second) {
        warnings->push_back("unrecognized " + where + " key '" + key +
                            "' (shard file written by a different "
                            "lnc_sweep generation?)");
      }
    }
  };
  warn_unknown(root.as_object(),
               {"scenario", "base_seed", "shard", "shard_count", "rows"},
               "top-level");
  SweepResult result;
  result.scenario = root.at("scenario").as_string();
  result.base_seed = root.at("base_seed").as_uint64();
  result.shard = static_cast<unsigned>(root.at("shard").as_uint64());
  result.shard_count =
      static_cast<unsigned>(root.at("shard_count").as_uint64());
  for (const Json& row_json : root.at("rows").as_array()) {
    warn_unknown(row_json.as_object(),
                 {"n", "actual_n", "total_trials", "trials", "successes",
                  "telemetry"},
                 "row");
    SweepRow row;
    row.requested_n = row_json.at("n").as_uint64();
    row.actual_n = row_json.at("actual_n").as_uint64();
    row.total_trials = row_json.at("total_trials").as_uint64();
    row.tally.trials = row_json.at("trials").as_uint64();
    row.tally.successes = row_json.at("successes").as_uint64();
    if (row_json.has("telemetry")) {
      row.tally.telemetry = telemetry_from_json(row_json.at("telemetry"));
    }
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace lnc::scenario
