// How shard jobs reach an executor (ROADMAP "remote shard launcher").
//
// A Transport runs ONE shard job to completion — `lnc_sweep --spec S
// --shard i/k --out O` — and reports how it ended. The supervisor
// (orchestrate/supervisor.h) owns concurrency, deadlines, and retries;
// transports own only the mechanics of starting the process somewhere and
// waiting for it. Two real transports ship: LocalProcessTransport
// (fork/exec of the local lnc_sweep binary — the CI-testable baseline)
// and SshTransport (a user-supplied command template rendered per shard —
// ssh, srun, or any launcher that blocks until the remote job exits).
// FaultInjectingTransport is the test/CI hook that forces attempt
// failures to exercise the retry and permanent-failure paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lnc::orchestrate {

/// One shard's work order. Paths are absolute (or coordinator-relative);
/// the SshTransport contract is that they resolve on the executor too —
/// i.e. the run directory lives on a shared filesystem, the standard
/// cluster arrangement.
struct ShardJob {
  unsigned shard = 0;
  unsigned shard_count = 1;
  /// When nonzero-width, the job runs `--trial-range begin:end` instead
  /// of `--shard i/k` — the explicit-extent form used by cache top-up
  /// runs (and any planner that sizes shards unevenly). The results
  /// merge by range (scenario::merge_trial_ranges), not by index.
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_end = 0;
  std::string spec_path;    ///< frozen spec JSON (scenario::spec_to_json)
  std::string output_path;  ///< where the shard result JSON must land
  std::string log_path;     ///< attempt stdout+stderr (empty: /dev/null)
  unsigned threads = 1;     ///< lnc_sweep --threads for this job

  bool has_trial_range() const noexcept { return trial_end > trial_begin; }
};

struct TransportResult {
  bool launched = false;   ///< false: the process never started
  bool timed_out = false;  ///< killed at the deadline (straggler)
  int exit_code = -1;      ///< meaningful when launched and not timed out
  std::string error;       ///< human-readable failure description

  bool ok() const noexcept {
    return launched && !timed_out && exit_code == 0;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string name() const = 0;

  /// Runs the job and blocks until it finishes or `timeout_seconds`
  /// elapses (<= 0: no deadline; the process is killed at the deadline).
  /// Must be callable from several supervisor threads concurrently.
  virtual TransportResult run(const ShardJob& job,
                              double timeout_seconds) = 0;
};

/// The lnc_sweep argv a job expands to — shared by both transports and
/// by lnc_launch's status/dry-run output.
std::vector<std::string> sweep_argv(const std::string& sweep_binary,
                                    const ShardJob& job);

/// Single-quotes a string for exactly ONE /bin/sh evaluation (POSIX
/// quoting; embedded single quotes use the '\'' dance). NOT used for
/// template rendering — see render_template.
std::string shell_quote(const std::string& text);

/// Renders an SshTransport command template: `{cmd}` expands to the
/// lnc_sweep invocation, `{shard}` to the job's shard index (so
/// templates can map shards onto hosts, e.g. "ssh worker{shard} {cmd}").
/// A template with no `{cmd}` gets the command appended. Because the
/// rendered line crosses an UNKNOWN number of shell evaluations (local
/// sh, then maybe ssh's remote shell), arguments are emitted bare and
/// must be shell-safe; an argument with spaces or metacharacters throws
/// std::runtime_error telling the user to pick safe paths.
std::string render_template(const std::string& command_template,
                            const std::string& sweep_command,
                            const ShardJob& job);

/// fork/exec of a local lnc_sweep binary; the zero-infrastructure
/// transport CI exercises end to end.
class LocalProcessTransport final : public Transport {
 public:
  explicit LocalProcessTransport(std::string sweep_binary)
      : sweep_binary_(std::move(sweep_binary)) {}

  std::string name() const override { return "local"; }
  TransportResult run(const ShardJob& job, double timeout_seconds) override;

 private:
  std::string sweep_binary_;
};

/// Command-template transport: renders the template per job and runs it
/// through `/bin/sh -c`. Works for ssh, srun, docker exec — anything that
/// blocks until the remote job exits and propagates its exit code.
class SshTransport final : public Transport {
 public:
  /// `sweep_command` is the lnc_sweep spelling ON THE EXECUTOR (default
  /// assumes it is on PATH there).
  explicit SshTransport(std::string command_template,
                        std::string sweep_command = "lnc_sweep")
      : template_(std::move(command_template)),
        sweep_command_(std::move(sweep_command)) {}

  std::string name() const override { return "ssh"; }
  TransportResult run(const ShardJob& job, double timeout_seconds) override;

 private:
  std::string template_;
  std::string sweep_command_;
};

/// Test hook: the first `times` attempts of `shard` fail synthetically
/// (exit 99) without reaching the inner transport; later attempts pass
/// through. CI forces one shard to fail once, proving the supervisor's
/// retry path on every push.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport& inner, unsigned shard, unsigned times)
      : inner_(&inner), shard_(shard), remaining_(times) {}

  std::string name() const override { return inner_->name(); }
  TransportResult run(const ShardJob& job, double timeout_seconds) override;

 private:
  Transport* inner_;
  unsigned shard_;
  std::atomic<unsigned> remaining_;
};

}  // namespace lnc::orchestrate
