#include "orchestrate/manifest.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include "scenario/spec_json.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace lnc::orchestrate {

const char* to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::kPending:
      return "pending";
    case ShardState::kRunning:
      return "running";
    case ShardState::kDone:
      return "done";
    case ShardState::kFailed:
      return "failed";
  }
  return "?";
}

std::optional<ShardState> shard_state_from_string(
    std::string_view text) noexcept {
  if (text == "pending") return ShardState::kPending;
  if (text == "running") return ShardState::kRunning;
  if (text == "done") return ShardState::kDone;
  if (text == "failed") return ShardState::kFailed;
  return std::nullopt;
}

std::string RunManifest::manifest_path() const {
  return run_dir + "/manifest.json";
}

std::string RunManifest::spec_path() const {
  return run_dir + "/" + spec_file;
}

std::string RunManifest::output_path(unsigned shard) const {
  return run_dir + "/" + shards.at(shard).output;
}

std::string RunManifest::log_path(unsigned shard) const {
  return run_dir + "/shard-" + std::to_string(shard) + ".log";
}

std::string RunManifest::baseline_path() const {
  return run_dir + "/baseline.json";
}

bool RunManifest::all_done() const noexcept {
  for (const ShardRecord& record : shards) {
    if (record.state != ShardState::kDone) return false;
  }
  return !shards.empty();
}

RunManifest make_manifest(std::string run_dir, const std::string& scenario,
                          unsigned shard_count) {
  RunManifest manifest;
  manifest.run_dir = std::move(run_dir);
  manifest.scenario = scenario;
  manifest.shard_count = shard_count;
  manifest.shards.resize(shard_count);
  for (unsigned shard = 0; shard < shard_count; ++shard) {
    manifest.shards[shard].shard = shard;
    manifest.shards[shard].output =
        "shard-" + std::to_string(shard) + ".json";
  }
  return manifest;
}

std::string manifest_to_json(const RunManifest& manifest) {
  std::ostringstream os;
  os << "{\"scenario\": \"" << util::json_escape(manifest.scenario)
     << "\", \"spec_file\": \"" << util::json_escape(manifest.spec_file)
     << "\", \"shard_count\": " << manifest.shard_count;
  if (manifest.is_topup()) {
    // Only top-up runs carry the range keys — classic manifests stay
    // byte-compatible with older binaries.
    os << ", \"trial_begin\": " << manifest.trial_begin
       << ", \"trial_end\": " << manifest.trial_end;
  }
  os << ", \"shards\": [";
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardRecord& record = manifest.shards[i];
    if (i > 0) os << ", ";
    os << "{\"shard\": " << record.shard << ", \"state\": \""
       << to_string(record.state) << "\", \"attempts\": " << record.attempts
       << ", \"output\": \"" << util::json_escape(record.output)
       << "\", \"exit_code\": " << record.exit_code << ", \"error\": \""
       << util::json_escape(record.error) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

RunManifest manifest_from_json(const std::string& text,
                               std::string run_dir) {
  const scenario::Json root = scenario::Json::parse(text);
  RunManifest manifest;
  manifest.run_dir = std::move(run_dir);
  manifest.scenario = root.at("scenario").as_string();
  manifest.spec_file = root.at("spec_file").as_string();
  manifest.shard_count =
      static_cast<unsigned>(root.at("shard_count").as_uint64());
  if (root.has("trial_begin")) {
    manifest.trial_begin = root.at("trial_begin").as_uint64();
  }
  if (root.has("trial_end")) {
    manifest.trial_end = root.at("trial_end").as_uint64();
  }
  if (manifest.trial_end < manifest.trial_begin) {
    throw std::runtime_error("manifest trial range [" +
                             std::to_string(manifest.trial_begin) + ", " +
                             std::to_string(manifest.trial_end) +
                             ") is inverted");
  }
  const scenario::Json::Array& shards = root.at("shards").as_array();
  if (shards.size() != manifest.shard_count) {
    throw std::runtime_error(
        "manifest lists " + std::to_string(shards.size()) + " shards but "
        "declares shard_count " + std::to_string(manifest.shard_count));
  }
  manifest.shards.resize(manifest.shard_count);
  std::set<unsigned> seen;
  for (const scenario::Json& shard_json : shards) {
    ShardRecord record;
    record.shard = static_cast<unsigned>(shard_json.at("shard").as_uint64());
    if (record.shard >= manifest.shard_count ||
        !seen.insert(record.shard).second) {
      throw std::runtime_error("manifest shard index " +
                               std::to_string(record.shard) +
                               " out of range or duplicated");
    }
    const std::string& state = shard_json.at("state").as_string();
    const std::optional<ShardState> parsed = shard_state_from_string(state);
    if (!parsed) {
      throw std::runtime_error("manifest shard state '" + state +
                               "' is not pending|running|done|failed");
    }
    record.state = *parsed;
    record.attempts =
        static_cast<unsigned>(shard_json.at("attempts").as_uint64());
    record.output = shard_json.at("output").as_string();
    if (shard_json.has("exit_code")) {
      // Exit codes are small but signed (we record -1 for never-reaped
      // launches) — read through the double field.
      record.exit_code =
          static_cast<int>(shard_json.at("exit_code").as_number());
    }
    if (shard_json.has("error")) {
      record.error = shard_json.at("error").as_string();
    }
    manifest.shards[record.shard] = record;
  }
  return manifest;
}

void save_manifest(const RunManifest& manifest) {
  const std::string error = util::write_file_atomic(
      manifest.manifest_path(), manifest_to_json(manifest));
  if (!error.empty()) {
    throw std::runtime_error("manifest save failed: " + error);
  }
}

RunManifest load_manifest(std::string run_dir) {
  const std::string path = run_dir + "/manifest.json";
  std::string text;
  if (!util::read_file(path, text).empty()) {
    throw std::runtime_error("no manifest at '" + path +
                             "' (not a run directory?)");
  }
  try {
    return manifest_from_json(text, std::move(run_dir));
  } catch (const std::exception& ex) {
    throw std::runtime_error("corrupt manifest '" + path +
                             "': " + ex.what());
  }
}

}  // namespace lnc::orchestrate
