#include "orchestrate/transport.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace lnc::orchestrate {
namespace {

/// Decodes a reaped wait status into the TransportResult.
TransportResult& finish_wait(int status, TransportResult& result) {
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
    if (result.exit_code == 127) {
      // 127 is exec/command-not-found from our direct exec OR from a
      // template's shell — don't name argv[0], it may just be /bin/sh.
      result.error = "exited with code 127 (command not found)";
    } else if (result.exit_code != 0) {
      result.error =
          "exited with code " + std::to_string(result.exit_code);
    }
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
    result.error =
        std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  } else {
    result.error = "ended with unrecognized wait status";
  }
  return result;
}

/// Blocking argv runner with a kill-at-deadline. The child's stdout and
/// stderr land in job-specific log files so concurrent shard output never
/// interleaves with the coordinator's status stream.
TransportResult run_argv(const std::vector<std::string>& argv,
                         const std::string& log_path,
                         double timeout_seconds) {
  TransportResult result;
  std::vector<char*> arg_ptrs;
  arg_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    arg_ptrs.push_back(const_cast<char*>(arg.c_str()));
  }
  arg_ptrs.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.error = std::string("fork failed: ") + std::strerror(errno);
    return result;
  }
  if (pid == 0) {
    // Child: own process group (so a deadline kill reaps the whole job
    // tree — a template's /bin/sh AND whatever it spawned), capture
    // output, then exec. Only async-signal-safe calls.
    ::setpgid(0, 0);
    // stdin from /dev/null: concurrent children must not drain (or block
    // on) the coordinator's terminal — ssh without -n would otherwise
    // hang invisibly on a host-key or password prompt.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    const char* sink = log_path.empty() ? "/dev/null" : log_path.c_str();
    const int fd = ::open(sink, O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execvp(arg_ptrs[0], arg_ptrs.data());
    ::_exit(127);  // exec failed
  }
  // Mirror the setpgid from the parent side too, closing the race where
  // the deadline fires before the child reaches its own call.
  ::setpgid(pid, pid);

  result.launched = true;
  int status = 0;
  if (timeout_seconds <= 0) {
    // No deadline: block in waitpid instead of polling — a coordinator
    // babysitting hours-long shards should not wake 200 times a second.
    if (::waitpid(pid, &status, 0) < 0) {
      result.error = std::string("waitpid failed: ") + std::strerror(errno);
      return result;
    }
    return finish_wait(status, result);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (true) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) break;
    if (reaped < 0) {
      result.error =
          std::string("waitpid failed: ") + std::strerror(errno);
      return result;
    }
    if (timeout_seconds > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      // Straggler: kill the whole coordinator-side job process group and
      // reap; the supervisor re-dispatches. Group-wide, so a template's
      // local shell children cannot linger. A REMOTE process an ssh-style
      // template started may still survive its client — benign for
      // results (the frozen spec makes any late atomic write
      // bit-identical to the re-run's), but wrap the remote command in
      // its own `timeout` to reclaim the compute.
      ::kill(-pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      result.timed_out = true;
      result.error = "timed out after " +
                     std::to_string(timeout_seconds) + " s (killed)";
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return finish_wait(status, result);
}

}  // namespace

std::vector<std::string> sweep_argv(const std::string& sweep_binary,
                                    const ShardJob& job) {
  std::vector<std::string> argv = {
      sweep_binary,
      "--spec",
      job.spec_path,
  };
  if (job.has_trial_range()) {
    // Explicit-extent jobs (top-up runs) carry their slice directly;
    // --shard and --trial-range are mutually exclusive on the CLI.
    argv.push_back("--trial-range");
    argv.push_back(std::to_string(job.trial_begin) + ":" +
                   std::to_string(job.trial_end));
  } else {
    argv.push_back("--shard");
    argv.push_back(std::to_string(job.shard) + "/" +
                   std::to_string(job.shard_count));
  }
  argv.push_back("--out");
  argv.push_back(job.output_path);
  if (job.threads != 1) {
    argv.push_back("--threads");
    argv.push_back(std::to_string(job.threads));
  }
  return argv;
}

std::string shell_quote(const std::string& text) {
  std::string quoted = "'";
  for (const char ch : text) {
    if (ch == '\'') {
      quoted += "'\\''";
    } else {
      quoted.push_back(ch);
    }
  }
  quoted.push_back('\'');
  return quoted;
}

/// True when the text passes through ANY number of shell evaluations
/// unchanged — no quoting, splitting, or expansion characters.
bool shell_safe(const std::string& text) {
  if (text.empty()) return false;
  for (const char ch : text) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '.' ||
                    ch == '/' || ch == ':' || ch == '+' || ch == ',' ||
                    ch == '=' || ch == '@' || ch == '%' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

std::string render_template(const std::string& command_template,
                            const std::string& sweep_command,
                            const ShardJob& job) {
  std::string command;
  for (const std::string& arg : sweep_argv(sweep_command, job)) {
    // Quoting cannot survive a template's unknown number of shell
    // evaluations (the local /bin/sh consumes one level; ssh's remote
    // shell re-splits; srun does not) — so arguments are emitted BARE
    // and must be shell-safe. In practice that means: pick run
    // directories without spaces or shell metacharacters.
    if (!shell_safe(arg)) {
      throw std::runtime_error(
          "command-template argument '" + arg +
          "' contains shell-unsafe characters; use run-directory and "
          "binary paths made of letters, digits, and _ . / : + , = @ % -");
    }
    if (!command.empty()) command.push_back(' ');
    command += arg;
  }
  std::string rendered = command_template;
  bool placed = false;
  auto replace_all = [&](const std::string& token, const std::string& with) {
    std::size_t pos = 0;
    while ((pos = rendered.find(token, pos)) != std::string::npos) {
      rendered.replace(pos, token.size(), with);
      pos += with.size();
      placed |= token == "{cmd}";
    }
  };
  replace_all("{shard}", std::to_string(job.shard));
  replace_all("{cmd}", command);
  if (!placed) rendered += " " + command;
  return rendered;
}

TransportResult LocalProcessTransport::run(const ShardJob& job,
                                           double timeout_seconds) {
  return run_argv(sweep_argv(sweep_binary_, job), job.log_path,
                  timeout_seconds);
}

TransportResult SshTransport::run(const ShardJob& job,
                                  double timeout_seconds) {
  const std::string rendered =
      render_template(template_, sweep_command_, job);
  return run_argv({"/bin/sh", "-c", rendered}, job.log_path,
                  timeout_seconds);
}

TransportResult FaultInjectingTransport::run(const ShardJob& job,
                                             double timeout_seconds) {
  if (job.shard == shard_) {
    unsigned remaining = remaining_.load(std::memory_order_relaxed);
    while (remaining > 0) {
      if (remaining_.compare_exchange_weak(remaining, remaining - 1,
                                           std::memory_order_relaxed)) {
        TransportResult result;
        result.launched = true;
        result.exit_code = 99;
        result.error = "injected failure (test hook)";
        return result;
      }
    }
  }
  return inner_->run(job, timeout_seconds);
}

}  // namespace lnc::orchestrate
