// Fault-tolerant execution of a manifest's shard jobs.
//
// The supervisor dispatches every not-yet-done shard over a Transport
// with bounded concurrency, a per-attempt deadline (stragglers are killed
// and re-dispatched), and retry-with-exponential-backoff up to an attempt
// budget. Every state transition is persisted through save_manifest
// BEFORE the next action, so a coordinator crash at any point leaves a
// resumable run directory. Failures never perturb the aggregate: a shard
// either lands its complete result file (and is marked done) or stays
// failed and the merge refuses to proceed — partial results cannot leak
// into the estimate.
#pragma once

#include <iosfwd>

#include "orchestrate/manifest.h"
#include "orchestrate/transport.h"

namespace lnc::orchestrate {

struct SupervisorOptions {
  /// Concurrent jobs; 0 picks min(shard count, hardware concurrency).
  unsigned max_parallel = 0;
  /// Launch attempts per shard in THIS supervisor run (a resume grants a
  /// fresh budget; the manifest keeps the cumulative count).
  unsigned max_attempts = 3;
  /// Per-attempt deadline; <= 0 disables the straggler kill.
  double timeout_seconds = 0;
  /// First retry delay; doubles per further retry of the same shard.
  /// The claiming worker holds its job slot through the backoff — with
  /// the small default delays and attempt budget that idles a slot for
  /// well under a second per flaky shard; work-stealing retry scheduling
  /// belongs to the elastic-sizing ROADMAP item.
  double backoff_ms = 100;
  /// Streaming status lines (one per state transition); null = silent.
  std::ostream* status = nullptr;
  /// Live fleet heartbeat (shards done, throughput, ETA) on `status`
  /// between the per-transition lines (lnc_launch --progress). The
  /// supervisor additionally records shard lifecycle trace spans
  /// whenever the process-wide obs::TraceRecorder is enabled
  /// (lnc_launch --trace) — both are timing-only observability.
  bool progress = false;
};

/// Runs jobs until every shard is done or permanently failed.
class JobSupervisor {
 public:
  JobSupervisor(Transport& transport, SupervisorOptions options);

  /// Dispatches every shard of `manifest` not already done. Blocks until
  /// all of them are done or failed; returns true when the whole manifest
  /// is done. The manifest reflects the final states (and has been saved).
  bool run(RunManifest& manifest, unsigned sweep_threads = 1);

 private:
  Transport* transport_;
  SupervisorOptions options_;
};

}  // namespace lnc::orchestrate
