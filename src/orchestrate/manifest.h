// The persistent state of one distributed sweep run (ROADMAP "remote
// shard launcher").
//
// A run lives in a RUN DIRECTORY holding the frozen scenario spec
// (spec.json — the job handoff unit, scenario::spec_to_json), one result
// file per shard (shard-<i>.json, the lnc_sweep --out format), per-shard
// launch logs, and manifest.json: each shard's state, attempt count, and
// last failure. The manifest is rewritten ATOMICALLY (tmp + rename) after
// every state transition, so a coordinator killed mid-run leaves a
// directory that `lnc_launch --resume <dir>` can pick up — only shards
// not recorded done (or whose output file went missing) re-run, and the
// final merge is still bit-identical to the unsharded sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.h"

namespace lnc::orchestrate {

/// Lifecycle of one shard job. kRunning persists only when a coordinator
/// died mid-attempt — resume treats it like kPending. kFailed means the
/// supervisor exhausted its attempt budget; resume grants a fresh budget.
enum class ShardState { kPending, kRunning, kDone, kFailed };

const char* to_string(ShardState state) noexcept;
std::optional<ShardState> shard_state_from_string(
    std::string_view text) noexcept;

struct ShardRecord {
  unsigned shard = 0;
  ShardState state = ShardState::kPending;
  /// Launch attempts so far, cumulative across resumes.
  unsigned attempts = 0;
  /// Run-dir-relative result path (the shard's `lnc_sweep --out` target).
  std::string output;
  /// Last attempt's exit code (0 until a launch finished).
  int exit_code = 0;
  /// Last attempt's failure description; empty after a success.
  std::string error;
};

struct RunManifest {
  /// Where this manifest lives. NOT serialized — set by load/make, so a
  /// run directory stays relocatable (paths inside are relative).
  std::string run_dir;

  std::string scenario;                 ///< spec name (labels status lines)
  std::string spec_file = "spec.json";  ///< run-dir-relative spec path
  unsigned shard_count = 0;
  /// When nonzero-width, this run covers only trials
  /// [trial_begin, trial_end) of the frozen spec — a TOP-UP run planned
  /// against a cached baseline (plan_topup_run): shards split the range
  /// instead of [0, trials), and the merge folds baseline.json in front
  /// of the shard files via scenario::merge_trial_ranges. 0/0 = a
  /// classic full run (and what pre-range manifests parse as).
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_end = 0;
  std::vector<ShardRecord> shards;      ///< one per shard, index-ordered

  std::string manifest_path() const;
  std::string spec_path() const;
  /// Absolute path of a shard's result file.
  std::string output_path(unsigned shard) const;
  /// Absolute path of a shard's launch log (stdout+stderr of attempts).
  std::string log_path(unsigned shard) const;
  /// Absolute path of the cached baseline result a top-up run extends.
  std::string baseline_path() const;

  bool is_topup() const noexcept { return trial_end > trial_begin; }
  bool all_done() const noexcept;
};

/// A fresh manifest for a new run: shard i pending with output
/// shard-<i>.json. Does not touch the filesystem.
RunManifest make_manifest(std::string run_dir, const std::string& scenario,
                          unsigned shard_count);

std::string manifest_to_json(const RunManifest& manifest);
/// Throws std::runtime_error on malformed text (missing keys, bad states,
/// shard indices out of range or duplicated).
RunManifest manifest_from_json(const std::string& text, std::string run_dir);

/// Atomic write of run_dir/manifest.json (tmp file + rename): a kill
/// mid-save never leaves a torn manifest.
void save_manifest(const RunManifest& manifest);

/// Reads run_dir/manifest.json; throws std::runtime_error when the
/// directory holds no (or a corrupt) manifest.
RunManifest load_manifest(std::string run_dir);

}  // namespace lnc::orchestrate
