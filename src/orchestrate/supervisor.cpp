#include "orchestrate/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "local/batch_runner.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace lnc::orchestrate {
namespace {

/// Mutex-guarded view of the shared run state: the manifest (persisted on
/// every transition) and the status stream. Transport runs happen OUTSIDE
/// the lock; only bookkeeping takes it.
class Coordinator {
 public:
  Coordinator(RunManifest& manifest, const SupervisorOptions& options,
              obs::Progress* fleet_progress)
      : manifest_(&manifest),
        options_(&options),
        fleet_progress_(fleet_progress) {}

  /// Claims the next shard needing work; false when none remain (or a
  /// worker hit a coordinator-side error and the run is winding down).
  bool claim(unsigned& shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_.empty()) return false;
    for (ShardRecord& record : manifest_->shards) {
      if (claimed_[record.shard]) continue;
      if (record.state == ShardState::kDone) continue;
      claimed_[record.shard] = true;
      shard = record.shard;
      return true;
    }
    return false;
  }

  /// Records a coordinator-side failure (e.g. the manifest became
  /// unwritable mid-run). Letting the exception escape the worker thread
  /// would std::terminate the whole coordinator; instead the first error
  /// stops further claims and is rethrown after the workers drain.
  void fail(const std::string& what) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_.empty()) error_ = what;
  }

  std::string error() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

  void init_claim_map() {
    claimed_.assign(manifest_->shards.size(), false);
    attempt_start_us_.assign(manifest_->shards.size(), 0);
  }

  void mark_running(unsigned shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ShardRecord& record = manifest_->shards[shard];
    record.state = ShardState::kRunning;
    ++record.attempts;
    record.error.clear();
    attempt_start_us_[shard] = obs::now_micros();
    save_manifest(*manifest_);
    log(shard, record.attempts, "started");
  }

  void mark_done(unsigned shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ShardRecord& record = manifest_->shards[shard];
    record.state = ShardState::kDone;
    record.exit_code = 0;
    record.error.clear();
    save_manifest(*manifest_);
    log(shard, record.attempts, "done");
    record_attempt_span(shard, record.attempts, "done");
    if (fleet_progress_ != nullptr) fleet_progress_->tick(1);
  }

  void mark_failure(unsigned shard, const TransportResult& result,
                    bool permanent, double retry_ms) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ShardRecord& record = manifest_->shards[shard];
    record.state = permanent ? ShardState::kFailed : ShardState::kPending;
    record.exit_code = result.exit_code;
    record.error = result.error;
    save_manifest(*manifest_);
    if (permanent) {
      log(shard, record.attempts, "FAILED permanently (" + result.error +
                                      ")");
    } else {
      log(shard, record.attempts,
          "failed (" + result.error + "); retrying in " +
              std::to_string(static_cast<std::uint64_t>(retry_ms)) + " ms");
    }
    record_attempt_span(shard, record.attempts,
                        permanent ? "failed" : "retrying");
  }

 private:
  /// One grep-stable line per transition:
  ///   launch[scenario]: shard 1/3 attempt 2 done
  void log(unsigned shard, unsigned attempt, const std::string& what) {
    if (options_->status == nullptr) return;
    *options_->status << "launch[" << manifest_->scenario << "]: shard "
                      << shard << "/" << manifest_->shard_count
                      << " attempt " << attempt << " " << what << "\n";
    options_->status->flush();
  }

  /// One "shard-attempt" trace span per dispatch attempt, spanning
  /// mark_running → terminal transition, tagged with the outcome. No-op
  /// unless the process-wide recorder is enabled (lnc_launch --trace).
  void record_attempt_span(unsigned shard, unsigned attempt,
                           const char* outcome) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    if (!recorder.enabled()) return;
    const std::uint64_t start = attempt_start_us_[shard];
    const std::uint64_t end = obs::now_micros();
    recorder.record("shard-attempt", start, end > start ? end - start : 0,
                    obs::span_args("shard", static_cast<std::uint64_t>(shard)) +
                        ", " +
                        obs::span_args("attempt",
                                       static_cast<std::uint64_t>(attempt)) +
                        ", \"outcome\": \"" + outcome + "\"");
  }

  std::mutex mutex_;
  RunManifest* manifest_;
  const SupervisorOptions* options_;
  std::vector<char> claimed_;
  std::vector<std::uint64_t> attempt_start_us_;
  obs::Progress* fleet_progress_;
  std::string error_;
};

}  // namespace

JobSupervisor::JobSupervisor(Transport& transport, SupervisorOptions options)
    : transport_(&transport), options_(std::move(options)) {}

bool JobSupervisor::run(RunManifest& manifest, unsigned sweep_threads) {
  // A coordinator killed mid-attempt leaves shards marked running — their
  // processes are gone (or orphaned and will be overwritten by the
  // re-run's --out); treat them as pending. Done shards whose output file
  // vanished are demoted too: the merge needs the file, not the label.
  for (ShardRecord& record : manifest.shards) {
    if (record.state == ShardState::kRunning) {
      record.state = ShardState::kPending;
    }
    if (record.state == ShardState::kDone &&
        !std::filesystem::exists(manifest.output_path(record.shard))) {
      record.state = ShardState::kPending;
      record.error = "recorded done but output file is missing";
    }
  }
  save_manifest(manifest);

  // Fleet heartbeat: one tick per shard landed. Constructed before the
  // coordinator so every mark_done can tick it; finished after the
  // workers drain so the final line reflects the whole run.
  std::optional<obs::Progress> fleet_progress;
  if (options_.progress && options_.status != nullptr) {
    fleet_progress.emplace("launch:" + manifest.scenario,
                           manifest.shards.size(), "shards", options_.status);
  }

  Coordinator coordinator(manifest, options_,
                          fleet_progress ? &*fleet_progress : nullptr);
  coordinator.init_claim_map();

  unsigned parallel = options_.max_parallel;
  if (parallel == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    parallel = std::max(1u, std::min(manifest.shard_count,
                                     hardware == 0 ? 1u : hardware));
  }
  const unsigned max_attempts = std::max(1u, options_.max_attempts);

  auto run_claimed_jobs = [&]() {
    unsigned shard = 0;
    while (coordinator.claim(shard)) {
      ShardJob job;
      job.shard = shard;
      job.shard_count = manifest.shard_count;
      if (manifest.is_topup()) {
        // Split the manifest's [trial_begin, trial_end) into near-equal
        // contiguous slices: shard_range over the width, shifted by the
        // base. Merging by explicit range reassembles them exactly.
        const local::TrialRange slice = local::shard_range(
            manifest.trial_end - manifest.trial_begin, shard,
            manifest.shard_count);
        job.trial_begin = manifest.trial_begin + slice.begin;
        job.trial_end = manifest.trial_begin + slice.end;
      }
      job.spec_path = manifest.spec_path();
      job.output_path = manifest.output_path(shard);
      job.log_path = manifest.log_path(shard);
      job.threads = sweep_threads;

      double backoff_ms = std::min(options_.backoff_ms, 60'000.0);
      for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        coordinator.mark_running(shard);
        TransportResult result = transport_->run(job, options_.timeout_seconds);
        if (result.ok() &&
            !std::filesystem::exists(job.output_path)) {
          // A zero exit without the result file is still a failure —
          // the merge would come up short otherwise.
          result.exit_code = -1;
          result.error = "exited cleanly but produced no output file";
        }
        if (result.ok()) {
          coordinator.mark_done(shard);
          break;
        }
        // Exit 127 (binary/command not found) and exit 2 (lnc_sweep
        // usage error) cannot be fixed by retrying — fail fast with the
        // right diagnosis instead of burning the backoff budget.
        const bool non_retryable =
            result.launched && !result.timed_out &&
            (result.exit_code == 127 || result.exit_code == 2);
        const bool permanent = attempt == max_attempts || non_retryable;
        coordinator.mark_failure(shard, result, permanent,
                                 permanent ? 0 : backoff_ms);
        if (permanent) break;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff_ms));
        // Capped doubling: a large --retries must poll slowly, not sleep
        // for 2^attempts milliseconds (which overflows to forever).
        backoff_ms = std::min(backoff_ms * 2, 60'000.0);
      }
    }
  };
  // An exception escaping a std::thread entry function would
  // std::terminate the coordinator — convert coordinator-side failures
  // (say, the manifest became unwritable mid-run) into a recorded error
  // that stops further claims and is rethrown once the workers drain.
  auto worker = [&]() {
    try {
      run_claimed_jobs();
    } catch (const std::exception& ex) {
      coordinator.fail(ex.what());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(parallel);
  for (unsigned i = 0; i < parallel; ++i) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();

  if (fleet_progress) fleet_progress->finish();

  const std::string error = coordinator.error();
  if (!error.empty()) {
    throw std::runtime_error("launch coordinator failed: " + error);
  }
  return manifest.all_done();
}

}  // namespace lnc::orchestrate
