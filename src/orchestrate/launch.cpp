#include "orchestrate/launch.h"

#include <filesystem>
#include <stdexcept>

#include "obs/trace.h"
#include "scenario/spec_json.h"
#include "util/file_util.h"

namespace lnc::orchestrate {

RunManifest plan_run(const scenario::ScenarioSpec& spec,
                     const std::string& run_dir, unsigned shard_count) {
  if (shard_count == 0) {
    throw std::runtime_error("a run needs at least one shard");
  }
  const std::string error = scenario::validate(spec);
  if (!error.empty()) {
    throw std::runtime_error("invalid scenario '" + spec.name +
                             "': " + error);
  }
  std::filesystem::create_directories(run_dir);
  if (std::filesystem::exists(run_dir + "/manifest.json")) {
    throw std::runtime_error(
        "'" + run_dir + "' already holds a run manifest — resume it (or "
        "pick a fresh directory); restarting in place would discard "
        "completed shards");
  }

  RunManifest manifest = make_manifest(run_dir, spec.name, shard_count);
  const std::string write_error = util::write_file_atomic(
      manifest.spec_path(), scenario::spec_to_json(spec));
  if (!write_error.empty()) {
    throw std::runtime_error("spec freeze failed: " + write_error);
  }
  save_manifest(manifest);
  return manifest;
}

RunManifest plan_topup_run(const scenario::ScenarioSpec& spec,
                           const std::string& run_dir, unsigned shard_count,
                           const scenario::SweepResult& baseline) {
  if (!baseline.complete()) {
    throw std::runtime_error(
        "top-up baseline is incomplete — merge it (or rerun) first");
  }
  if (baseline.trial_end == 0 && !baseline.rows.empty()) {
    throw std::runtime_error(
        "top-up baseline does not declare its trial range (written by a "
        "pre-range binary generation?)");
  }
  if (baseline.trial_begin != 0 || baseline.trial_end >= spec.trials) {
    throw std::runtime_error(
        "top-up baseline covers trials [" +
        std::to_string(baseline.trial_begin) + ", " +
        std::to_string(baseline.trial_end) + ") but the spec asks for " +
        std::to_string(spec.trials) +
        " — nothing to top up (or a non-prefix baseline)");
  }
  // An empty shard slice would degrade to a full `--shard i/k` job (a
  // zero-width range is the "no range" encoding) — forbid more shards
  // than there are trials to compute.
  const std::uint64_t width = spec.trials - baseline.trial_end;
  if (shard_count > width) {
    throw std::runtime_error(
        "top-up computes only " + std::to_string(width) +
        " trial(s); use at most that many shards (asked for " +
        std::to_string(shard_count) + ")");
  }
  RunManifest manifest = plan_run(spec, run_dir, shard_count);
  manifest.trial_begin = baseline.trial_end;
  manifest.trial_end = spec.trials;
  const std::string write_error =
      scenario::write_json_file(manifest.baseline_path(), baseline);
  if (!write_error.empty()) {
    throw std::runtime_error("baseline freeze failed: " + write_error);
  }
  save_manifest(manifest);
  return manifest;
}

LaunchOutcome merge_run(const RunManifest& manifest) {
  const obs::Span merge_span(
      "merge", obs::span_args("shards", static_cast<std::uint64_t>(
                                            manifest.shards.size())));
  LaunchOutcome outcome;
  for (const ShardRecord& record : manifest.shards) {
    if (record.state != ShardState::kDone) {
      outcome.failed_shards.push_back(record.shard);
    }
  }
  if (!outcome.failed_shards.empty()) {
    outcome.error = "not every shard is done; failures never reach the "
                    "merge, so the aggregate stays exact";
    return outcome;
  }
  std::vector<std::string> paths;
  paths.reserve(manifest.shards.size());
  for (const ShardRecord& record : manifest.shards) {
    paths.push_back(manifest.output_path(record.shard));
  }
  try {
    if (manifest.is_topup()) {
      // Baseline first, then the shard slices in trial order (shard i's
      // range precedes shard i+1's by construction), merged by explicit
      // extent.
      std::vector<scenario::SweepResult> parts;
      parts.reserve(paths.size() + 1);
      std::string text;
      const std::string read_error =
          util::read_file(manifest.baseline_path(), text);
      if (!read_error.empty()) {
        throw std::runtime_error("top-up baseline: " + read_error);
      }
      parts.push_back(scenario::sweep_from_json(text, &outcome.warnings));
      for (const std::string& path : paths) {
        std::string shard_text;
        const std::string shard_error = util::read_file(path, shard_text);
        if (!shard_error.empty()) {
          throw std::runtime_error("shard result: " + shard_error);
        }
        std::vector<std::string> file_warnings;
        parts.push_back(
            scenario::sweep_from_json(shard_text, &file_warnings));
        for (const std::string& warning : file_warnings) {
          outcome.warnings.push_back(path + ": " + warning);
        }
      }
      const std::string cannot = scenario::can_merge_trial_ranges(parts);
      if (!cannot.empty()) {
        throw std::runtime_error("cannot merge top-up partitions: " +
                                 cannot);
      }
      outcome.merged = scenario::merge_trial_ranges(parts);
    } else {
      outcome.merged =
          scenario::merge_sweep_files(paths, &outcome.warnings);
    }
  } catch (const std::exception& ex) {
    outcome.error = ex.what();
    return outcome;
  }
  outcome.ok = true;
  return outcome;
}

LaunchOutcome execute_run(RunManifest& manifest, Transport& transport,
                          const SupervisorOptions& options,
                          unsigned sweep_threads) {
  JobSupervisor supervisor(transport, options);
  supervisor.run(manifest, sweep_threads);
  return merge_run(manifest);
}

}  // namespace lnc::orchestrate
