#include "orchestrate/launch.h"

#include <filesystem>
#include <stdexcept>

#include "scenario/spec_json.h"
#include "util/file_util.h"

namespace lnc::orchestrate {

RunManifest plan_run(const scenario::ScenarioSpec& spec,
                     const std::string& run_dir, unsigned shard_count) {
  if (shard_count == 0) {
    throw std::runtime_error("a run needs at least one shard");
  }
  const std::string error = scenario::validate(spec);
  if (!error.empty()) {
    throw std::runtime_error("invalid scenario '" + spec.name +
                             "': " + error);
  }
  std::filesystem::create_directories(run_dir);
  if (std::filesystem::exists(run_dir + "/manifest.json")) {
    throw std::runtime_error(
        "'" + run_dir + "' already holds a run manifest — resume it (or "
        "pick a fresh directory); restarting in place would discard "
        "completed shards");
  }

  RunManifest manifest = make_manifest(run_dir, spec.name, shard_count);
  const std::string write_error = util::write_file_atomic(
      manifest.spec_path(), scenario::spec_to_json(spec));
  if (!write_error.empty()) {
    throw std::runtime_error("spec freeze failed: " + write_error);
  }
  save_manifest(manifest);
  return manifest;
}

LaunchOutcome merge_run(const RunManifest& manifest) {
  LaunchOutcome outcome;
  for (const ShardRecord& record : manifest.shards) {
    if (record.state != ShardState::kDone) {
      outcome.failed_shards.push_back(record.shard);
    }
  }
  if (!outcome.failed_shards.empty()) {
    outcome.error = "not every shard is done; failures never reach the "
                    "merge, so the aggregate stays exact";
    return outcome;
  }
  std::vector<std::string> paths;
  paths.reserve(manifest.shards.size());
  for (const ShardRecord& record : manifest.shards) {
    paths.push_back(manifest.output_path(record.shard));
  }
  try {
    outcome.merged = scenario::merge_sweep_files(paths, &outcome.warnings);
  } catch (const std::exception& ex) {
    outcome.error = ex.what();
    return outcome;
  }
  outcome.ok = true;
  return outcome;
}

LaunchOutcome execute_run(RunManifest& manifest, Transport& transport,
                          const SupervisorOptions& options,
                          unsigned sweep_threads) {
  JobSupervisor supervisor(transport, options);
  supervisor.run(manifest, sweep_threads);
  return merge_run(manifest);
}

}  // namespace lnc::orchestrate
