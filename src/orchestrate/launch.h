// Whole-run orchestration: spec in, bit-identical merged SweepResult out.
//
//   plan_run    — freeze a validated spec into a fresh run directory
//                 (spec.json + manifest.json, every shard pending);
//   execute_run — supervise the manifest's jobs over a Transport
//                 (orchestrate/supervisor.h), then gather;
//   merge_run   — read the shard result files of a fully-done manifest
//                 and merge them (scenario::merge_sweep_files), exactly
//                 what `lnc_sweep --merge` of the same files would
//                 produce — bit-identical to the unsharded run.
//
// lnc_launch drives these; tests/orchestrate_test.cpp asserts the
// end-to-end identity and the resume semantics.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "orchestrate/manifest.h"
#include "orchestrate/supervisor.h"
#include "orchestrate/transport.h"
#include "scenario/sweep.h"

namespace lnc::orchestrate {

/// Creates the run directory (parents included), writes the frozen spec
/// and a fresh all-pending manifest, and returns it. Throws when the spec
/// does not validate, when the directory already holds a manifest (resume
/// instead — silently restarting would discard completed shards), or on
/// I/O failure. shard_count must be >= 1.
RunManifest plan_run(const scenario::ScenarioSpec& spec,
                     const std::string& run_dir, unsigned shard_count);

/// Plans a TOP-UP run: the fleet computes only trials
/// [baseline_trials, spec.trials) of `spec`, split into shard_count
/// contiguous ranges, and the merge folds the cached `baseline` result
/// (frozen as baseline.json in the run directory) in front of the shard
/// outputs via scenario::merge_trial_ranges — bit-identical to a cold
/// full-width fleet run. `baseline` must be a complete result covering
/// [0, baseline_trials) with baseline_trials < spec.trials, and `spec`
/// must be the baseline's own spec at the raised trial count (same seed
/// — the cache key's canonical one). Same directory rules as plan_run;
/// resume works unchanged (baseline.json rides in the run directory).
RunManifest plan_topup_run(const scenario::ScenarioSpec& spec,
                           const std::string& run_dir, unsigned shard_count,
                           const scenario::SweepResult& baseline);

struct LaunchOutcome {
  bool ok = false;  ///< every shard done and the merge succeeded
  scenario::SweepResult merged;            ///< meaningful when ok
  std::vector<std::string> warnings;       ///< shard-file parse warnings
  std::vector<unsigned> failed_shards;     ///< permanently failed shards
  std::string error;  ///< merge-stage failure description (empty when ok)
};

/// Supervises every unfinished shard, then merges. `sweep_threads` is the
/// per-shard `lnc_sweep --threads` value (thread counts cannot change the
/// numbers — the merge is exact either way).
LaunchOutcome execute_run(RunManifest& manifest, Transport& transport,
                          const SupervisorOptions& options,
                          unsigned sweep_threads = 1);

/// Gather-only: merges the output files of an already-done manifest.
LaunchOutcome merge_run(const RunManifest& manifest);

}  // namespace lnc::orchestrate
