// Order patterns of identity assignments.
//
// An order-invariant algorithm (paper, section 2.1.1) may use only the
// relative order of the identities in a node's view, never their values.
// This module extracts rank patterns, constructs order-preserving
// re-assignments (the probe used to *verify* order invariance, Claim 1 /
// experiment E5), and canonicalizes identities to ranks (the A -> A'
// transformation of Appendix A with the identity universe U = {1, 2, ...}).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ident/identity.h"

namespace lnc::ident {

/// Rank vector: rank_of[i] = |{ j : values[j] < values[i] }|. With distinct
/// values this is a permutation of 0..n-1 capturing exactly the order
/// pattern.
std::vector<std::size_t> rank_pattern(std::span<const Identity> values);

/// True when `a` and `b` induce the same ordering (same rank pattern).
bool same_order(std::span<const Identity> a, std::span<const Identity> b);

/// Replaces each identity by 1 + its rank: the canonical representative of
/// its order class. An algorithm pre-composed with this map is
/// order-invariant by construction.
std::vector<Identity> canonical_ranks(std::span<const Identity> values);

/// An order-preserving random re-assignment: maps the sorted identities to
/// a strictly increasing random sequence in [1, ceiling]. Requires
/// ceiling >= values.size(). Deterministic in `seed`.
std::vector<Identity> order_preserving_remap(std::span<const Identity> values,
                                             Identity ceiling,
                                             std::uint64_t seed);

/// Applies canonical_ranks to an IdAssignment.
IdAssignment canonicalize(const IdAssignment& ids);

}  // namespace lnc::ident
