#include "ident/identity.h"

#include <algorithm>
#include <unordered_set>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::ident {

IdAssignment::IdAssignment(std::vector<Identity> ids) : ids_(std::move(ids)) {
  std::unordered_set<Identity> seen;
  seen.reserve(ids_.size());
  for (Identity id : ids_) {
    LNC_EXPECTS(id > 0);
    const bool inserted = seen.insert(id).second;
    LNC_EXPECTS(inserted);
  }
}

Identity IdAssignment::max_identity() const {
  LNC_EXPECTS(!ids_.empty());
  return *std::max_element(ids_.begin(), ids_.end());
}

Identity IdAssignment::min_identity() const {
  LNC_EXPECTS(!ids_.empty());
  return *std::min_element(ids_.begin(), ids_.end());
}

graph::NodeId IdAssignment::index_of(Identity id) const noexcept {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return static_cast<graph::NodeId>(i);
  }
  return graph::kInvalidNode;
}

IdAssignment IdAssignment::shifted(Identity offset) const {
  std::vector<Identity> shifted_ids(ids_);
  for (Identity& id : shifted_ids) id += offset;
  return IdAssignment(std::move(shifted_ids));
}

IdAssignment consecutive(graph::NodeId n, Identity start) {
  LNC_EXPECTS(start > 0);
  std::vector<Identity> ids(n);
  for (graph::NodeId i = 0; i < n; ++i) ids[i] = start + i;
  return IdAssignment(std::move(ids));
}

IdAssignment random_permutation(graph::NodeId n, std::uint64_t seed,
                                Identity start) {
  LNC_EXPECTS(start > 0);
  std::vector<Identity> ids(n);
  for (graph::NodeId i = 0; i < n; ++i) ids[i] = start + i;
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x706572D0ULL));
  for (std::size_t i = ids.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(ids[i - 1], ids[j]);
  }
  return IdAssignment(std::move(ids));
}

IdAssignment random_sparse(graph::NodeId n, Identity low, Identity high,
                           std::uint64_t seed) {
  LNC_EXPECTS(low > 0);
  LNC_EXPECTS(high >= low);
  LNC_EXPECTS(high - low + 1 >= n);
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x73706172ULL));
  std::unordered_set<Identity> chosen;
  std::vector<Identity> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    const Identity candidate = low + rng.next_below(high - low + 1);
    if (chosen.insert(candidate).second) ids.push_back(candidate);
  }
  return IdAssignment(std::move(ids));
}

}  // namespace lnc::ident
