#include "ident/order.h"

#include <algorithm>
#include <numeric>

#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::ident {

std::vector<std::size_t> rank_pattern(std::span<const Identity> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<std::size_t> ranks(values.size());
  for (std::size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

bool same_order(std::span<const Identity> a, std::span<const Identity> b) {
  if (a.size() != b.size()) return false;
  return rank_pattern(a) == rank_pattern(b);
}

std::vector<Identity> canonical_ranks(std::span<const Identity> values) {
  const std::vector<std::size_t> ranks = rank_pattern(values);
  std::vector<Identity> canonical(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    canonical[i] = static_cast<Identity>(ranks[i] + 1);
  }
  return canonical;
}

std::vector<Identity> order_preserving_remap(std::span<const Identity> values,
                                             Identity ceiling,
                                             std::uint64_t seed) {
  const std::size_t n = values.size();
  LNC_EXPECTS(ceiling >= n);
  // Choose n distinct values in [1, ceiling] (Floyd-style via set emulation
  // with sort/unique over oversampling is wasteful; use selection sampling).
  rand::SplitMix64 rng(rand::mix_keys(seed, 0x6F72646572ULL));
  std::vector<Identity> chosen;
  chosen.reserve(n);
  // Selection sampling (Knuth 3.4.2 S): scan a virtual [1, ceiling] range.
  // When ceiling is huge, fall back to rejection sampling on a hash set.
  if (ceiling <= 4 * n + 16) {
    std::size_t needed = n;
    for (Identity value = 1; value <= ceiling && needed > 0; ++value) {
      const Identity remaining = ceiling - value + 1;
      if (rng.next_below(remaining) < needed) {
        chosen.push_back(value);
        --needed;
      }
    }
  } else {
    std::vector<Identity> pool;
    pool.reserve(2 * n);
    while (pool.size() < n) {
      pool.clear();
      for (std::size_t i = 0; i < 2 * n; ++i) {
        pool.push_back(1 + rng.next_below(ceiling));
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    }
    chosen.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n));
  }
  LNC_ASSERT(chosen.size() == n);
  // chosen is sorted ascending; assign chosen[rank(i)] to position i.
  const std::vector<std::size_t> ranks = rank_pattern(values);
  std::vector<Identity> remapped(n);
  for (std::size_t i = 0; i < n; ++i) remapped[i] = chosen[ranks[i]];
  return remapped;
}

IdAssignment canonicalize(const IdAssignment& ids) {
  return IdAssignment(canonical_ranks(ids.raw()));
}

}  // namespace lnc::ident
