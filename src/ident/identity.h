// Identity assignments (paper, section 2.1.1): every node carries a
// positive integer identity; identities in one network are pairwise
// distinct but otherwise adversarial and unbounded.
//
// The unboundedness matters: Claim 2 requires hard instances with all
// identities above an arbitrary threshold Imin, and Theorem 1's glue
// concatenates instances whose identity ranges must not overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace lnc::ident {

/// A node identity. 64-bit: the model allows unbounded identities; the
/// experiments never exhaust this range.
using Identity = std::uint64_t;

/// Pairwise-distinct positive identities, indexed by graph node index.
class IdAssignment {
 public:
  IdAssignment() = default;

  /// Takes ownership; validates positivity and pairwise distinctness.
  explicit IdAssignment(std::vector<Identity> ids);

  Identity of(graph::NodeId v) const noexcept { return ids_[v]; }
  Identity operator[](graph::NodeId v) const noexcept { return ids_[v]; }

  std::size_t size() const noexcept { return ids_.size(); }
  bool empty() const noexcept { return ids_.empty(); }

  const std::vector<Identity>& raw() const noexcept { return ids_; }

  Identity max_identity() const;
  Identity min_identity() const;

  /// Node index holding a given identity, or kInvalidNode.
  graph::NodeId index_of(Identity id) const noexcept;

  /// Returns a copy with every identity shifted by `offset` (used to move a
  /// hard instance's identities above Imin, Claim 2).
  IdAssignment shifted(Identity offset) const;

 private:
  std::vector<Identity> ids_;
};

/// Identities 1..n in node-index order — the paper's Corollary-1 hard
/// instance: "the cycle C_n where adjacent nodes are given consecutive
/// identities from 1 to n".
IdAssignment consecutive(graph::NodeId n, Identity start = 1);

/// A uniformly random permutation of {start, ..., start+n-1}.
IdAssignment random_permutation(graph::NodeId n, std::uint64_t seed,
                                Identity start = 1);

/// Random distinct identities drawn from [low, high] (sparse, adversarial
/// spacing). Requires high - low + 1 >= n.
IdAssignment random_sparse(graph::NodeId n, Identity low, Identity high,
                           std::uint64_t seed);

}  // namespace lnc::ident
