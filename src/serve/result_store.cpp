#include "serve/result_store.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "scenario/spec_json.h"
#include "util/build_info.h"
#include "util/file_util.h"

namespace lnc::serve {

std::string entry_to_json(const CacheEntry& entry) {
  // The embedded spec/result blobs end with '\n' (their file forms);
  // trim so the entry stays a single readable document.
  auto trimmed = [](std::string text) {
    while (!text.empty() && (text.back() == '\n' || text.back() == ' ')) {
      text.pop_back();
    }
    return text;
  };
  std::ostringstream result_os;
  scenario::write_json(result_os, entry.result);
  std::ostringstream os;
  os << "{\"key\": \"" << entry.key
     << "\", \"seed_stream_epoch\": " << entry.seed_stream_epoch
     << ", \"build_rev\": \"" << entry.build_rev
     << "\", \"spec\": " << trimmed(scenario::spec_to_json(entry.spec))
     << ", \"result\": " << trimmed(result_os.str()) << "}\n";
  return os.str();
}

CacheEntry entry_from_json(const std::string& text,
                           std::vector<std::string>* warnings) {
  const scenario::Json root = scenario::Json::parse(text);
  CacheEntry entry;
  entry.key = root.at("key").as_string();
  entry.seed_stream_epoch = root.at("seed_stream_epoch").as_uint64();
  if (root.has("build_rev")) entry.build_rev = root.at("build_rev").as_string();
  entry.spec = scenario::spec_from_json(root.at("spec"));
  entry.result = scenario::sweep_from_json(root.at("result"), warnings);
  return entry;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  const std::filesystem::path root(dir_);
  if (std::filesystem::exists(root, ec)) {
    if (!std::filesystem::is_directory(root, ec)) {
      throw std::runtime_error("cache path '" + dir_ +
                               "' exists but is not a directory");
    }
  } else {
    std::filesystem::create_directories(root, ec);
    if (ec) {
      throw std::runtime_error("cannot create cache directory '" + dir_ +
                               "': " + ec.message());
    }
  }
}

std::string ResultStore::path_for(const CacheKey& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<CacheEntry> ResultStore::lookup(const CacheKey& key,
                                              std::string* diagnostic) const {
  auto miss = [&](const std::string& why) -> std::optional<CacheEntry> {
    if (diagnostic != nullptr) *diagnostic = why;
    return std::nullopt;
  };
  const std::string path = path_for(key);
  std::string text;
  {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return miss("no entry");
  }
  const std::string read_error = util::read_file(path, text);
  if (!read_error.empty()) return miss(read_error);
  CacheEntry entry;
  try {
    entry = entry_from_json(text, nullptr);
  } catch (const std::exception& ex) {
    return miss("corrupt entry '" + path + "': " + ex.what());
  }
  // Defense in depth: the epoch already lives in the key preimage, so a
  // stale-epoch entry should be unreachable — but a hand-copied or
  // renamed file must still fail closed, with the reason on record.
  if (entry.seed_stream_epoch != util::seed_stream_epoch()) {
    return miss("entry '" + path + "' was written at seed-stream epoch " +
                std::to_string(entry.seed_stream_epoch) +
                " but this binary is at epoch " +
                std::to_string(util::seed_stream_epoch()));
  }
  if (entry.key != key) {
    return miss("entry '" + path + "' records key " + entry.key +
                " (file renamed?)");
  }
  if (cache_key(entry.spec) != key) {
    return miss("entry '" + path +
                "' hashes to a different key than its file name — spec "
                "canonicalization changed without an epoch bump?");
  }
  if (!entry.result.complete()) {
    return miss("entry '" + path + "' holds an incomplete result");
  }
  if (entry.result.trial_end != entry.spec.trials ||
      entry.result.trial_begin != 0) {
    return miss("entry '" + path + "' covers trials [" +
                std::to_string(entry.result.trial_begin) + ", " +
                std::to_string(entry.result.trial_end) +
                ") but its spec declares " +
                std::to_string(entry.spec.trials));
  }
  return entry;
}

std::string ResultStore::store(CacheEntry entry) const {
  if (!entry.result.complete()) {
    return "refusing to cache an incomplete result for key " + entry.key;
  }
  if (entry.result.trial_begin != 0 ||
      entry.result.trial_end != entry.spec.trials) {
    return "refusing to cache: result covers trials [" +
           std::to_string(entry.result.trial_begin) + ", " +
           std::to_string(entry.result.trial_end) +
           ") but the entry spec declares " +
           std::to_string(entry.spec.trials);
  }
  entry.seed_stream_epoch = util::seed_stream_epoch();
  entry.build_rev = util::build_rev();
  return util::write_file_atomic(path_for(entry.key), entry_to_json(entry));
}

}  // namespace lnc::serve
