// Content-addressed cache keys for sweep results (ROADMAP "serving
// tier").
//
// The key is SHA-256 over a versioned preamble plus the CANONICAL JSON
// of the spec's cache normal form (scenario::cache_normal_form — trials,
// seed, labels and backend stripped; see that header for why). Because
// spec_to_json emits fields in a fixed order, params through an ordered
// map, and doubles at full round-trip precision, two specs describe the
// same curve iff their canonical bytes — and hence their keys — are
// equal. The preamble bakes in util::kSeedStreamEpoch, so a seed-stream
// change orphans every old entry instead of merging wrong bits into new
// runs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "scenario/scenario.h"

namespace lnc::serve {

/// A cache key: 64 lowercase hex characters (SHA-256). Doubles as the
/// entry's file name stem in ResultStore.
using CacheKey = std::string;

/// The key for a spec's curve. Any trials/seed/name/doc/backend value
/// maps to the same key; any semantic change (topology, language,
/// construction, decider, params, n-grid, workload, statistic, success
/// side, exec mode) maps to a different one.
CacheKey cache_key(const scenario::ScenarioSpec& spec);

/// The exact bytes cache_key hashes — exposed for tests and for
/// `lnc_serve --explain`-style debugging of key mismatches.
std::string cache_key_preimage(const scenario::ScenarioSpec& spec);

/// Self-contained SHA-256 (FIPS 180-4), returned as lowercase hex. No
/// external crypto dependency; this is content addressing, not
/// security.
std::string sha256_hex(const std::string& bytes);

}  // namespace lnc::serve
