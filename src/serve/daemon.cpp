#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "scenario/presets.h"
#include "scenario/spec_json.h"
#include "util/build_info.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace lnc::serve {
namespace {

std::string error_response(const std::string& message) {
  return "{\"status\": \"error\", \"error\": \"" +
         util::json_escape(message) + "\"}\n";
}

std::string string_array_json(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + util::json_escape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

scenario::ScenarioSpec spec_from_request(const scenario::Json& root) {
  if (root.has("scenario") == root.has("spec")) {
    throw std::runtime_error(
        "request must carry exactly one of 'scenario' (preset name) or "
        "'spec' (spec object)");
  }
  scenario::ScenarioSpec spec;
  if (root.has("scenario")) {
    const std::string& name = root.at("scenario").as_string();
    const scenario::ScenarioSpec* preset = scenario::find_preset(name);
    if (preset == nullptr) {
      throw std::runtime_error("unknown scenario '" + name + "'");
    }
    spec = *preset;
  } else {
    spec = scenario::spec_from_json(root.at("spec"));
  }
  for (const auto& [key, value] : root.as_object()) {
    if (key == "scenario" || key == "spec") continue;
    if (key == "trials") {
      spec.trials = value.as_uint64();
    } else if (key == "seed") {
      spec.base_seed = value.as_uint64();
    } else if (key == "n") {
      spec.n_grid.clear();
      for (const scenario::Json& n : value.as_array()) {
        spec.n_grid.push_back(n.as_uint64());
      }
    } else if (key == "params") {
      for (const auto& [param, number] : value.as_object()) {
        spec.params[param] = number.as_number();
      }
    } else {
      throw std::runtime_error("unknown request key '" + key + "'");
    }
  }
  return spec;
}

}  // namespace

std::string handle_request_line(SweepService& service,
                                const std::string& line) {
  QueryOutcome outcome;
  try {
    const scenario::Json root = scenario::Json::parse(line);
    // Introspection op, dispatched BEFORE the spec path (which rejects
    // unknown keys): {"op": "stats"} returns the daemon's monotonic
    // query totals plus its latency-metric registry, and runs no trials.
    if (root.has("op")) {
      const std::string& op = root.at("op").as_string();
      if (op != "stats") {
        throw std::runtime_error("unknown op '" + op +
                                 "' (the only op is 'stats')");
      }
      if (root.as_object().size() != 1) {
        throw std::runtime_error(
            "a stats request carries no keys besides 'op'");
      }
      const SweepService::Stats stats = service.stats();
      std::ostringstream os;
      os << "{\"status\": \"ok\", \"stats\": {\"queries\": " << stats.queries
         << ", \"hits\": " << stats.hits << ", \"topups\": " << stats.topups
         << ", \"misses\": " << stats.misses
         << ", \"trials_computed\": " << stats.trials_computed
         << ", \"trials_reused\": " << stats.trials_reused << "}"
         << ", \"metrics\": " << service.metrics_snapshot().to_json()
         << ", \"identity\": {\"seed_stream_epoch\": "
         << util::seed_stream_epoch() << ", \"build_rev\": \""
         << util::json_escape(util::build_rev()) << "\"}}\n";
      return os.str();
    }
    outcome = service.query(spec_from_request(root));
  } catch (const std::exception& ex) {
    return error_response(ex.what());
  }
  std::ostringstream result_os;
  scenario::write_json(result_os, outcome.result);
  std::string result_json = result_os.str();
  while (!result_json.empty() && result_json.back() == '\n') {
    result_json.pop_back();
  }
  std::ostringstream os;
  os << "{\"status\": \"ok\", \"cache\": {\"outcome\": \""
     << to_string(outcome.outcome)
     << "\", \"trials_reused\": " << outcome.trials_reused
     << ", \"trials_computed\": " << outcome.trials_computed
     << ", \"key\": \"" << outcome.key << "\"}"
     << ", \"identity\": {\"seed_stream_epoch\": "
     << util::seed_stream_epoch() << ", \"build_rev\": \""
     << util::json_escape(util::build_rev()) << "\"}"
     << ", \"summary\": " << string_array_json(summary_lines(outcome.result))
     << ", \"notes\": " << string_array_json(outcome.notes)
     << ", \"result\": " << result_json << "}\n";
  return os.str();
}

namespace {

std::atomic<bool> g_stop{false};

void stop_handler(int) { g_stop.store(true); }

// write(2) the whole buffer; short writes retried.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_unix(const std::string& path, std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(AF_UNIX) failed";
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path '" + path + "' exceeds the AF_UNIX limit (" +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    }
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // A previous daemon's leftover socket file would make bind fail; a
  // LIVE daemon still answers on its bound inode, so removing the name
  // only orphans truly dead sockets.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on unix socket '" + path +
               "': " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(AF_INET) failed";
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // Loopback only: the daemon is a local serving tier, not an open
  // network service — no auth layer exists.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

// One connection: read request lines, answer each, until EOF or the
// request budget trips. The 1-second receive timeout keeps the thread
// responsive to a daemon-wide stop even under an idle client.
void serve_connection(int fd, SweepService& service,
                      std::atomic<std::uint64_t>& served,
                      std::uint64_t max_requests) {
  timeval timeout{};
  timeout.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string buffer;
  char chunk[4096];
  while (!g_stop.load()) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      if (!write_all(fd, handle_request_line(service, line))) break;
      const std::uint64_t count = served.fetch_add(1) + 1;
      if (max_requests != 0 && count >= max_requests) {
        g_stop.store(true);
        break;
      }
      continue;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // receive timeout — re-check the stop flag
      }
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

}  // namespace

int run_daemon(const DaemonOptions& options, std::string* error) {
  if (options.socket_path.empty()) {
    if (error != nullptr) *error = "a --socket path is required";
    return 2;
  }
  SweepService service(options.cache_dir, {options.threads});

  std::vector<int> listeners;
  const int unix_fd = listen_unix(options.socket_path, error);
  if (unix_fd < 0) return 2;
  listeners.push_back(unix_fd);
  if (options.tcp_port != 0) {
    const int tcp_fd = listen_tcp(options.tcp_port, error);
    if (tcp_fd < 0) {
      ::close(unix_fd);
      ::unlink(options.socket_path.c_str());
      return 2;
    }
    listeners.push_back(tcp_fd);
  }

  // A client that vanishes mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  g_stop.store(false);
  std::signal(SIGINT, stop_handler);
  std::signal(SIGTERM, stop_handler);

  if (options.status != nullptr) {
    *options.status << "lnc_serve: listening on " << options.socket_path;
    if (options.tcp_port != 0) {
      *options.status << " and 127.0.0.1:" << options.tcp_port;
    }
    *options.status << " (cache " << service.store().dir() << ", "
                    << util::build_identity() << ")" << std::endl;
  }

  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> workers;
  while (!g_stop.load()) {
    std::vector<pollfd> fds;
    fds.reserve(listeners.size());
    for (const int fd : listeners) fds.push_back({fd, POLLIN, 0});
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (const pollfd& pfd : fds) {
      if ((pfd.revents & POLLIN) == 0) continue;
      const int client = ::accept(pfd.fd, nullptr, nullptr);
      if (client < 0) continue;
      workers.emplace_back(serve_connection, client, std::ref(service),
                           std::ref(served), options.max_requests);
    }
  }

  for (const int fd : listeners) ::close(fd);
  for (std::thread& worker : workers) worker.join();
  ::unlink(options.socket_path.c_str());

  if (options.status != nullptr) {
    const SweepService::Stats stats = service.stats();
    *options.status << "lnc_serve: served " << stats.queries << " queries ("
                    << stats.hits << " hits, " << stats.topups
                    << " top-ups, " << stats.misses << " misses; "
                    << stats.trials_reused << " trials reused, "
                    << stats.trials_computed << " computed)" << std::endl;
  }
  return 0;
}

bool query_daemon(const Endpoint& endpoint, const std::string& line,
                  double connect_timeout_seconds, std::string& response,
                  std::string& error) {
  util::Timer timer;
  int fd = -1;
  // Retry the connect until the deadline: a client launched alongside
  // the daemon (CI smoke) connects as soon as the socket binds, without
  // sleeps in the script.
  while (true) {
    if (!endpoint.socket_path.empty()) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.socket_path.size() >= sizeof(addr.sun_path)) {
          error = "socket path too long";
          ::close(fd);
          return false;
        }
        std::strncpy(addr.sun_path, endpoint.socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          break;
        }
        ::close(fd);
        fd = -1;
      }
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          break;
        }
        ::close(fd);
        fd = -1;
      }
    }
    if (timer.elapsed_seconds() > connect_timeout_seconds) {
      error = "could not connect within " +
              std::to_string(connect_timeout_seconds) + "s";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::string request = line;
  if (request.empty() || request.back() != '\n') request += '\n';
  if (!write_all(fd, request)) {
    error = "send failed";
    ::close(fd);
    return false;
  }
  response.clear();
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      error = "receive failed";
      ::close(fd);
      return false;
    }
    if (n == 0) {
      error = "connection closed before a full response line";
      ::close(fd);
      return false;
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  response.erase(response.find('\n'));
  return true;
}

}  // namespace lnc::serve
