// The serving tier's brain: answer "the curve for this spec, at T
// trials" from the ResultStore when possible, compute ONLY the missing
// trial range when not, and write the improved entry back.
//
// Three outcomes per query:
//   hit   — a cached entry already covers >= T trials; zero trials run.
//           (Aggregates cannot extract a prefix, so a T < T' query is
//           served the cached T'-trial superset — strictly tighter
//           error bars than asked for.)
//   topup — an entry covers T' < T; exactly [T', T) runs and merges
//           into the cached accumulators. Bit-identical to a cold run
//           at T (tests/serve_test.cpp asserts the exact bits).
//   miss  — no usable entry; [0, T) runs cold and seeds the cache.
//
// Concurrent identical queries share one computation: queries serialize
// on a per-key mutex, so the second of two racing misses finds the
// first's entry and becomes a hit. Distinct keys proceed in parallel.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "serve/result_store.h"
#include "stats/threadpool.h"

namespace lnc::serve {

enum class CacheOutcome { kMiss, kHit, kTopUp };
const char* to_string(CacheOutcome outcome) noexcept;

struct ServiceOptions {
  /// Worker threads per computed sweep: 0 = hardware concurrency,
  /// 1 = sequential in the calling thread.
  unsigned threads = 0;
};

struct QueryOutcome {
  CacheOutcome outcome = CacheOutcome::kMiss;
  CacheKey key;
  std::uint64_t trials_reused = 0;    ///< trials served from the store
  std::uint64_t trials_computed = 0;  ///< trials actually run
  /// The seed the served result was computed under. The key excludes
  /// the seed, so this is the ENTRY's canonical seed — the first
  /// writer's — which may differ from the query's.
  std::uint64_t served_seed = 0;
  bool seed_differs = false;  ///< served_seed != the query's base_seed
  scenario::SweepResult result;
  /// Human-readable events worth surfacing (store diagnostics, seed
  /// divergence, write-back failures). Never fatal.
  std::vector<std::string> notes;
};

class SweepService {
 public:
  /// Throws std::runtime_error when the cache directory is unusable
  /// (ResultStore's constructor contract).
  SweepService(std::string cache_dir, ServiceOptions options = {});

  /// Answers `spec` (which must pass scenario::validate — throws
  /// std::runtime_error with the validation error otherwise). Thread
  /// safe; identical concurrent queries share one computation.
  QueryOutcome query(const scenario::ScenarioSpec& spec);

  const ResultStore& store() const noexcept { return store_; }

  /// Monotonic totals across all queries — the daemon's telemetry and
  /// the repeated-query tests' "no trials were rerun" witness.
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    std::uint64_t topups = 0;
    std::uint64_t misses = 0;
    std::uint64_t trials_computed = 0;
    std::uint64_t trials_reused = 0;
  };
  Stats stats() const;

  /// Latency metrics accumulated across queries (store-lookup and
  /// whole-query wall time histograms) — the registry behind the
  /// daemon's {"op": "stats"} response. Always collected (one observe
  /// per query; negligible next to the query itself) and timing-only:
  /// never part of any served result.
  obs::MetricsRegistry metrics_snapshot() const;

 private:
  /// The per-key serialization point for in-flight deduplication.
  std::mutex& key_mutex(const CacheKey& key);

  ResultStore store_;
  ServiceOptions options_;
  std::optional<stats::ThreadPool> pool_;

  std::mutex key_mutexes_guard_;
  std::map<CacheKey, std::unique_ptr<std::mutex>> key_mutexes_;

  mutable std::mutex stats_guard_;
  Stats stats_;
  obs::MetricsRegistry metrics_;  ///< guarded by stats_guard_
};

}  // namespace lnc::serve
