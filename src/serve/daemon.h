// The long-lived lnc_serve daemon: line-delimited JSON over a Unix
// domain socket (and optionally loopback TCP), one request per line,
// one response line per request.
//
// Request (unknown keys rejected; exactly one of scenario/spec):
//   {"scenario": "<preset name>" | "spec": {<scenario spec object>},
//    "trials": T, "seed": S, "n": [16, 64], "params": {"colors": 3}}
// trials/seed/n/params override the named preset or embedded spec.
//
// Introspection (runs no trials):
//   {"op": "stats"}
// answers {"status": "ok", "stats": {"queries": N, "hits": H,
//   "topups": U, "misses": M, "trials_computed": C, "trials_reused": R},
//   "metrics": {<latency histograms: cache_lookup_seconds,
//   query_seconds>}, "identity": {...}}.
//
// Response, one line:
//   {"status": "ok",
//    "cache": {"outcome": "hit|topup|miss", "trials_reused": R,
//              "trials_computed": C, "key": "<sha256>"},
//    "identity": {"seed_stream_epoch": E, "build_rev": "<rev>"},
//    "summary": ["value[...]: mean=... stddev=... trials=...", ...],
//    "notes": [...], "result": {<sweep result JSON>}}
// or {"status": "error", "error": "<message>"}.
//
// Connections are handled on their own threads; SweepService's per-key
// locking makes concurrent identical queries share one computation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/service.h"

namespace lnc::serve {

/// Answers one request line with one response line (newline-terminated).
/// Never throws: malformed requests become {"status": "error", ...}.
/// Exposed separately from the socket loop so tests can drive the full
/// protocol without sockets.
std::string handle_request_line(SweepService& service,
                                const std::string& line);

struct DaemonOptions {
  std::string socket_path;    ///< Unix socket (required)
  int tcp_port = 0;           ///< additionally listen on 127.0.0.1:port
  std::string cache_dir;      ///< ResultStore root (required)
  unsigned threads = 0;       ///< per-sweep worker threads (0 = hardware)
  /// Exit after serving this many requests (0 = run until SIGINT /
  /// SIGTERM). Lets CI drive a deterministic start-query-query-exit
  /// cycle without kill/sleep races.
  std::uint64_t max_requests = 0;
  std::ostream* status = nullptr;  ///< progress lines (null = silent)
};

/// Runs the accept loop until a termination signal or the max_requests
/// budget is exhausted. Returns a process exit code; setup failures
/// (unusable socket path, bind/listen errors) report to `error` when
/// non-null and return nonzero.
int run_daemon(const DaemonOptions& options, std::string* error = nullptr);

/// Where a client should connect: exactly one of the two.
struct Endpoint {
  std::string socket_path;
  int tcp_port = 0;
};

/// Sends one request line and returns the one response line (without the
/// trailing newline). Retries the connect until `connect_timeout_seconds`
/// elapses — a client started in the same script as the daemon needs no
/// sleep. Returns false with `error` set on timeout or I/O failure.
bool query_daemon(const Endpoint& endpoint, const std::string& line,
                  double connect_timeout_seconds, std::string& response,
                  std::string& error);

}  // namespace lnc::serve
