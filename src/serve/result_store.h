// Directory-backed store of merged sweep results, addressed by
// serve::CacheKey. One entry per file (`<dir>/<key>.json`), written
// atomically, so concurrent readers/writers on a shared filesystem see
// whole entries or none — the same torn-file contract as shard results.
//
// An entry records the SPEC it was computed from (trials = the covered
// count, seed = the entry's canonical seed) next to the complete merged
// RESULT, plus the writing binary's identity. Lookups re-verify
// everything that could make a stale entry wrong — epoch match, stored
// key vs file name, key recomputed from the embedded spec — and turn
// any mismatch into a MISS with a diagnostic, never into wrong bits.
#pragma once

#include <optional>
#include <string>

#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "serve/cache_key.h"

namespace lnc::serve {

struct CacheEntry {
  CacheKey key;
  std::uint64_t seed_stream_epoch = 0;
  std::string build_rev;  ///< diagnostic only — never part of the key
  /// The spec the result was computed from. Its `trials` is the covered
  /// trial count T' and its `base_seed` the entry's canonical seed: the
  /// key excludes both, so the FIRST writer's seed becomes canonical
  /// for the curve and later queries are served (or topped up) under it.
  scenario::ScenarioSpec spec;
  scenario::SweepResult result;  ///< complete, covering [0, spec.trials)
};

std::string entry_to_json(const CacheEntry& entry);
/// Throws std::runtime_error on malformed input.
CacheEntry entry_from_json(const std::string& text,
                           std::vector<std::string>* warnings = nullptr);

class ResultStore {
 public:
  /// Uses `dir` as the store root, creating it (and parents) if needed.
  /// Throws std::runtime_error when the path exists but is not a
  /// directory or cannot be created.
  explicit ResultStore(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  std::string path_for(const CacheKey& key) const;

  /// Loads and verifies the entry for `key`. Returns nullopt when the
  /// entry is absent OR fails verification (wrong epoch, key mismatch,
  /// incomplete result, parse error) — with the reason appended to
  /// `diagnostic` when non-null. A verification failure never throws:
  /// a corrupt cache degrades to recomputation, not to an outage.
  std::optional<CacheEntry> lookup(const CacheKey& key,
                                   std::string* diagnostic = nullptr) const;

  /// Persists the entry atomically at path_for(entry.key), stamping the
  /// current epoch/build rev. Requires a complete result whose covered
  /// trials equal entry.spec.trials. Returns empty on success, else a
  /// human-readable error.
  std::string store(CacheEntry entry) const;

 private:
  std::string dir_;
};

}  // namespace lnc::serve
