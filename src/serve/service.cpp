#include "serve/service.h"

#include <stdexcept>
#include <utility>

#include "serve/cache_key.h"
#include "util/assert.h"
#include "util/timer.h"

namespace lnc::serve {

const char* to_string(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kTopUp: return "topup";
  }
  return "?";
}

SweepService::SweepService(std::string cache_dir, ServiceOptions options)
    : store_(std::move(cache_dir)), options_(options) {
  if (options_.threads != 1) pool_.emplace(options_.threads);
}

std::mutex& SweepService::key_mutex(const CacheKey& key) {
  // The global lock guards only the map — held for a find/emplace, never
  // across a computation, so distinct keys run concurrently.
  std::lock_guard<std::mutex> guard(key_mutexes_guard_);
  std::unique_ptr<std::mutex>& slot = key_mutexes_[key];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return *slot;
}

SweepService::Stats SweepService::stats() const {
  std::lock_guard<std::mutex> guard(stats_guard_);
  return stats_;
}

obs::MetricsRegistry SweepService::metrics_snapshot() const {
  std::lock_guard<std::mutex> guard(stats_guard_);
  return metrics_;
}

QueryOutcome SweepService::query(const scenario::ScenarioSpec& spec) {
  const std::string invalid = scenario::validate(spec);
  if (!invalid.empty()) {
    throw std::runtime_error("invalid spec: " + invalid);
  }
  QueryOutcome out;
  out.key = cache_key(spec);
  const util::Timer query_timer;

  // In-flight deduplication: identical concurrent queries serialize
  // here, so the loser of a miss race re-reads the winner's entry and
  // becomes a hit instead of repeating the computation.
  std::lock_guard<std::mutex> key_guard(key_mutex(out.key));

  std::string diagnostic;
  const util::Timer lookup_timer;
  std::optional<CacheEntry> entry = store_.lookup(out.key, &diagnostic);
  const double lookup_seconds = lookup_timer.elapsed_seconds();
  if (!entry && diagnostic != "no entry") {
    out.notes.push_back("cache: " + diagnostic);
  }

  if (entry && entry->spec.trials >= spec.trials) {
    // Hit — possibly a superset of what was asked; aggregates cannot
    // surrender a prefix, and more trials only tighten the estimate.
    out.outcome = CacheOutcome::kHit;
    out.trials_reused = entry->spec.trials;
    out.result = entry->result;
    out.served_seed = entry->spec.base_seed;
  } else if (entry) {
    // Top-up: run exactly the missing [T', T) under the ENTRY's spec
    // (its seed is canonical for this key) and merge into the cached
    // accumulators. Per-trial streams depend only on the trial index,
    // so the merge equals a cold run at T bit for bit.
    scenario::ScenarioSpec run_spec = entry->spec;
    run_spec.trials = spec.trials;
    scenario::SweepOptions sweep_options;
    sweep_options.trial_range =
        local::TrialRange{entry->spec.trials, spec.trials};
    sweep_options.pool = pool_ ? &*pool_ : nullptr;
    const scenario::SweepResult delta =
        scenario::run_sweep(scenario::compile(run_spec), sweep_options);
    const scenario::SweepResult parts[] = {entry->result, delta};
    out.outcome = CacheOutcome::kTopUp;
    out.trials_reused = entry->spec.trials;
    out.trials_computed = spec.trials - entry->spec.trials;
    out.result = scenario::merge_trial_ranges(parts);
    out.served_seed = run_spec.base_seed;
    const std::string store_error =
        store_.store({out.key, 0, {}, run_spec, out.result});
    if (!store_error.empty()) {
      out.notes.push_back("cache write-back failed: " + store_error);
    }
  } else {
    // Miss: cold run. The query's own spec (and seed) becomes the
    // entry's canonical form for this key.
    scenario::SweepOptions sweep_options;
    sweep_options.pool = pool_ ? &*pool_ : nullptr;
    out.outcome = CacheOutcome::kMiss;
    out.trials_computed = spec.trials;
    out.result = scenario::run_sweep(scenario::compile(spec), sweep_options);
    out.served_seed = spec.base_seed;
    const std::string store_error =
        store_.store({out.key, 0, {}, spec, out.result});
    if (!store_error.empty()) {
      out.notes.push_back("cache write-back failed: " + store_error);
    }
  }

  out.seed_differs = out.served_seed != spec.base_seed;
  if (out.seed_differs) {
    out.notes.push_back(
        "served from the entry's canonical seed " +
        std::to_string(out.served_seed) + " (query asked for seed " +
        std::to_string(spec.base_seed) +
        "; the cache key deliberately excludes the seed)");
  }

  {
    std::lock_guard<std::mutex> guard(stats_guard_);
    ++stats_.queries;
    if (out.outcome == CacheOutcome::kHit) ++stats_.hits;
    if (out.outcome == CacheOutcome::kTopUp) ++stats_.topups;
    if (out.outcome == CacheOutcome::kMiss) ++stats_.misses;
    stats_.trials_computed += out.trials_computed;
    stats_.trials_reused += out.trials_reused;
    metrics_.observe("cache_lookup_seconds", lookup_seconds);
    metrics_.observe("query_seconds", query_timer.elapsed_seconds());
  }
  return out;
}

}  // namespace lnc::serve
