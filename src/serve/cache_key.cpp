#include "serve/cache_key.h"

#include <algorithm>
#include <cstring>

#include "scenario/spec_json.h"
#include "util/build_info.h"

namespace lnc::serve {
namespace {

// SHA-256 per FIPS 180-4. Straightforward scalar implementation — keys
// are computed once per query over ~300 bytes, nowhere near a hot path.

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256 {
  std::array<std::uint32_t, 8> state = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                        0xa54ff53a, 0x510e527f, 0x9b05688c,
                                        0x1f83d9ab, 0x5be0cd19};
  std::array<std::uint8_t, 64> block{};
  std::size_t block_len = 0;
  std::uint64_t total_bytes = 0;

  void compress() {
    std::array<std::uint32_t, 64> w{};
    for (int i = 0; i < 16; ++i) {
      w[static_cast<std::size_t>(i)] =
          (static_cast<std::uint32_t>(block[4 * i]) << 24) |
          (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
          (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
          static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (std::size_t i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }

  void update(const std::uint8_t* data, std::size_t len) {
    total_bytes += len;
    while (len > 0) {
      const std::size_t take = std::min(len, block.size() - block_len);
      std::memcpy(block.data() + block_len, data, take);
      block_len += take;
      data += take;
      len -= take;
      if (block_len == block.size()) {
        compress();
        block_len = 0;
      }
    }
  }

  std::array<std::uint8_t, 32> finish() {
    const std::uint64_t bit_len = total_bytes * 8;
    const std::uint8_t one = 0x80;
    update(&one, 1);
    const std::uint8_t zero = 0x00;
    while (block_len != 56) update(&zero, 1);
    std::array<std::uint8_t, 8> length_bytes{};
    for (int i = 0; i < 8; ++i) {
      length_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    // update() counts these padding bytes into total_bytes, but bit_len
    // was latched before the first padding byte, so the digest is over
    // the message alone — as the spec requires.
    update(length_bytes.data(), length_bytes.size());
    std::array<std::uint8_t, 32> digest{};
    for (int i = 0; i < 8; ++i) {
      digest[static_cast<std::size_t>(4 * i)] =
          static_cast<std::uint8_t>(state[static_cast<std::size_t>(i)] >> 24);
      digest[static_cast<std::size_t>(4 * i + 1)] =
          static_cast<std::uint8_t>(state[static_cast<std::size_t>(i)] >> 16);
      digest[static_cast<std::size_t>(4 * i + 2)] =
          static_cast<std::uint8_t>(state[static_cast<std::size_t>(i)] >> 8);
      digest[static_cast<std::size_t>(4 * i + 3)] =
          static_cast<std::uint8_t>(state[static_cast<std::size_t>(i)]);
    }
    return digest;
  }
};

}  // namespace

std::string sha256_hex(const std::string& bytes) {
  Sha256 hasher;
  hasher.update(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                bytes.size());
  const std::array<std::uint8_t, 32> digest = hasher.finish();
  static const char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(64);
  for (const std::uint8_t byte : digest) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xF]);
  }
  return hex;
}

std::string cache_key_preimage(const scenario::ScenarioSpec& spec) {
  // The epoch lives in the PREIMAGE, not alongside the key: bumping it
  // changes every key, so stale-epoch entries become unreachable rather
  // than needing an auxiliary validity check on every hit.
  return "lnc-cache-v1 epoch=" +
         std::to_string(util::seed_stream_epoch()) + "\n" +
         scenario::spec_to_json(scenario::cache_normal_form(spec));
}

CacheKey cache_key(const scenario::ScenarioSpec& spec) {
  return sha256_hex(cache_key_preimage(spec));
}

}  // namespace lnc::serve
