// The Theorem-1 gluing construction.
//
// Given instances (H_i, x_i, id_i), i = 1..nu', with chosen anchor nodes
// u_i (Claim 5's nodes), the construction:
//
//   1. picks an edge e_i incident to u_i in H_i,
//   2. subdivides e_i twice, inserting nodes v_i and w_i
//      (u_i — v_i — w_i — z_i along the former edge),
//   3. adds the linking edges {v_i, w_{i+1}} for i < nu' and {v_nu', w_1},
//
// yielding a CONNECTED graph of degree <= max(k, 3) (so the promise F_k
// with k > 2 is preserved), whose identity assignment concatenates the
// pairwise-disjoint id_i and gives the inserted nodes fresh identities
// above every used range; inserted nodes get arbitrary inputs (zero).
//
// Section 5 notes the construction also preserves planarity and
// 2-connectivity; tests/glue_test.cpp checks 2-connectivity directly and
// the degree/connectivity/identity invariants.
#pragma once

#include <span>
#include <vector>

#include "local/instance.h"

namespace lnc::core {

struct GluedInstance {
  local::Instance instance;

  /// part_offset[i] + v is the glued index of part i's node v.
  std::vector<graph::NodeId> part_offset;

  /// Glued indices of the inserted nodes, one pair per part.
  std::vector<graph::NodeId> v_nodes;
  std::vector<graph::NodeId> w_nodes;

  /// Glued indices of the anchors u_i.
  std::vector<graph::NodeId> anchors;

  std::size_t part_count() const noexcept { return part_offset.size(); }

  /// Maps part-local node v of part i to its glued index.
  graph::NodeId to_glued(std::size_t part, graph::NodeId v) const {
    return part_offset[part] + v;
  }
};

/// Glues the parts in a cycle through their anchors. Requirements:
///  * >= 2 parts, pairwise-disjoint identity ranges;
///  * anchors[i] is a node of parts[i] with degree >= 1.
/// The subdivided edge is the one toward the anchor's smallest-index
/// neighbor (any incident edge works for the theorem).
GluedInstance theorem1_glue(std::span<const local::Instance> parts,
                            std::span<const graph::NodeId> anchors);

/// Claim-3 variant: plain disjoint union, no linking (the relaxation that
/// drops connectivity). Identity ranges must be pairwise disjoint.
GluedInstance disjoint_union_instances(std::span<const local::Instance> parts);

}  // namespace lnc::core
