// Experimental infrastructure for Claims 4 and 5 of Theorem 1's proof —
// the machinery that locates, inside each hard instance H_i, a node u_i
// whose far-neighborhood still rejects C's output often enough for the
// glue to boost the failure probability.
//
// Objects, in the paper's notation:
//
//   sigma  in Rand(C): a fixed construction random string (here: a seed);
//          C_sigma is deterministic.
//   sigma' in Rand(D): a fixed decision string.
//   S: a set of mu nodes pairwise at distance > 2(t+t').
//   "D accepts/rejects far from u": verdicts restricted to nodes at
//   distance > t+t' from u.
//   Reject(u, sigma') subset of B(u, t+t'): for a critical string, every
//   rejection happens near u — which makes critical strings for distinct
//   u in S DISJOINT events (the pigeonhole at the heart of Claim 4).
//
// The experiment E8 (bench/bench_critical_strings.cpp) measures all of it.
#pragma once

#include <vector>

#include "decide/evaluate.h"
#include "local/runner.h"
#include "stats/montecarlo.h"

namespace lnc::core {

/// Runs the Monte-Carlo construction algorithm with the fixed string
/// `sigma` (a seed), yielding C_sigma's deterministic output.
local::Labeling run_fixed_construction(
    const local::Instance& inst, const local::RandomizedBallAlgorithm& algo,
    std::uint64_t sigma);

/// Per-node far-acceptance estimates for a FIXED construction string:
/// entry j is  Pr_{sigma'}[ D accepts C_sigma(H) far from S[j] ].
struct Claim4Report {
  std::vector<graph::NodeId> scattered;      ///< the set S
  std::vector<stats::Estimate> far_accept;   ///< indexed like `scattered`
  double p = 0.0;                            ///< decider guarantee param
  /// Claim 4's conclusion: some u in S has far-acceptance < p.
  bool exists_below_p() const;
};

Claim4Report verify_claim4(const local::Instance& inst,
                           std::span<const local::Label> fixed_output,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double p,
                           std::uint64_t trials, std::uint64_t base_seed,
                           const stats::ThreadPool* pool = nullptr);

/// Critical-string accounting over sampled sigma' for a fixed C_sigma:
/// sigma' is critical for u when D_sigma' rejects somewhere but accepts
/// far from u. The proof requires (a) every rejection of a critical string
/// lies inside B(u, t+t'), and (b) no string is critical for two distinct
/// members of S.
struct CriticalStringsReport {
  std::uint64_t trials = 0;
  std::vector<std::uint64_t> critical_for;  ///< per member of S
  std::uint64_t multi_critical = 0;   ///< strings critical for >= 2 nodes
  std::uint64_t escaped_reject = 0;   ///< critical strings with a rejection
                                      ///< outside B(u, t+t') (must be 0)
  bool disjointness_holds() const noexcept {
    return multi_critical == 0 && escaped_reject == 0;
  }
};

CriticalStringsReport verify_critical_strings(
    const local::Instance& inst, std::span<const local::Label> fixed_output,
    const decide::RandomizedDecider& decider,
    std::span<const graph::NodeId> scattered, int exclusion_radius,
    std::uint64_t trials, std::uint64_t base_seed);

/// Claim 5: Pr over BOTH C and D randomness of
///   [ D rejects C(H) far from u ]
/// for each u in S; the claim promises some u reaching beta*(1-p)/mu.
struct Claim5Report {
  std::vector<graph::NodeId> scattered;
  std::vector<stats::Estimate> far_reject;
  double bound = 0.0;  ///< beta * (1 - p) / mu
  bool exists_above_bound() const;

  /// The u maximizing the far-rejection estimate — the anchor the glue
  /// should use for this instance.
  graph::NodeId best_anchor() const;
};

Claim5Report verify_claim5(const local::Instance& inst,
                           const local::RandomizedBallAlgorithm& algo,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double beta, double p,
                           std::uint64_t mu, std::uint64_t trials,
                           std::uint64_t base_seed,
                           const stats::ThreadPool* pool = nullptr);

}  // namespace lnc::core
