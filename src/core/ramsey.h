// Claim 1 / Appendix A: the order-invariant reduction, operationalized.
//
// The appendix proves — via the infinite Ramsey theorem — that for every
// t-round algorithm A under promise F_k there is an infinite identity set
// U such that A's output at the center of any ball depends only on the
// ORDER of the identities, provided they come from U. The order-invariant
// A' then re-identifies every ball with the smallest elements of U.
//
// Infinity is not implementable; what IS implementable, and what the
// argument actually uses, is:
//
//   (1) find_uniform_universe — searches a finite candidate pool for a
//       subset U on which the algorithm's ball outputs are constant per
//       rank pattern (the "monochromatic" set Ramsey guarantees exists in
//       the infinite limit). The search is the natural greedy refinement:
//       process patterns one at a time, keep the largest color class.
//       For algorithms with structured identity use (e.g. "output id mod
//       m") this recovers exactly the residue classes Ramsey would.
//
//   (2) make_order_invariant (Appendix A's A'): wrap A so that each ball
//       is re-identified with the |ball| smallest members of U in rank
//       order. A' is order-invariant by construction, and on instances
//       whose identities already lie in U it reproduces A exactly — the
//       correctness argument at the end of the appendix, testable.
//
// tests/core_test.cpp + tests/ramsey_test.cpp verify both properties.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "local/runner.h"

namespace lnc::core {

/// Outcome of the universe search.
struct UniverseResult {
  std::vector<ident::Identity> universe;  ///< sorted ascending
  bool uniform = false;  ///< true when outputs were pattern-constant on U
  std::size_t patterns_checked = 0;
};

struct UniverseOptions {
  /// Candidate pool: identities 1..pool_size are considered.
  ident::Identity pool_size = 512;
  /// Required size of U (must cover the largest ball the caller will
  /// re-identify, i.e. >= max ball size).
  std::size_t target_size = 32;
  /// Windows sampled per rank pattern when testing uniformity.
  std::size_t samples_per_pattern = 64;
  std::uint64_t seed = 1;
};

/// Searches for a uniform identity universe for `algo` on the fixed ring
/// ball geometry of radius t (window size 2t+1) — the family the paper's
/// Corollary-1 instances live in. Greedy Ramsey refinement: for each of
/// the (2t+1)! rank patterns, split the current pool by the output that
/// `algo` produces when the window is filled with pool identities in that
/// pattern, and keep the largest class.
UniverseResult find_uniform_universe(const local::BallAlgorithm& algo,
                                     int radius,
                                     const UniverseOptions& options = {});

/// Appendix A's A': an order-invariant algorithm that re-identifies each
/// ball with the smallest |ball| members of `universe` in rank order and
/// runs `inner`. The universe must be at least as large as any ball
/// encountered.
class RamseyOrderInvariant final : public local::BallAlgorithm {
 public:
  RamseyOrderInvariant(const local::BallAlgorithm& inner,
                       std::vector<ident::Identity> universe);

  std::string name() const override;
  int radius() const override;
  local::Label compute(const local::View& view) const override;

  const std::vector<ident::Identity>& universe() const noexcept {
    return universe_;
  }

 private:
  const local::BallAlgorithm* inner_;
  std::vector<ident::Identity> universe_;  // sorted ascending
};

}  // namespace lnc::core
