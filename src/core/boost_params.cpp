#include "core/boost_params.h"

#include <cmath>
#include <limits>

#include "util/assert.h"
#include "util/math.h"

namespace lnc::core {

bool BoostParameters::valid() const noexcept {
  return p > 0.5 && p <= 1.0 && r > 0.0 && r <= 1.0 && beta > 0.0 &&
         beta <= 1.0 && t >= 0 && t_prime >= 0;
}

std::uint64_t BoostParameters::nu() const {
  LNC_EXPECTS(valid());
  // Eq. (3): nu = 1 + ceil( ln(r p) / ln(1 - beta p) ). Both logs are
  // negative, so the ratio is positive.
  const double numerator = std::log(r * p);
  const double denominator = std::log(1.0 - beta * p);
  return 1 + static_cast<std::uint64_t>(
                 std::ceil(numerator / denominator));
}

std::uint64_t BoostParameters::mu() const {
  LNC_EXPECTS(p > 0.5);
  return static_cast<std::uint64_t>(std::ceil(1.0 / (2.0 * p - 1.0)));
}

std::uint64_t BoostParameters::min_diameter() const {
  return 2 * mu() * static_cast<std::uint64_t>(t + t_prime);
}

std::uint64_t BoostParameters::nu_prime() const {
  LNC_EXPECTS(valid());
  // (1/p) * (1 - beta(1-p)/mu)^{nu'} < r  <=>
  // nu' > ln(r p) / ln(1 - beta(1-p)/mu).
  const double shrink =
      1.0 - beta * (1.0 - p) / static_cast<double>(mu());
  LNC_ASSERT(shrink > 0.0 && shrink < 1.0);
  const double numerator = std::log(r * p);
  const double denominator = std::log(shrink);
  return 1 + static_cast<std::uint64_t>(
                 std::ceil(numerator / denominator));
}

double BoostParameters::disjoint_acceptance_bound(
    std::uint64_t instances) const {
  return std::pow(1.0 - beta * p, static_cast<double>(instances));
}

double BoostParameters::glued_acceptance_bound(
    std::uint64_t instances) const {
  const double shrink =
      1.0 - beta * (1.0 - p) / static_cast<double>(mu());
  return std::pow(shrink, static_cast<double>(instances)) / p;
}

std::uint64_t order_invariant_algorithm_count_ring(int t, int palette) {
  LNC_EXPECTS(t >= 0 && palette >= 1);
  std::uint64_t patterns = 1;  // (2t+1)!
  for (int i = 2; i <= 2 * t + 1; ++i) {
    patterns *= static_cast<std::uint64_t>(i);
  }
  return util::saturating_pow(static_cast<std::uint64_t>(palette), patterns);
}

bool mu_pigeonhole_holds(double p) {
  if (p <= 0.5) return false;
  const double mu = std::ceil(1.0 / (2.0 * p - 1.0));
  return mu * (2.0 * p - 1.0) > 1.0;
}

namespace {

/// a * b with saturation.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// a + b with saturation.
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a + b;
}

/// Multisets of size d over an alphabet of size L: C(L + d - 1, d),
/// saturating.
std::uint64_t multiset_count(std::uint64_t alphabet, std::uint64_t d) {
  // Product formula with interleaved division keeps intermediates exact.
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= d; ++i) {
    const std::uint64_t numerator = alphabet + i - 1;
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

std::uint64_t factorial_sat(std::uint64_t n) {
  std::uint64_t f = 1;
  for (std::uint64_t i = 2; i <= n; ++i) f = sat_mul(f, i);
  return f;
}

}  // namespace

std::uint64_t label_value_count(int k) {
  LNC_EXPECTS(k >= 0);
  if (k >= 63) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << (k + 1)) - 1;
}

std::uint64_t radius1_ball_shape_count(int k) {
  LNC_EXPECTS(k >= 0);
  return static_cast<std::uint64_t>(k) + 1;
}

std::uint64_t labeled_radius1_ball_count(int k) {
  // Center (input, output) pair times the multiset of leaf pairs, summed
  // over degrees d = 0..k.
  const std::uint64_t pair_count =
      sat_mul(label_value_count(k), label_value_count(k));
  std::uint64_t total = 0;
  for (int d = 0; d <= k; ++d) {
    total = sat_add(total, sat_mul(pair_count,
                                   multiset_count(pair_count,
                                                  static_cast<std::uint64_t>(d))));
  }
  return total;
}

std::uint64_t ordered_labeled_radius1_ball_count(int k) {
  const std::uint64_t pair_count =
      sat_mul(label_value_count(k), label_value_count(k));
  std::uint64_t total = 0;
  for (int d = 0; d <= k; ++d) {
    const std::uint64_t labeled = sat_mul(
        pair_count,
        multiset_count(pair_count, static_cast<std::uint64_t>(d)));
    total = sat_add(total,
                    sat_mul(labeled, factorial_sat(
                                         static_cast<std::uint64_t>(d) + 1)));
  }
  return total;
}

}  // namespace lnc::core
