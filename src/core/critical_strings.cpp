#include "core/critical_strings.h"

#include <algorithm>

#include "graph/metrics.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::core {

local::Labeling run_fixed_construction(
    const local::Instance& inst, const local::RandomizedBallAlgorithm& algo,
    std::uint64_t sigma) {
  const rand::PhiloxCoins coins(sigma, rand::Stream::kConstruction);
  return local::run_ball_algorithm(inst, algo, coins);
}

bool Claim4Report::exists_below_p() const {
  return std::any_of(far_accept.begin(), far_accept.end(),
                     [this](const stats::Estimate& e) { return e.p_hat < p; });
}

Claim4Report verify_claim4(const local::Instance& inst,
                           std::span<const local::Label> fixed_output,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double p,
                           std::uint64_t trials, std::uint64_t base_seed,
                           const stats::ThreadPool* pool) {
  Claim4Report report;
  report.p = p;
  report.scattered.assign(scattered.begin(), scattered.end());
  for (graph::NodeId u : scattered) {
    decide::EvaluateOptions options;
    options.far_from = decide::FarFrom{u, exclusion_radius};
    report.far_accept.push_back(stats::estimate_probability(
        trials, rand::mix_keys(base_seed, u),
        [&](std::uint64_t seed) {
          const rand::PhiloxCoins coins(seed, rand::Stream::kDecision);
          return decide::evaluate(inst, fixed_output, decider, coins, options)
              .accepted;
        },
        pool));
  }
  return report;
}

CriticalStringsReport verify_critical_strings(
    const local::Instance& inst, std::span<const local::Label> fixed_output,
    const decide::RandomizedDecider& decider,
    std::span<const graph::NodeId> scattered, int exclusion_radius,
    std::uint64_t trials, std::uint64_t base_seed) {
  CriticalStringsReport report;
  report.trials = trials;
  report.critical_for.assign(scattered.size(), 0);

  // Distances from every member of S (reused across trials).
  std::vector<std::vector<int>> dist;
  dist.reserve(scattered.size());
  for (graph::NodeId u : scattered) {
    dist.push_back(graph::bfs_distances(inst.g, u));
  }

  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t sigma_prime = stats::trial_seed(base_seed, trial);
    const rand::PhiloxCoins coins(sigma_prime, rand::Stream::kDecision);
    // One unrestricted evaluation gives the full Reject(., sigma') set;
    // criticality for each u is then pure geometry over that set.
    const decide::DecisionOutcome outcome =
        decide::evaluate(inst, fixed_output, decider, coins);
    if (outcome.accepted) continue;  // no rejection: critical for nobody

    std::size_t critical_members = 0;
    for (std::size_t j = 0; j < scattered.size(); ++j) {
      // sigma' is critical for u when every rejection is within the
      // exclusion ball of u (i.e. D accepts far from u but rejects).
      bool all_near_u = true;
      for (graph::NodeId rej : outcome.rejecting) {
        if (dist[j][rej] < 0 || dist[j][rej] > exclusion_radius) {
          all_near_u = false;
          break;
        }
      }
      if (all_near_u) {
        ++report.critical_for[j];
        ++critical_members;
        // Reject-set containment holds by the test above; a violation
        // would have been counted as non-critical, so escaped_reject
        // tracks the complementary check: a string critical for u whose
        // rejections are NOT all inside B(u, exclusion_radius) cannot
        // exist by construction here — we keep the counter to document
        // the invariant (it must stay 0).
      }
    }
    if (critical_members >= 2) ++report.multi_critical;
  }
  return report;
}

bool Claim5Report::exists_above_bound() const {
  return std::any_of(
      far_reject.begin(), far_reject.end(),
      [this](const stats::Estimate& e) { return e.p_hat >= bound; });
}

graph::NodeId Claim5Report::best_anchor() const {
  LNC_EXPECTS(!far_reject.empty());
  std::size_t best = 0;
  for (std::size_t j = 1; j < far_reject.size(); ++j) {
    if (far_reject[j].p_hat > far_reject[best].p_hat) best = j;
  }
  return scattered[best];
}

Claim5Report verify_claim5(const local::Instance& inst,
                           const local::RandomizedBallAlgorithm& algo,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double beta, double p,
                           std::uint64_t mu, std::uint64_t trials,
                           std::uint64_t base_seed,
                           const stats::ThreadPool* pool) {
  Claim5Report report;
  report.scattered.assign(scattered.begin(), scattered.end());
  report.bound = beta * (1.0 - p) / static_cast<double>(mu);
  for (graph::NodeId u : scattered) {
    decide::EvaluateOptions options;
    options.far_from = decide::FarFrom{u, exclusion_radius};
    report.far_reject.push_back(stats::estimate_probability(
        trials, rand::mix_keys(base_seed, 0xC1A15ULL + u),
        [&](std::uint64_t seed) {
          const rand::PhiloxCoins c_coins(rand::mix_keys(seed, 0xC0),
                                          rand::Stream::kConstruction);
          const rand::PhiloxCoins d_coins(rand::mix_keys(seed, 0xD0),
                                          rand::Stream::kDecision);
          const local::Labeling output =
              local::run_ball_algorithm(inst, algo, c_coins);
          return !decide::evaluate(inst, output, decider, d_coins, options)
                      .accepted;
        },
        pool));
  }
  return report;
}

}  // namespace lnc::core
