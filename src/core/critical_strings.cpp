#include "core/critical_strings.h"

#include <algorithm>

#include "decide/experiment_plans.h"
#include "graph/metrics.h"
#include "local/batch_runner.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::core {

local::Labeling run_fixed_construction(
    const local::Instance& inst, const local::RandomizedBallAlgorithm& algo,
    std::uint64_t sigma) {
  const rand::PhiloxCoins coins(sigma, rand::Stream::kConstruction);
  return local::run_ball_algorithm(inst, algo, coins);
}

bool Claim4Report::exists_below_p() const {
  return std::any_of(far_accept.begin(), far_accept.end(),
                     [this](const stats::Estimate& e) { return e.p_hat < p; });
}

Claim4Report verify_claim4(const local::Instance& inst,
                           std::span<const local::Label> fixed_output,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double p,
                           std::uint64_t trials, std::uint64_t base_seed,
                           const stats::ThreadPool* pool) {
  Claim4Report report;
  report.p = p;
  report.scattered.assign(scattered.begin(), scattered.end());
  local::BatchRunner runner(pool);
  for (graph::NodeId u : scattered) {
    decide::EvaluateOptions options;
    options.far_from = decide::FarFrom{u, exclusion_radius};
    report.far_accept.push_back(runner.run(decide::acceptance_plan(
        "claim4/far-accept", inst, fixed_output, decider, trials,
        rand::mix_keys(base_seed, u), options)));
  }
  return report;
}

CriticalStringsReport verify_critical_strings(
    const local::Instance& inst, std::span<const local::Label> fixed_output,
    const decide::RandomizedDecider& decider,
    std::span<const graph::NodeId> scattered, int exclusion_radius,
    std::uint64_t trials, std::uint64_t base_seed) {
  CriticalStringsReport report;
  report.trials = trials;

  // Distances from every member of S (shared by all trials).
  std::vector<std::vector<int>> dist;
  dist.reserve(scattered.size());
  for (graph::NodeId u : scattered) {
    dist.push_back(graph::bfs_distances(inst.g, u));
  }

  // Counter slots: one criticality tally per scattered node, plus one slot
  // for strings critical for >= 2 members.
  const std::size_t multi_slot = scattered.size();
  local::ExperimentPlan plan = local::custom_count_plan(
      "critical-strings", trials, base_seed, scattered.size() + 1,
      [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
        // The trial seed IS sigma' here (the decision string under test):
        // one unrestricted evaluation gives the full Reject(., sigma') set;
        // criticality for each u is then pure geometry over that set.
        const rand::PhiloxCoins coins(env.seed, rand::Stream::kDecision);
        const decide::DecisionOutcome outcome =
            decide::evaluate(inst, fixed_output, decider, coins);
        if (outcome.accepted) return;  // no rejection: critical for nobody

        std::size_t critical_members = 0;
        for (std::size_t j = 0; j < scattered.size(); ++j) {
          // sigma' is critical for u when every rejection is within the
          // exclusion ball of u (i.e. D accepts far from u but rejects).
          bool all_near_u = true;
          for (graph::NodeId rej : outcome.rejecting) {
            if (dist[j][rej] < 0 || dist[j][rej] > exclusion_radius) {
              all_near_u = false;
              break;
            }
          }
          if (all_near_u) {
            ++slots[j];
            ++critical_members;
          }
        }
        if (critical_members >= 2) ++slots[multi_slot];
      });

  // The report is a plain count census — run it sequentially-deterministic
  // through the batch runner (the same counts arrive in any thread count).
  local::BatchRunner runner;
  const std::vector<std::uint64_t> slots = runner.run_counts(plan);
  report.critical_for.assign(slots.begin(), slots.begin() + multi_slot);
  report.multi_critical = slots[multi_slot];
  return report;
}

bool Claim5Report::exists_above_bound() const {
  return std::any_of(
      far_reject.begin(), far_reject.end(),
      [this](const stats::Estimate& e) { return e.p_hat >= bound; });
}

graph::NodeId Claim5Report::best_anchor() const {
  LNC_EXPECTS(!far_reject.empty());
  std::size_t best = 0;
  for (std::size_t j = 1; j < far_reject.size(); ++j) {
    if (far_reject[j].p_hat > far_reject[best].p_hat) best = j;
  }
  return scattered[best];
}

Claim5Report verify_claim5(const local::Instance& inst,
                           const local::RandomizedBallAlgorithm& algo,
                           const decide::RandomizedDecider& decider,
                           std::span<const graph::NodeId> scattered,
                           int exclusion_radius, double beta, double p,
                           std::uint64_t mu, std::uint64_t trials,
                           std::uint64_t base_seed,
                           const stats::ThreadPool* pool) {
  Claim5Report report;
  report.scattered.assign(scattered.begin(), scattered.end());
  report.bound = beta * (1.0 - p) / static_cast<double>(mu);
  local::BatchRunner runner(pool);
  for (graph::NodeId u : scattered) {
    decide::EvaluateOptions options;
    options.far_from = decide::FarFrom{u, exclusion_radius};
    report.far_reject.push_back(runner.run(decide::construct_then_decide_plan(
        "claim5/far-reject", inst, algo, decider, trials,
        rand::mix_keys(base_seed, 0xC1A15ULL + u), options,
        /*success_on_accept=*/false)));
  }
  return report;
}

}  // namespace lnc::core
