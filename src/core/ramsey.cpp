#include "core/ramsey.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/generators.h"
#include "ident/order.h"
#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::core {
namespace {

/// Evaluates `algo` at the center of a ring window carrying the given
/// identities in ring order (window.size() == 2*radius + 1). Fillers pad
/// the ring to >= 3 nodes when the window is smaller.
local::Label evaluate_window(const local::BallAlgorithm& algo, int radius,
                             const std::vector<ident::Identity>& window,
                             ident::Identity filler_base) {
  const std::size_t w = window.size();
  LNC_EXPECTS(w == static_cast<std::size_t>(2 * radius + 1));
  const graph::NodeId n = static_cast<graph::NodeId>(std::max<std::size_t>(3, w));
  std::vector<ident::Identity> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = i < w ? window[i] : filler_base + static_cast<ident::Identity>(i);
  }
  const local::Instance inst =
      local::make_instance(graph::cycle(n), ident::IdAssignment(ids));
  const graph::NodeId center = static_cast<graph::NodeId>(radius);
  const graph::BallView ball(inst.g, center, radius);
  local::View view;
  view.ball = &ball;
  view.instance = &inst;
  return algo.compute(view);
}

/// All permutations of {0, ..., w-1}, i.e. all rank patterns of a window.
std::vector<std::vector<std::size_t>> all_patterns(std::size_t w) {
  std::vector<std::size_t> perm(w);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::vector<std::vector<std::size_t>> patterns;
  do {
    patterns.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return patterns;
}

/// Arranges the sorted identity set so that position i receives the
/// identity of rank ranks[i].
std::vector<ident::Identity> arrange(
    const std::vector<ident::Identity>& sorted,
    const std::vector<std::size_t>& ranks) {
  std::vector<ident::Identity> window(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    window[i] = sorted[ranks[i]];
  }
  return window;
}

}  // namespace

UniverseResult find_uniform_universe(const local::BallAlgorithm& algo,
                                     int radius,
                                     const UniverseOptions& options) {
  const std::size_t w = static_cast<std::size_t>(2 * radius + 1);
  LNC_EXPECTS(options.pool_size >= 4 * w);
  const ident::Identity filler_base = options.pool_size + 100;

  // Companion identities at pool quantiles (removed from the pool): the
  // probes that expose how each candidate identity interacts.
  std::vector<ident::Identity> companions;
  for (std::size_t j = 1; j < w; ++j) {
    companions.push_back(static_cast<ident::Identity>(
        j * options.pool_size / w + 1));
  }

  // Fingerprint every remaining pool identity: outputs across all
  // arrangements of {x} union companions.
  const auto patterns = all_patterns(w);
  std::map<std::vector<local::Label>, std::vector<ident::Identity>> classes;
  for (ident::Identity x = 1; x <= options.pool_size; ++x) {
    if (std::find(companions.begin(), companions.end(), x) !=
        companions.end()) {
      continue;
    }
    std::vector<ident::Identity> members = companions;
    members.push_back(x);
    std::sort(members.begin(), members.end());
    std::vector<local::Label> fingerprint;
    fingerprint.reserve(patterns.size());
    for (const auto& ranks : patterns) {
      fingerprint.push_back(
          evaluate_window(algo, radius, arrange(members, ranks),
                          filler_base));
    }
    classes[fingerprint].push_back(x);
  }

  // Keep the largest behavior class — the finite stand-in for Ramsey's
  // monochromatic set.
  UniverseResult result;
  const std::vector<ident::Identity>* best = nullptr;
  for (const auto& [fingerprint, ids] : classes) {
    if (best == nullptr || ids.size() > best->size()) best = &ids;
  }
  if (best == nullptr) return result;
  result.universe.assign(
      best->begin(),
      best->begin() + static_cast<std::ptrdiff_t>(std::min(
                          options.target_size, best->size())));
  std::sort(result.universe.begin(), result.universe.end());

  // Verify uniformity: sampled windows drawn entirely from U must give
  // pattern-constant outputs.
  if (result.universe.size() < w) return result;  // uniform stays false
  rand::SplitMix64 rng(rand::mix_keys(options.seed, 0x52414DULL));
  result.uniform = true;
  for (const auto& ranks : patterns) {
    ++result.patterns_checked;
    bool first = true;
    local::Label expected = 0;
    for (std::size_t s = 0; s < options.samples_per_pattern; ++s) {
      // Random w-subset of U.
      std::vector<ident::Identity> subset;
      std::vector<std::size_t> chosen;
      while (chosen.size() < w) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.next_below(result.universe.size()));
        if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
          chosen.push_back(pick);
        }
      }
      std::sort(chosen.begin(), chosen.end());
      for (std::size_t idx : chosen) subset.push_back(result.universe[idx]);
      const local::Label out = evaluate_window(
          algo, radius, arrange(subset, ranks), filler_base);
      if (first) {
        expected = out;
        first = false;
      } else if (out != expected) {
        result.uniform = false;
        return result;
      }
    }
  }
  return result;
}

RamseyOrderInvariant::RamseyOrderInvariant(
    const local::BallAlgorithm& inner,
    std::vector<ident::Identity> universe)
    : inner_(&inner), universe_(std::move(universe)) {
  std::sort(universe_.begin(), universe_.end());
  LNC_EXPECTS(!universe_.empty());
}

std::string RamseyOrderInvariant::name() const {
  return "ramsey-A'(" + inner_->name() + ")";
}

int RamseyOrderInvariant::radius() const { return inner_->radius(); }

local::Label RamseyOrderInvariant::compute(const local::View& view) const {
  const graph::NodeId size = view.ball->size();
  LNC_EXPECTS(static_cast<std::size_t>(size) <= universe_.size() &&
              "universe smaller than the ball (Appendix A needs |U| >= |B|)");
  std::vector<ident::Identity> member_ids(size);
  for (graph::NodeId local = 0; local < size; ++local) {
    member_ids[local] = view.identity(local);
  }
  const std::vector<std::size_t> ranks = ident::rank_pattern(member_ids);
  std::vector<ident::Identity> reassigned(size);
  for (graph::NodeId local = 0; local < size; ++local) {
    reassigned[local] = universe_[ranks[local]];
  }
  local::View shadowed = view;
  shadowed.id_override = &reassigned;
  return inner_->compute(shadowed);
}

}  // namespace lnc::core
