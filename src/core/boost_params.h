// The explicit constants of Theorem 1's proof.
//
//   beta = 1/N            N = number of order-invariant t-round algorithms
//                         under promise F_k (Claim 2's failure floor)
//   nu   = 1 + ceil( ln(r p) / ln(1 - beta p) )                  (Eq. 3)
//   mu   = ceil( 1 / (2p - 1) )
//   D    = 2 mu (t + t')
//   nu'  = 1 + ceil( ln(r p) / ln( (1 - beta (1-p)/mu) / p ) )
//
// r = success probability of the construction algorithm C, p = guarantee
// of the decision algorithm D, t/t' their running times. The experiments
// estimate beta empirically (the true N is astronomical) and check that
// the measured boosted acceptance decays at least as fast as the formulas
// predict (E6-E8).
#pragma once

#include <cstdint>

namespace lnc::core {

struct BoostParameters {
  double r = 0.0;     ///< construction success probability
  double p = 0.0;     ///< decider guarantee (> 1/2)
  double beta = 0.0;  ///< per-instance failure floor (Claim 2)
  int t = 0;          ///< rounds of C
  int t_prime = 0;    ///< rounds of D

  /// nu of Eq. (3): enough disjoint hard instances that
  /// (1 - beta p)^nu / p < r.
  std::uint64_t nu() const;

  /// mu = ceil(1/(2p-1)): the size of the scattered set S in Claim 4.
  std::uint64_t mu() const;

  /// Minimum hard-instance diameter D = 2 mu (t + t').
  std::uint64_t min_diameter() const;

  /// nu' for the connected (glued) construction: enough instances that
  /// (1/p) (1 - beta (1-p)/mu)^{nu'} < r.
  std::uint64_t nu_prime() const;

  /// The Claim-3 acceptance ceiling (1 - beta p)^k for k glued instances.
  double disjoint_acceptance_bound(std::uint64_t instances) const;

  /// The Theorem-1 ceiling (1/p) (1 - beta(1-p)/mu)^k.
  double glued_acceptance_bound(std::uint64_t instances) const;

  /// Validates 1/2 < p <= 1, 0 < r <= 1, 0 < beta <= 1, t, t' >= 0.
  bool valid() const noexcept;
};

/// The counting bound behind beta = 1/N for the ring family: a t-round
/// order-invariant algorithm on an oriented ring with palette q is a table
/// over the (2t+1)! rank patterns, so N = q^((2t+1)!). Returns N saturated
/// to UINT64_MAX (it overflows immediately for t >= 2 — the point being
/// that beta is tiny but POSITIVE and constant in n).
std::uint64_t order_invariant_algorithm_count_ring(int t, int palette);

/// Claim 4's pigeonhole: mu (2p - 1) > 1 must hold by construction.
bool mu_pigeonhole_holds(double p);

// ---------------------------------------------------------------------
// The appendix's finite censuses behind beta = 1/N, for t = 1 on general
// F_k graphs. Under the paper's ball definition, radius-1 balls are stars
// K_{1,d} (edges between two distance-1 nodes are excluded), so the
// counting is exact:
//
//   labels: binary strings of length <= k  ->  2^{k+1} - 1 values;
//   a labeled ball: center (input, output) pair + a multiset of d leaf
//   (input, output) pairs, d <= k;
//   ordered balls (Appendix A): each labeled ball contributes n_i! = (d+1)!
//   identity orderings.
//
// All results saturate at UINT64_MAX; saturation itself is the point the
// paper needs — N is finite and independent of n, so beta = 1/N > 0.

/// Number of distinct <=k-bit label values: 2^{k+1} - 1.
std::uint64_t label_value_count(int k);

/// Number of structurally distinct radius-1 balls in F_k (stars): k + 1.
std::uint64_t radius1_ball_shape_count(int k);

/// Number of input-output-labeled radius-1 balls up to isomorphism.
std::uint64_t labeled_radius1_ball_count(int k);

/// The appendix's N for t = 1: sum over labeled balls of (nodes)!
/// orderings — the domain size of an order-invariant algorithm table.
std::uint64_t ordered_labeled_radius1_ball_count(int k);

}  // namespace lnc::core
