#include "core/glue.h"

#include <algorithm>
#include <unordered_set>

#include "util/assert.h"

namespace lnc::core {
namespace {

/// Checks pairwise disjointness of identity ranges and returns one past
/// the maximum identity in use.
ident::Identity check_disjoint_ids(std::span<const local::Instance> parts) {
  std::unordered_set<ident::Identity> seen;
  ident::Identity max_id = 0;
  for (const local::Instance& part : parts) {
    for (ident::Identity id : part.ids.raw()) {
      const bool inserted = seen.insert(id).second;
      LNC_EXPECTS(inserted && "instance identity ranges must be disjoint");
      max_id = std::max(max_id, id);
    }
  }
  return max_id + 1;
}

}  // namespace

GluedInstance theorem1_glue(std::span<const local::Instance> parts,
                            std::span<const graph::NodeId> anchors) {
  LNC_EXPECTS(parts.size() >= 2);
  LNC_EXPECTS(anchors.size() == parts.size());
  ident::Identity fresh_id = check_disjoint_ids(parts);

  GluedInstance result;
  const std::size_t count = parts.size();

  // Layout: all original nodes of all parts first (so part-local indices
  // translate by offset), then the inserted pairs (v_i, w_i).
  graph::NodeId total_original = 0;
  for (const local::Instance& part : parts) {
    result.part_offset.push_back(total_original);
    total_original += part.node_count();
  }
  graph::NodeId next_inserted = total_original;

  graph::Graph::Builder builder(total_original +
                                static_cast<graph::NodeId>(2 * count));
  std::vector<ident::Identity> ids;
  local::Labeling input;
  ids.resize(total_original + 2 * count, 0);
  input.resize(total_original + 2 * count, 0);

  result.v_nodes.resize(count);
  result.w_nodes.resize(count);
  result.anchors.resize(count);

  for (std::size_t i = 0; i < count; ++i) {
    const local::Instance& part = parts[i];
    part.validate();
    const graph::NodeId offset = result.part_offset[i];
    const graph::NodeId u = anchors[i];
    LNC_EXPECTS(u < part.node_count());
    LNC_EXPECTS(part.g.degree(u) >= 1);
    const graph::NodeId z = part.g.neighbors(u)[0];

    // Copy every edge except e_i = {u, z}.
    for (const graph::Edge& e : part.g.edges()) {
      if ((e.u == std::min(u, z)) && (e.v == std::max(u, z))) continue;
      builder.add_edge(offset + e.u, offset + e.v);
    }
    // u — v_i — w_i — z.
    const graph::NodeId v_node = next_inserted++;
    const graph::NodeId w_node = next_inserted++;
    builder.add_edge(offset + u, v_node);
    builder.add_edge(v_node, w_node);
    builder.add_edge(w_node, offset + z);
    result.v_nodes[i] = v_node;
    result.w_nodes[i] = w_node;
    result.anchors[i] = offset + u;

    // Labels: originals keep identity and input; inserted nodes take fresh
    // identities above all used ranges and arbitrary (zero) inputs.
    for (graph::NodeId v = 0; v < part.node_count(); ++v) {
      ids[offset + v] = part.ids[v];
      input[offset + v] = part.input_of(v);
    }
    ids[v_node] = fresh_id++;
    ids[w_node] = fresh_id++;
  }

  // The linking cycle v_i — w_{i+1}, closing with v_count — w_1.
  for (std::size_t i = 0; i < count; ++i) {
    builder.add_edge(result.v_nodes[i], result.w_nodes[(i + 1) % count]);
  }

  result.instance.g = builder.build();
  result.instance.input = std::move(input);
  result.instance.ids = ident::IdAssignment(std::move(ids));
  result.instance.validate();
  return result;
}

GluedInstance disjoint_union_instances(
    std::span<const local::Instance> parts) {
  LNC_EXPECTS(!parts.empty());
  check_disjoint_ids(parts);

  GluedInstance result;
  graph::NodeId total = 0;
  for (const local::Instance& part : parts) {
    result.part_offset.push_back(total);
    total += part.node_count();
  }
  graph::Graph::Builder builder(total);
  std::vector<ident::Identity> ids(total, 0);
  local::Labeling input(total, 0);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const graph::NodeId offset = result.part_offset[i];
    for (const graph::Edge& e : parts[i].g.edges()) {
      builder.add_edge(offset + e.u, offset + e.v);
    }
    for (graph::NodeId v = 0; v < parts[i].node_count(); ++v) {
      ids[offset + v] = parts[i].ids[v];
      input[offset + v] = parts[i].input_of(v);
    }
  }
  result.instance.g = builder.build();
  result.instance.input = std::move(input);
  result.instance.ids = ident::IdAssignment(std::move(ids));
  result.instance.validate();
  return result;
}

}  // namespace lnc::core
