// Verification harness for order invariance (Claim 1 / Appendix A).
//
// Claim 1 guarantees an order-invariant equivalent A' for any t-round
// algorithm A under promise F_k; the canonical A' (algo/order_invariant.h)
// is order-invariant BY CONSTRUCTION. This harness verifies the property
// empirically for any BallAlgorithm: re-run the algorithm under random
// order-preserving identity re-assignments and count output changes. A
// genuinely order-invariant algorithm never changes; an identity-reading
// algorithm (e.g. "output id mod 3") is caught within a few trials — the
// harness doubles as a regression net for the wrapper and as the
// measurement device for experiment E5's preconditions.
#pragma once

#include <cstdint>

#include "local/runner.h"

namespace lnc::core {

struct OrderInvarianceReport {
  std::uint64_t trials = 0;
  std::uint64_t violations = 0;  ///< trials where some node's output moved
  bool invariant() const noexcept { return violations == 0; }
};

struct OrderCheckOptions {
  std::uint64_t trials = 32;
  std::uint64_t base_seed = 7;
  /// Remapped identities are drawn from [1, id_ceiling]; must be >= n.
  ident::Identity id_ceiling = 1u << 20;
};

/// Runs `algo` on `inst` and on order-preserving re-identifications of
/// `inst`, comparing full output vectors.
OrderInvarianceReport check_order_invariance(
    const local::Instance& inst, const local::BallAlgorithm& algo,
    const OrderCheckOptions& options = {});

}  // namespace lnc::core
