#include "core/order_check.h"

#include <map>
#include <mutex>

#include "ident/order.h"
#include "local/batch_runner.h"
#include "util/assert.h"

namespace lnc::core {

OrderInvarianceReport check_order_invariance(
    const local::Instance& inst, const local::BallAlgorithm& algo,
    const OrderCheckOptions& options) {
  LNC_EXPECTS(options.id_ceiling >= inst.node_count());
  OrderInvarianceReport report;
  report.trials = options.trials;

  const local::Labeling reference = local::run_ball_algorithm(inst, algo);

  // Only the identity assignment varies per trial; the graph and inputs
  // are trial-invariant, so each worker clones them ONCE into its own
  // shadow instance (keyed by the trial's arena) instead of copying the
  // CSR graph every trial.
  std::mutex shadows_mutex;
  std::map<local::WorkerArena*, local::Instance> shadows;
  local::BatchRunner runner;
  const auto counts = runner.run_counts(local::custom_count_plan(
      "order-invariance/" + algo.name(), options.trials, options.base_seed,
      /*counters=*/1,
      [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
        // env.seed == mix_keys(base_seed, trial): same remap stream the
        // pre-batched harness used.
        const std::vector<ident::Identity> remapped =
            ident::order_preserving_remap(inst.ids.raw(), options.id_ceiling,
                                          env.seed);
        local::Instance* shadow;
        {
          const std::lock_guard<std::mutex> lock(shadows_mutex);
          const auto [it, inserted] = shadows.try_emplace(env.arena);
          shadow = &it->second;
          if (inserted) {
            shadow->g = inst.g;
            shadow->input = inst.input;
          }
        }
        shadow->ids = ident::IdAssignment(remapped);
        local::Labeling& outputs = env.arena->labeling();
        local::run_ball_algorithm_into(*shadow, algo, outputs);
        if (outputs != reference) ++slots[0];
      }));
  report.violations = counts[0];
  return report;
}

}  // namespace lnc::core
