#include "core/order_check.h"

#include "ident/order.h"
#include "local/batch_runner.h"
#include "util/assert.h"

namespace lnc::core {

OrderInvarianceReport check_order_invariance(
    const local::Instance& inst, const local::BallAlgorithm& algo,
    const OrderCheckOptions& options) {
  LNC_EXPECTS(options.id_ceiling >= inst.node_count());
  OrderInvarianceReport report;
  report.trials = options.trials;

  const local::Labeling reference = local::run_ball_algorithm(inst, algo);

  local::BatchRunner runner;
  const auto counts = runner.run_counts(local::custom_count_plan(
      "order-invariance/" + algo.name(), options.trials, options.base_seed,
      /*counters=*/1,
      [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
        // env.seed == mix_keys(base_seed, trial): same remap stream the
        // pre-batched harness used.
        const std::vector<ident::Identity> remapped =
            ident::order_preserving_remap(inst.ids.raw(), options.id_ceiling,
                                          env.seed);
        local::Instance shadow;
        shadow.g = inst.g;
        shadow.input = inst.input;
        shadow.ids = ident::IdAssignment(remapped);
        local::Labeling& outputs = env.arena->labeling();
        local::run_ball_algorithm_into(shadow, algo, outputs);
        if (outputs != reference) ++slots[0];
      }));
  report.violations = counts[0];
  return report;
}

}  // namespace lnc::core
