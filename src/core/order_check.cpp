#include "core/order_check.h"

#include "ident/order.h"
#include "rand/splitmix.h"
#include "util/assert.h"

namespace lnc::core {

OrderInvarianceReport check_order_invariance(
    const local::Instance& inst, const local::BallAlgorithm& algo,
    const OrderCheckOptions& options) {
  LNC_EXPECTS(options.id_ceiling >= inst.node_count());
  OrderInvarianceReport report;
  report.trials = options.trials;

  const local::Labeling reference = local::run_ball_algorithm(inst, algo);

  for (std::uint64_t trial = 0; trial < options.trials; ++trial) {
    const std::vector<ident::Identity> remapped =
        ident::order_preserving_remap(
            inst.ids.raw(), options.id_ceiling,
            rand::mix_keys(options.base_seed, trial));
    local::Instance shadow;
    shadow.g = inst.g;
    shadow.input = inst.input;
    shadow.ids = ident::IdAssignment(remapped);
    const local::Labeling outputs = local::run_ball_algorithm(shadow, algo);
    if (outputs != reference) ++report.violations;
  }
  return report;
}

}  // namespace lnc::core
