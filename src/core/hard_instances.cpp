#include "core/hard_instances.h"

#include <algorithm>

#include "graph/generators.h"
#include "local/experiment.h"
#include "rand/coins.h"
#include "util/assert.h"

namespace lnc::core {

local::Instance consecutive_ring(graph::NodeId n, ident::Identity start) {
  LNC_EXPECTS(n >= 3);
  return local::make_instance(graph::cycle(n), ident::consecutive(n, start));
}

std::vector<local::Instance> claim2_sequence(std::size_t count,
                                             std::uint64_t min_diameter,
                                             ident::Identity first_identity) {
  // Ring diameter is floor(n/2); n = 2*Dmin + 2 gives diameter Dmin + 1
  // (strictly above the floor, so "arbitrarily large diameter" holds even
  // after the glue subdivides one edge).
  const auto n = static_cast<graph::NodeId>(
      std::max<std::uint64_t>(3, 2 * min_diameter + 2));
  std::vector<local::Instance> instances;
  instances.reserve(count);
  ident::Identity next_identity = std::max<ident::Identity>(1, first_identity);
  for (std::size_t i = 0; i < count; ++i) {
    instances.push_back(consecutive_ring(n, next_identity));
    next_identity = instances.back().ids.max_identity() + 1;
  }
  return instances;
}

stats::Estimate estimate_beta(const local::Instance& inst,
                              const local::RandomizedBallAlgorithm& algo,
                              const lang::Language& language,
                              std::uint64_t trials, std::uint64_t base_seed,
                              const stats::ThreadPool* pool) {
  local::BatchRunner runner(pool);
  return runner.run(local::construction_plan(
      "claim2-beta/" + algo.name(), inst, algo,
      [&language](const local::Instance& instance,
                  const local::Labeling& output) {
        return !language.contains(instance, output);
      },
      trials, base_seed));
}

}  // namespace lnc::core
