// Hard-instance families (Claim 2).
//
// Claim 2 asserts: if no t-round deterministic algorithm exists for L,
// then for every Dmin and Imin there is an instance (H, x, id) with
// diameter >= Dmin and all identities >= Imin on which the Monte-Carlo
// construction algorithm C fails with probability >= beta = 1/N.
//
// For the f-resilient ring-coloring languages the paper's own Corollary-1
// argument exhibits the family concretely: cycles with consecutive
// identities. This module generates those instances (with the diameter
// and identity-floor knobs the claim needs) and estimates beta empirically
// for a given construction algorithm.
#pragma once

#include <vector>

#include "lang/language.h"
#include "local/instance.h"
#include "local/runner.h"
#include "stats/montecarlo.h"

namespace lnc::core {

/// C_n with identities start, start+1, ..., start+n-1 in ring order — the
/// Corollary-1 hard instance. Inputs all zero.
local::Instance consecutive_ring(graph::NodeId n, ident::Identity start = 1);

/// The Claim-2 instance sequence (H_1, ..., H_count): ring instances whose
/// diameters are >= min_diameter (ring diameter = floor(n/2)) and whose
/// identity ranges are pairwise disjoint and increasing — H_{i+1}'s
/// smallest identity exceeds H_i's largest, exactly the construction in
/// the proof of Claim 3 / Theorem 1.
std::vector<local::Instance> claim2_sequence(std::size_t count,
                                             std::uint64_t min_diameter,
                                             ident::Identity first_identity = 1);

/// Empirical beta: Pr over construction seeds that C's output on `inst`
/// lies OUTSIDE `language`. Claim 2 promises a positive constant floor;
/// the experiments feed the measured value into BoostParameters.
stats::Estimate estimate_beta(const local::Instance& inst,
                              const local::RandomizedBallAlgorithm& algo,
                              const lang::Language& language,
                              std::uint64_t trials, std::uint64_t base_seed,
                              const stats::ThreadPool* pool = nullptr);

}  // namespace lnc::core
