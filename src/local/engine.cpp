#include "local/engine.h"

#include <algorithm>

#include "util/assert.h"

namespace lnc::local {
namespace {

/// Port of (v+1) mod n in v's sorted neighbor list, for the canonical cycle
/// produced by graph::cycle(). Returns nullopt when g is not that cycle.
std::optional<std::vector<std::uint32_t>> ring_successor_ports(
    const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  if (n < 3) return std::nullopt;
  std::vector<std::uint32_t> ports(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) != 2) return std::nullopt;
    const graph::NodeId succ = (v + 1) % n;
    const auto nbrs = g.neighbors(v);
    if (nbrs[0] == succ) {
      ports[v] = 0;
    } else if (nbrs[1] == succ) {
      ports[v] = 1;
    } else {
      return std::nullopt;
    }
  }
  return ports;
}

}  // namespace

EngineResult run_engine(const Instance& inst,
                        const NodeProgramFactory& factory,
                        const EngineOptions& options) {
  inst.validate();
  const graph::NodeId n = inst.node_count();

  std::optional<std::vector<std::uint32_t>> succ_ports;
  if (options.grant_ring_orientation) {
    succ_ports = ring_successor_ports(inst.g);
    LNC_EXPECTS(succ_ports.has_value() &&
                "grant_ring_orientation requires the canonical cycle");
  }

  std::vector<std::unique_ptr<NodeProgram>> programs(n);
  std::vector<std::unique_ptr<rand::NodeRng>> rngs(n);
  std::vector<char> halted(n, 0);

  for (graph::NodeId v = 0; v < n; ++v) {
    programs[v] = factory.create();
    NodeEnv env;
    env.id = inst.ids[v];
    env.input = inst.input_of(v);
    env.degree = inst.g.degree(v);
    if (succ_ports) env.succ_port = (*succ_ports)[v];
    if (options.grant_n) env.n_nodes = n;
    if (options.coins != nullptr) {
      rngs[v] = std::make_unique<rand::NodeRng>(*options.coins, inst.ids[v]);
      env.rng = rngs[v].get();
    }
    halted[v] = programs[v]->init(env) ? 1 : 0;
  }

  auto all_halted = [&]() {
    return std::all_of(halted.begin(), halted.end(),
                       [](char h) { return h != 0; });
  };

  std::vector<Message> outbox(n);
  EngineResult result;
  int round = 0;
  while (!all_halted()) {
    if (round >= options.max_rounds) {
      result.completed = false;
      result.rounds = round;
      result.output.resize(n);
      for (graph::NodeId v = 0; v < n; ++v) {
        result.output[v] = programs[v]->output();
      }
      result.programs = std::move(programs);
      return result;
    }
    ++round;

    auto send_step = [&](std::uint64_t v) {
      outbox[v] = programs[v]->send(round);
    };
    auto receive_step = [&](std::uint64_t v) {
      if (halted[v] != 0) return;
      const auto nbrs = inst.g.neighbors(static_cast<graph::NodeId>(v));
      std::vector<Message> inbox(nbrs.size());
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        inbox[p] = outbox[nbrs[p]];
      }
      if (programs[v]->receive(round, inbox)) halted[v] = 1;
    };

    if (options.pool != nullptr) {
      options.pool->parallel_for(n, send_step);
      options.pool->parallel_for(n, receive_step);
    } else {
      for (graph::NodeId v = 0; v < n; ++v) send_step(v);
      for (graph::NodeId v = 0; v < n; ++v) receive_step(v);
    }
  }

  result.completed = true;
  result.rounds = round;
  result.output.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    result.output[v] = programs[v]->output();
  }
  result.programs = std::move(programs);
  return result;
}

}  // namespace lnc::local
