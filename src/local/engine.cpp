#include "local/engine.h"

#include <algorithm>

#include "fault/fault.h"
#include "local/vector_engine.h"
#include "obs/metrics.h"
#include "util/assert.h"
#include "util/timer.h"

namespace lnc::local {

std::unique_ptr<VectorProgram> NodeProgramFactory::create_vector() const {
  return nullptr;
}

namespace {

/// Port of (v+1) mod n in v's sorted neighbor list, for the canonical cycle
/// produced by graph::cycle(). Returns nullopt when g is not that cycle.
std::optional<std::vector<std::uint32_t>> ring_successor_ports(
    const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  if (n < 3) return std::nullopt;
  std::vector<std::uint32_t> ports(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) != 2) return std::nullopt;
    const graph::NodeId succ = (v + 1) % n;
    const auto nbrs = g.neighbors(v);
    if (nbrs[0] == succ) {
      ports[v] = 0;
    } else if (nbrs[1] == succ) {
      ports[v] = 1;
    } else {
      return std::nullopt;
    }
  }
  return ports;
}

}  // namespace

EngineResult run_engine(const Instance& inst,
                        const NodeProgramFactory& factory,
                        const EngineOptions& options) {
  inst.validate();
  const graph::NodeId n = inst.node_count();

  // Observability-only run timing: lands in the worker's metrics
  // registry when one is installed (obs::WorkerMetricsScope), otherwise
  // a single TLS load. Never touches the deterministic telemetry.
  obs::MetricsRegistry* obs_metrics = obs::worker_metrics();
  const util::Timer run_timer;

  std::optional<std::vector<std::uint32_t>> succ_ports;
  if (options.grant_ring_orientation) {
    succ_ports = ring_successor_ports(inst.g);
    LNC_EXPECTS(succ_ports.has_value() &&
                "grant_ring_orientation requires the canonical cycle");
  }

  EngineScratch local_scratch;
  EngineScratch& s =
      options.scratch != nullptr ? *options.scratch : local_scratch;

  // Program recycling: retained programs from a previous run on this
  // scratch may be reset in place when the SAME factory runs again and
  // opts in via recreate() — the per-trial hot path then allocates no
  // programs at all.
  const bool may_recycle = s.last_factory_ == &factory &&
                           s.last_factory_name_ == factory.name();
  s.programs_.resize(n);
  s.halted_.assign(n, 0);
  s.rngs_.clear();
  if (options.coins != nullptr) {
    // reserve() keeps &rngs_[v] stable while programs hold the pointer for
    // the whole run.
    s.rngs_.reserve(n);
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    const bool recycled = may_recycle && s.programs_[v] != nullptr &&
                          factory.recreate(*s.programs_[v]);
    if (!recycled) s.programs_[v] = factory.create();
    NodeEnv env;
    env.id = inst.ids[v];
    env.input = inst.input_of(v);
    env.degree = inst.g.degree(v);
    if (succ_ports) env.succ_port = (*succ_ports)[v];
    if (options.grant_n) env.n_nodes = n;
    if (options.coins != nullptr) {
      s.rngs_.emplace_back(*options.coins, inst.ids[v]);
      env.rng = &s.rngs_.back();
    }
    s.halted_[v] = s.programs_[v]->init(env) ? 1 : 0;
  }
  s.last_factory_ = &factory;
  s.last_factory_name_ = factory.name();

  // Resolve the adversary once per run: crash rounds are pure per-node
  // draws, the per-port suppression bitmap is refilled by a deterministic
  // single-threaded pass each round.
  const bool fault_active =
      options.fault != nullptr && !options.fault->trivial();
  if (fault_active) {
    LNC_EXPECTS(options.fault_coins != nullptr &&
                "non-trivial fault model requires its coin stream");
    s.crash_rounds_.resize(n);
    s.dead_.assign(n, 0);
    s.port_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      s.crash_rounds_[v] =
          options.fault->crash_round(*options.fault_coins, inst.ids[v]);
      s.port_offsets_[v + 1] = s.port_offsets_[v] + inst.g.degree(v);
    }
    s.suppressed_.assign(s.port_offsets_[n], 0);
  }

  auto all_halted = [&]() {
    return std::all_of(s.halted_.begin(), s.halted_.end(),
                       [](char h) { return h != 0; });
  };

  // Parallel node stepping cannot fill the shared flat arena in order, so
  // it falls back to pooled per-node buffers (capacity still reused).
  const bool parallel_steps = options.pool != nullptr;
  s.store_.reset(n, /*shared_arena=*/!parallel_steps);

  // Measured telemetry for THIS run; merged into the scratch accumulator
  // at the end (BatchRunner reads per-worker totals from there).
  Telemetry run_telemetry;

  auto finish = [&](int rounds, bool completed) {
    EngineResult result;
    result.completed = completed;
    result.rounds = rounds;
    result.output.resize(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      // A crashed node produced no output; label 0 is its tombstone (the
      // deciders treat crashed nodes separately — see decide/evaluate.cpp).
      result.output[v] = fault_active && s.dead_[v] != 0
                             ? Label{0}
                             : s.programs_[v]->output();
    }
    run_telemetry.rounds_executed = static_cast<std::uint64_t>(rounds);
    run_telemetry.arena_peak_bytes =
        s.store_.footprint_bytes() +
        s.programs_.capacity() * sizeof(s.programs_[0]) +
        s.rngs_.capacity() * sizeof(rand::NodeRng) + s.halted_.capacity();
    result.telemetry = run_telemetry;
    s.telemetry_.merge(run_telemetry);
    if (obs_metrics != nullptr) {
      obs_metrics->observe("engine_run_seconds", run_timer.elapsed_seconds());
    }
    if (options.retain_programs) result.programs = std::move(s.programs_);
    return result;
  };

  int round = 0;
  while (!all_halted()) {
    if (round >= options.max_rounds) return finish(round, false);
    ++round;

    // Crash-stop resolution: a node whose crash round has arrived falls
    // silent BEFORE sending (it is dead for this and all later rounds).
    // Only crashes realized within the executed window are counted — the
    // tally is still a pure function of the trial, not of the schedule.
    if (fault_active) {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (s.dead_[v] == 0 &&
            s.crash_rounds_[v] <= static_cast<std::uint64_t>(round)) {
          s.dead_[v] = 1;
          s.halted_[v] = 1;
          ++run_telemetry.nodes_crashed;
        }
      }
    }

    s.store_.begin_round();
    auto receive_step = [&](std::uint64_t v) {
      if (s.halted_[v] != 0) return;
      const Inbox inbox(
          s.store_, inst.g.neighbors(static_cast<graph::NodeId>(v)),
          fault_active ? s.suppressed_.data() + s.port_offsets_[v] : nullptr);
      if (s.programs_[v]->receive(round, inbox)) s.halted_[v] = 1;
    };

    if (parallel_steps) {
      options.pool->parallel_for(n, [&](std::uint64_t v) {
        MessageWriter out = s.store_.writer(static_cast<graph::NodeId>(v));
        if (!fault_active || s.dead_[v] == 0) s.programs_[v]->send(round, out);
      });
    } else {
      for (graph::NodeId v = 0; v < n; ++v) {
        MessageWriter out = s.store_.writer(v);
        if (!fault_active || s.dead_[v] == 0) s.programs_[v]->send(round, out);
        s.store_.end_write(v);
      }
    }
    // Count after the send barrier (single-threaded either way, so the
    // tallies are schedule-independent). Empty messages are silence.
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::size_t words = s.store_.message(v).size();
      if (words > 0) {
        ++run_telemetry.messages_sent;
        run_telemetry.words_sent += words;
      }
    }
    // Link-fault pass (single-threaded, after the send barrier): fill the
    // per-port suppression bitmap for this round and tally what was
    // realized. Every draw is keyed by (identities, round), so the bitmap
    // — and the counters — are independent of thread count.
    if (fault_active) {
      const auto& model = *options.fault;
      const auto& fcoins = *options.fault_coins;
      for (graph::NodeId v = 0; v < n; ++v) {
        const auto nbrs = inst.g.neighbors(v);
        for (std::size_t p = 0; p < nbrs.size(); ++p) {
          const graph::NodeId u = nbrs[p];
          char& slot = s.suppressed_[s.port_offsets_[v] + p];
          slot = 0;
          if (model.edge_down(fcoins, inst.ids[v], inst.ids[u],
                              static_cast<std::uint64_t>(round))) {
            slot = 1;
            // One (edge, round) deactivation == one churn event; count it
            // at the lower endpoint so each unordered pair counts once.
            if (v < u) ++run_telemetry.edges_churned;
            continue;
          }
          // A drop is only an event when there was a delivery to lose: a
          // non-silent, non-crashed sender and a receiver still running.
          if (s.halted_[v] != 0 || s.dead_[u] != 0 ||
              s.store_.message(u).empty()) {
            continue;
          }
          if (model.drops_delivery(fcoins, inst.ids[u], inst.ids[v],
                                   static_cast<std::uint64_t>(round))) {
            slot = 1;
            ++run_telemetry.messages_dropped;
          }
        }
      }
    }
    if (parallel_steps) {
      options.pool->parallel_for(n, receive_step);
    } else {
      for (graph::NodeId v = 0; v < n; ++v) receive_step(v);
    }
  }

  return finish(round, true);
}

}  // namespace lnc::local
