#include "local/vector_engine.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "util/assert.h"
#include "util/timer.h"

namespace lnc::local {
namespace {

/// Same runaway guard as EngineOptions::max_rounds.
constexpr int kMaxRounds = 1 << 20;

}  // namespace

OptimizationConfig OptimizationConfig::automatic(std::uint64_t n,
                                                 std::uint64_t trials,
                                                 double mean_degree) {
  OptimizationConfig config;
  if (trials <= 2) {
    // Too few trials for arena reuse (let alone lockstep) to pay for
    // itself; fresh scalar arenas also keep one-shot debugging runs simple.
    config.backend = Backend::kNaive;
    return config;
  }
  if (trials < 8) {
    config.backend = Backend::kBatched;
    return config;
  }
  config.backend = Backend::kVectorized;
  // Size the lockstep batch so one batch's SoA state stays cache-resident:
  // roughly 64 bytes per (trial, node) of RNG + flags + program state,
  // plus the port-indexed arrays of degree-proportional programs. Clamp to
  // [4, 64] trials — below 4 the batch overhead dominates, above 64 the
  // marginal amortization is gone.
  const double per_trial_bytes =
      static_cast<double>(n) * (64.0 + 16.0 * std::max(mean_degree, 1.0));
  const double budget = 4.0 * 1024.0 * 1024.0;
  std::uint64_t batch =
      static_cast<std::uint64_t>(std::max(budget / std::max(per_trial_bytes, 1.0), 1.0));
  batch = std::clamp<std::uint64_t>(batch, 4, 64);
  config.batch_trials = std::min<std::uint64_t>(batch, trials);
  return config;
}

const char* to_string(OptimizationConfig::Backend backend) noexcept {
  switch (backend) {
    case OptimizationConfig::Backend::kAuto:
      return "auto";
    case OptimizationConfig::Backend::kNaive:
      return "naive";
    case OptimizationConfig::Backend::kBatched:
      return "batched";
    case OptimizationConfig::Backend::kVectorized:
      return "vectorized";
  }
  return "auto";
}

std::optional<OptimizationConfig::Backend> backend_from_string(
    std::string_view text) noexcept {
  if (text == "auto") return OptimizationConfig::Backend::kAuto;
  if (text == "naive") return OptimizationConfig::Backend::kNaive;
  if (text == "batched") return OptimizationConfig::Backend::kBatched;
  if (text == "vectorized") return OptimizationConfig::Backend::kVectorized;
  return std::nullopt;
}

std::size_t VectorBatch::footprint_bytes() const noexcept {
  return rngs_.capacity() * sizeof(VecRng) + halted_.capacity() +
         live_nodes_.capacity() * sizeof(std::uint32_t) + done_.capacity() +
         rounds_.capacity() * sizeof(int) +
         (messages_.capacity() + words_.capacity()) * sizeof(std::uint64_t) +
         (live_trials_.capacity() + active_nodes_.capacity() +
          active_counts_.capacity()) *
             sizeof(std::uint32_t);
}

void run_vector_batch(
    const Instance& inst, const NodeProgramFactory& factory,
    std::span<const std::uint64_t> coin_keys, const OptimizationConfig& config,
    VectorScratch& scratch, Telemetry* accumulate,
    const std::function<void(std::uint32_t, const Labeling&, int,
                             const Telemetry&)>& finish) {
  const auto trials = static_cast<std::uint32_t>(coin_keys.size());
  if (trials == 0) return;
  const auto n = static_cast<std::uint32_t>(inst.node_count());

  if (!config.reuse_round_buffers) {
    // Arena-reuse ablation: forget the warm program and state arrays so
    // every batch starts cold, exactly like a first call.
    scratch.program_.reset();
    scratch.last_factory_ = nullptr;
    scratch.last_factory_name_.clear();
    scratch.batch_ = VectorBatch{};
  }

  const bool may_recycle = scratch.program_ != nullptr &&
                           scratch.last_factory_ == &factory &&
                           scratch.last_factory_name_ == factory.name();
  if (!may_recycle) {
    scratch.program_ = factory.create_vector();
    LNC_EXPECTS(scratch.program_ != nullptr);
    scratch.last_factory_ = &factory;
    scratch.last_factory_name_ = factory.name();
  }
  VectorProgram& program = *scratch.program_;

  VectorBatch& batch = scratch.batch_;
  batch.inst_ = &inst;
  batch.n_ = n;
  batch.trials_ = trials;
  batch.config_ = config;
  const std::size_t total = static_cast<std::size_t>(trials) * n;
  batch.rngs_.resize(total);
  batch.halted_.assign(total, 0);
  batch.live_nodes_.assign(trials, n);
  batch.done_.assign(trials, 0);
  batch.rounds_.assign(trials, 0);
  batch.messages_.assign(trials, 0);
  batch.words_.assign(trials, 0);
  for (std::uint32_t t = 0; t < trials; ++t) {
    const std::uint64_t key = coin_keys[t];
    VecRng* row = batch.rngs_.data() + batch.at(t, 0);
    for (std::uint32_t v = 0; v < n; ++v) row[v] = VecRng{key, inst.ids[v], 0};
  }
  if (config.use_done_mask) {
    batch.live_trials_.resize(trials);
    std::iota(batch.live_trials_.begin(), batch.live_trials_.end(), 0u);
  } else {
    batch.live_trials_.clear();
  }
  if (config.use_silent_skip) {
    batch.active_nodes_.resize(total);
    batch.active_counts_.assign(trials, n);
    for (std::uint32_t t = 0; t < trials; ++t) {
      std::uint32_t* list = batch.active_nodes_.data() + batch.at(t, 0);
      std::iota(list, list + n, 0u);
    }
  } else {
    batch.active_nodes_.clear();
    batch.active_counts_.clear();
  }

  program.init(batch);

  // Re-filters a live trial's active-node list after halts, and retires
  // trials whose last node halted (recording the terminating round).
  const auto settle = [&](int round) {
    const auto settle_trial = [&](std::uint32_t t) {
      if (batch.live_nodes_[t] == 0) {
        batch.done_[t] = 1;
        batch.rounds_[t] = round;
        return true;
      }
      if (config.use_silent_skip) {
        std::uint32_t* list = batch.active_nodes_.data() + batch.at(t, 0);
        const std::uint32_t count = batch.active_counts_[t];
        std::uint32_t kept = 0;
        for (std::uint32_t k = 0; k < count; ++k) {
          const std::uint32_t v = list[k];
          if (batch.halted_[batch.at(t, v)] == 0) list[kept++] = v;
        }
        batch.active_counts_[t] = kept;
      }
      return false;
    };
    if (config.use_done_mask) {
      auto& live = batch.live_trials_;
      live.erase(std::remove_if(live.begin(), live.end(), settle_trial),
                 live.end());
    } else {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (batch.done_[t] == 0) settle_trial(t);
      }
    }
  };
  const auto any_live = [&] {
    if (config.use_done_mask) return !batch.live_trials_.empty();
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (batch.done_[t] == 0) return true;
    }
    return false;
  };

  // Observability-only kernel timing and footprint: recorded into the
  // worker's metrics registry when one is installed (a null TLS read
  // otherwise). The lockstep round loop is the batch's hot kernel.
  obs::MetricsRegistry* obs_metrics = obs::worker_metrics();
  const util::Timer kernel_timer;
  settle(0);
  int round = 0;
  while (any_live()) {
    LNC_ASSERT(round < kMaxRounds);
    ++round;
    program.round(batch, round);
    settle(round);
  }
  if (obs_metrics != nullptr) {
    obs_metrics->observe("vector_kernel_seconds",
                         kernel_timer.elapsed_seconds());
    obs_metrics->observe("vector_batch_footprint_bytes",
                         static_cast<double>(batch.footprint_bytes() +
                                             program.footprint_bytes()));
  }

  if (accumulate != nullptr) {
    accumulate->arena_peak_bytes =
        std::max(accumulate->arena_peak_bytes,
                 static_cast<std::uint64_t>(batch.footprint_bytes() +
                                            program.footprint_bytes()));
  }
  for (std::uint32_t t = 0; t < trials; ++t) {
    Telemetry delta;
    delta.messages_sent = batch.messages_[t];
    delta.words_sent = batch.words_[t];
    delta.rounds_executed = static_cast<std::uint64_t>(batch.rounds_[t]);
    if (accumulate != nullptr) accumulate->merge(delta);
    program.output(batch, t, scratch.output_);
    finish(t, scratch.output_, batch.rounds_[t], delta);
  }
}

}  // namespace lnc::local
