#include "local/ball_collector.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace lnc::local {
namespace {

Message serialize(const Knowledge& knowledge) {
  Message msg;
  msg.push_back(knowledge.size());
  for (const auto& [id, record] : knowledge) {
    msg.push_back(id);
    msg.push_back(record.input);
    msg.push_back(record.adjacency_known ? 1 : 0);
    msg.push_back(record.neighbor_ids.size());
    for (ident::Identity nbr : record.neighbor_ids) msg.push_back(nbr);
  }
  return msg;
}

void merge_from(Knowledge& knowledge, const Message& msg) {
  std::size_t pos = 0;
  LNC_ASSERT(!msg.empty());
  const std::uint64_t count = msg[pos++];
  for (std::uint64_t i = 0; i < count; ++i) {
    KnownNode incoming;
    incoming.id = msg[pos++];
    incoming.input = msg[pos++];
    incoming.adjacency_known = msg[pos++] != 0;
    const std::uint64_t nbr_count = msg[pos++];
    incoming.neighbor_ids.reserve(nbr_count);
    for (std::uint64_t j = 0; j < nbr_count; ++j) {
      incoming.neighbor_ids.push_back(msg[pos++]);
    }
    auto [it, inserted] = knowledge.try_emplace(incoming.id, incoming);
    if (!inserted && incoming.adjacency_known &&
        !it->second.adjacency_known) {
      it->second = std::move(incoming);
    }
  }
  LNC_ASSERT(pos == msg.size());
}

class CollectorProgram final : public NodeProgram {
 public:
  explicit CollectorProgram(int radius) : radius_(radius) {}

  bool init(const NodeEnv& env) override {
    self_id_ = env.id;
    KnownNode self;
    self.id = env.id;
    self.input = env.input;
    knowledge_.emplace(env.id, std::move(self));
    return radius_ == 0;
  }

  Message send(int /*round*/) override { return serialize(knowledge_); }

  bool receive(int round, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) merge_from(knowledge_, msg);
    if (round == 1) {
      // The round-1 messages reveal the neighbors' identities: the node
      // now knows its own adjacency and can flood it from round 2 on.
      KnownNode& self = knowledge_.at(self_id_);
      self.adjacency_known = true;
      self.neighbor_ids.clear();
      for (const Message& msg : inbox) {
        // Each round-1 message contains exactly the sender's own record:
        // [count=1, id, input, adj_flag=0, nbr_count=0].
        LNC_ASSERT(msg.size() == 5);
        self.neighbor_ids.push_back(msg[1]);
      }
      std::sort(self.neighbor_ids.begin(), self.neighbor_ids.end());
    }
    return round >= radius_;
  }

  Label output() const override { return 0; }

  const Knowledge& knowledge() const noexcept { return knowledge_; }

 private:
  int radius_;
  ident::Identity self_id_ = 0;
  Knowledge knowledge_;
};

class CollectorFactory final : public NodeProgramFactory {
 public:
  explicit CollectorFactory(int radius) : radius_(radius) {}

  std::string name() const override { return "ball-collector"; }

  std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<CollectorProgram>(radius_);
  }

 private:
  int radius_;
};

}  // namespace

std::vector<Knowledge> collect_balls(const Instance& inst, int radius,
                                     const EngineOptions& options) {
  LNC_EXPECTS(radius >= 0);
  CollectorFactory factory(radius);
  EngineResult result = run_engine(inst, factory, options);
  LNC_ASSERT(result.completed);
  LNC_ASSERT(result.rounds == radius || (radius == 0 && result.rounds == 0));
  std::vector<Knowledge> tables;
  tables.reserve(result.programs.size());
  for (const auto& program : result.programs) {
    // EngineResult::programs[v] is node v's program by construction.
    tables.push_back(
        static_cast<const CollectorProgram&>(*program).knowledge());
  }
  return tables;
}

std::vector<std::pair<ident::Identity, ident::Identity>> knowledge_edges(
    const Knowledge& knowledge) {
  std::vector<std::pair<ident::Identity, ident::Identity>> edges;
  for (const auto& [id, record] : knowledge) {
    if (!record.adjacency_known) continue;
    for (ident::Identity nbr : record.neighbor_ids) {
      // Report each edge once; both-known edges would otherwise repeat.
      const auto lo = std::min(id, nbr);
      const auto hi = std::max(id, nbr);
      edges.emplace_back(lo, hi);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace lnc::local
