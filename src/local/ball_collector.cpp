#include "local/ball_collector.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace lnc::local {
namespace {

void serialize(const Knowledge& knowledge, MessageWriter& out) {
  out.push(knowledge.size());
  for (const auto& [id, record] : knowledge) {
    out.push(id);
    out.push(record.input);
    out.push(record.adjacency_known ? 1 : 0);
    out.push(record.neighbor_ids.size());
    for (ident::Identity nbr : record.neighbor_ids) out.push(nbr);
  }
}

void merge_from(Knowledge& knowledge, std::span<const std::uint64_t> msg) {
  std::size_t pos = 0;
  LNC_ASSERT(!msg.empty());
  const std::uint64_t count = msg[pos++];
  for (std::uint64_t i = 0; i < count; ++i) {
    KnownNode incoming;
    incoming.id = msg[pos++];
    incoming.input = msg[pos++];
    incoming.adjacency_known = msg[pos++] != 0;
    const std::uint64_t nbr_count = msg[pos++];
    incoming.neighbor_ids.reserve(nbr_count);
    for (std::uint64_t j = 0; j < nbr_count; ++j) {
      incoming.neighbor_ids.push_back(msg[pos++]);
    }
    auto [it, inserted] = knowledge.try_emplace(incoming.id, incoming);
    if (!inserted && incoming.adjacency_known &&
        !it->second.adjacency_known) {
      it->second = std::move(incoming);
    }
  }
  LNC_ASSERT(pos == msg.size());
}

class CollectorFactory final : public NodeProgramFactory {
 public:
  explicit CollectorFactory(int radius) : radius_(radius) {}

  std::string name() const override { return "ball-collector"; }

  std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<BallCollectorProgram>(radius_);
  }

 private:
  int radius_;
};

}  // namespace

bool BallCollectorProgram::init(const NodeEnv& env) {
  self_id_ = env.id;
  knowledge_.clear();
  KnownNode self;
  self.id = env.id;
  self.input = env.input;
  knowledge_.emplace(env.id, std::move(self));
  return radius_ == 0;
}

void BallCollectorProgram::send(int /*round*/, MessageWriter& out) {
  serialize(knowledge_, out);
}

bool BallCollectorProgram::receive(int round, const Inbox& inbox) {
  for (std::size_t p = 0; p < inbox.size(); ++p) {
    merge_from(knowledge_, inbox[p]);
  }
  if (round == 1) {
    // The round-1 messages reveal the neighbors' identities: the node
    // now knows its own adjacency and can flood it from round 2 on.
    KnownNode& self = knowledge_.at(self_id_);
    self.adjacency_known = true;
    self.neighbor_ids.clear();
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      // Each round-1 message contains exactly the sender's own record:
      // [count=1, id, input, adj_flag=0, nbr_count=0].
      const auto msg = inbox[p];
      LNC_ASSERT(msg.size() == 5);
      self.neighbor_ids.push_back(msg[1]);
    }
    std::sort(self.neighbor_ids.begin(), self.neighbor_ids.end());
  }
  return round >= radius_;
}

void collect_balls_into(const Instance& inst, int radius,
                        const EngineOptions& options,
                        std::vector<Knowledge>& tables) {
  LNC_EXPECTS(radius >= 0);
  CollectorFactory factory(radius);
  EngineOptions engine_options = options;
  engine_options.retain_programs = true;  // the knowledge lives in programs
  EngineResult result = run_engine(inst, factory, engine_options);
  LNC_ASSERT(result.completed);
  LNC_ASSERT(result.rounds == radius || (radius == 0 && result.rounds == 0));
  tables.resize(result.programs.size());
  for (std::size_t v = 0; v < result.programs.size(); ++v) {
    // EngineResult::programs[v] is node v's program by construction.
    tables[v] = static_cast<BallCollectorProgram&>(*result.programs[v])
                    .take_knowledge();
  }
}

std::vector<Knowledge> collect_balls(const Instance& inst, int radius,
                                     const EngineOptions& options) {
  std::vector<Knowledge> tables;
  collect_balls_into(inst, radius, options, tables);
  return tables;
}

std::vector<std::pair<ident::Identity, ident::Identity>> knowledge_edges(
    const Knowledge& knowledge) {
  std::vector<std::pair<ident::Identity, ident::Identity>> edges;
  for (const auto& [id, record] : knowledge) {
    if (!record.adjacency_known) continue;
    for (ident::Identity nbr : record.neighbor_ids) {
      // Report each edge once; both-known edges would otherwise repeat.
      const auto lo = std::min(id, nbr);
      const auto hi = std::max(id, nbr);
      edges.emplace_back(lo, hi);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace lnc::local
