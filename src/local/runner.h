// Ball-based execution: the paper's observation (section 2.1.1) that a
// t-round algorithm is equivalent to "every node inspects B_G(v, t) and
// maps what it sees to an output". Construction algorithms and deciders in
// liblnc are written against this view; tests/local_test.cpp checks the
// equivalence against the message-passing engine via the ball-collection
// protocol.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "graph/ball.h"
#include "local/instance.h"
#include "local/telemetry.h"
#include "rand/coins.h"
#include "stats/threadpool.h"

namespace lnc::local {

/// Everything a node sees after t rounds: the ball, plus per-member labels.
/// Members are addressed by ball-local index; 0 is the center.
///
/// Algorithms MUST read identities through identity() — the order-invariant
/// wrapper (algo/order_invariant.h) substitutes canonical rank identities
/// via `id_override`, which is keyed by ball-LOCAL index.
struct View {
  const graph::BallView* ball = nullptr;
  const Instance* instance = nullptr;
  std::optional<std::uint64_t> n_nodes;  ///< set when knowledge of n granted
  const std::vector<ident::Identity>* id_override = nullptr;

  ident::Identity identity(graph::NodeId local) const noexcept {
    if (id_override != nullptr) return (*id_override)[local];
    return instance->identity_of(ball->to_original(local));
  }
  Label input(graph::NodeId local) const noexcept {
    return instance->input_of(ball->to_original(local));
  }
  ident::Identity center_identity() const noexcept { return identity(0); }
  Label center_input() const noexcept { return input(0); }
};

/// A deterministic constant-round construction algorithm in ball form.
class BallAlgorithm {
 public:
  virtual ~BallAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual int radius() const = 0;
  virtual Label compute(const View& view) const = 0;
};

/// A Monte-Carlo construction algorithm in ball form. The CoinProvider
/// models "random bits may be exchanged": the node may read the coins of
/// any member of its ball (it addresses them by identity), exactly the
/// power the model grants after t rounds of communication.
class RandomizedBallAlgorithm {
 public:
  virtual ~RandomizedBallAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual int radius() const = 0;
  virtual Label compute(const View& view,
                        const rand::CoinProvider& coins) const = 0;
};

/// A reusable ball-collection slot: the view's vectors and the scratch's
/// visited map keep their capacity across collect() calls. The direct ball
/// runner holds one per worker, so the steady-state node inspection
/// allocates nothing (ROADMAP "BallView arenas").
struct BallWorkspace {
  graph::BallView ball;
  graph::BallScratch scratch;
};

struct RunOptions {
  bool grant_n = false;
  const stats::ThreadPool* pool = nullptr;

  /// When set, the run charges its modeled communication volume here (see
  /// local/telemetry.h: per inspected ball, one announcement per member
  /// and the ball's canonical encoding in words; max(radius, 1) rounds
  /// per run). Charges are pure functions of the instance and radius —
  /// deterministic across thread counts.
  Telemetry* telemetry = nullptr;

  /// Reusable ball storage for sequential runs (the batched Monte-Carlo
  /// path passes its worker's slot, keeping capacity warm ACROSS trials).
  /// Null still reuses one call-local workspace across the nodes of this
  /// run; pooled runs manage one workspace per pool worker internally.
  BallWorkspace* ball = nullptr;

  /// Optional fault censoring (src/fault/): every ball is collected inside
  /// the realized fault subgraph the filter describes. A node whose CENTER
  /// is blocked is crashed: it computes nothing and outputs the 0
  /// tombstone (filters are pure, so the censored run stays a pure
  /// function of the trial). Modeled telemetry charges only the balls of
  /// surviving nodes — crashed nodes neither announce nor read.
  const graph::BallFilter* ball_filter = nullptr;
};

/// Runs a deterministic ball algorithm at every node.
Labeling run_ball_algorithm(const Instance& inst, const BallAlgorithm& algo,
                            const RunOptions& options = {});

/// Runs a randomized ball algorithm at every node with the given coins
/// (fix the seed upstream to realize a fixed random string sigma).
Labeling run_ball_algorithm(const Instance& inst,
                            const RandomizedBallAlgorithm& algo,
                            const rand::CoinProvider& coins,
                            const RunOptions& options = {});

/// In-place variants writing into a caller-owned labeling (resized to
/// node_count). The batched Monte-Carlo path reuses one labeling per
/// worker across trials instead of allocating one per trial.
void run_ball_algorithm_into(const Instance& inst, const BallAlgorithm& algo,
                             Labeling& output, const RunOptions& options = {});
void run_ball_algorithm_into(const Instance& inst,
                             const RandomizedBallAlgorithm& algo,
                             const rand::CoinProvider& coins, Labeling& output,
                             const RunOptions& options = {});

/// Adapts a deterministic BallAlgorithm to the randomized interface
/// (ignores the coins); convenient for experiments comparing both kinds.
class AsRandomized final : public RandomizedBallAlgorithm {
 public:
  explicit AsRandomized(const BallAlgorithm& inner) : inner_(&inner) {}
  std::string name() const override { return inner_->name(); }
  int radius() const override { return inner_->radius(); }
  Label compute(const View& view,
                const rand::CoinProvider& /*coins*/) const override {
    return inner_->compute(view);
  }

 private:
  const BallAlgorithm* inner_;
};

}  // namespace lnc::local
