#include "local/instance.h"

#include "util/assert.h"

namespace lnc::local {

void Instance::validate() const {
  LNC_EXPECTS(ids.size() == g.node_count());
  LNC_EXPECTS(input.empty() || input.size() == g.node_count());
}

Instance make_instance(graph::Graph g, ident::IdAssignment ids) {
  Instance inst;
  inst.g = std::move(g);
  inst.ids = std::move(ids);
  inst.validate();
  return inst;
}

int label_bits(Label value) noexcept {
  int bits = 0;
  while (value != 0) {
    value >>= 1;
    ++bits;
  }
  return bits;
}

bool promise_holds(const graph::Graph& g, std::span<const Label> x,
                   std::span<const Label> y, int k) noexcept {
  if (g.max_degree() > static_cast<graph::NodeId>(k)) return false;
  for (Label value : x) {
    if (label_bits(value) > k) return false;
  }
  for (Label value : y) {
    if (label_bits(value) > k) return false;
  }
  return true;
}

}  // namespace lnc::local
