#include "local/instance.h"

#include "util/assert.h"

namespace lnc::local {

void Instance::validate() const {
  if (implicit != nullptr) {
    // Implicit instances never hold O(n) state: no CSR, no stored ids,
    // no stored inputs.
    LNC_EXPECTS(g.node_count() == 0);
    LNC_EXPECTS(ids.empty());
    LNC_EXPECTS(input.empty());
    return;
  }
  LNC_EXPECTS(ids.size() == g.node_count());
  LNC_EXPECTS(input.empty() || input.size() == g.node_count());
}

Instance make_instance(graph::Graph g, ident::IdAssignment ids) {
  Instance inst;
  inst.g = std::move(g);
  inst.ids = std::move(ids);
  inst.validate();
  return inst;
}

Instance make_implicit_instance(
    std::shared_ptr<const graph::ImplicitTopology> topology) {
  LNC_EXPECTS(topology != nullptr);
  Instance inst;
  inst.implicit = std::move(topology);
  inst.validate();
  return inst;
}

int label_bits(Label value) noexcept {
  int bits = 0;
  while (value != 0) {
    value >>= 1;
    ++bits;
  }
  return bits;
}

bool promise_holds(const graph::Graph& g, std::span<const Label> x,
                   std::span<const Label> y, int k) noexcept {
  if (g.max_degree() > static_cast<graph::NodeId>(k)) return false;
  for (Label value : x) {
    if (label_bits(value) > k) return false;
  }
  for (Label value : y) {
    if (label_bits(value) > k) return false;
  }
  return true;
}

}  // namespace lnc::local
