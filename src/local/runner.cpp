#include "local/runner.h"

#include <algorithm>
#include <atomic>

namespace lnc::local {
namespace {

template <typename ComputeAtNode>
void run_per_node(const Instance& inst, int radius, const RunOptions& options,
                  Labeling& output, ComputeAtNode&& compute) {
  inst.validate();
  const graph::NodeId n = inst.node_count();
  output.assign(n, 0);
  const bool count = options.telemetry != nullptr;
  // Relaxed atomics: uint64 addition commutes, so the totals are
  // bit-identical whatever the node schedule (pool or sequential).
  std::atomic<std::uint64_t> announcements{0};
  std::atomic<std::uint64_t> encoded_words{0};
  std::atomic<std::uint64_t> expansions{0};
  auto body = [&](BallWorkspace& workspace, std::uint64_t v) {
    if (options.ball_filter != nullptr &&
        options.ball_filter->node_blocked(static_cast<graph::NodeId>(v))) {
      output[v] = 0;  // crashed center: tombstone, no collection, no charge
      return;
    }
    workspace.ball.collect(inst.topology(), static_cast<graph::NodeId>(v),
                           radius, workspace.scratch, options.ball_filter);
    const graph::BallView& ball = workspace.ball;
    View view;
    view.ball = &ball;
    view.instance = &inst;
    if (options.grant_n) view.n_nodes = n;
    output[v] = compute(view);
    if (count) {
      announcements.fetch_add(ball.size(), std::memory_order_relaxed);
      encoded_words.fetch_add(ball.encoded_words(),
                              std::memory_order_relaxed);
      expansions.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (options.pool != nullptr) {
    std::vector<BallWorkspace> workspaces(options.pool->thread_count());
    options.pool->parallel_for_workers(
        n, [&](unsigned worker, std::uint64_t v) {
          body(workspaces[worker], v);
        });
  } else {
    // One workspace for the whole run even without a caller slot — the
    // per-node allocations collapse either way; the caller's slot only
    // adds cross-call (per-trial) reuse.
    BallWorkspace local_workspace;
    BallWorkspace& workspace =
        options.ball != nullptr ? *options.ball : local_workspace;
    for (graph::NodeId v = 0; v < n; ++v) body(workspace, v);
  }
  if (count) {
    // The simulation-theorem charge (local/telemetry.h): delivering every
    // inspected view, over max(radius, 1) rounds (wake-up included).
    Telemetry& telemetry = *options.telemetry;
    telemetry.messages_sent += announcements.load(std::memory_order_relaxed);
    telemetry.words_sent += encoded_words.load(std::memory_order_relaxed);
    telemetry.rounds_executed +=
        static_cast<std::uint64_t>(std::max(radius, 1));
    telemetry.ball_expansions += expansions.load(std::memory_order_relaxed);
  }
}

}  // namespace

void run_ball_algorithm_into(const Instance& inst, const BallAlgorithm& algo,
                             Labeling& output, const RunOptions& options) {
  run_per_node(inst, algo.radius(), options, output,
               [&](const View& view) { return algo.compute(view); });
}

void run_ball_algorithm_into(const Instance& inst,
                             const RandomizedBallAlgorithm& algo,
                             const rand::CoinProvider& coins, Labeling& output,
                             const RunOptions& options) {
  run_per_node(inst, algo.radius(), options, output, [&](const View& view) {
    return algo.compute(view, coins);
  });
}

Labeling run_ball_algorithm(const Instance& inst, const BallAlgorithm& algo,
                            const RunOptions& options) {
  Labeling output;
  run_ball_algorithm_into(inst, algo, output, options);
  return output;
}

Labeling run_ball_algorithm(const Instance& inst,
                            const RandomizedBallAlgorithm& algo,
                            const rand::CoinProvider& coins,
                            const RunOptions& options) {
  Labeling output;
  run_ball_algorithm_into(inst, algo, coins, output, options);
  return output;
}

}  // namespace lnc::local
