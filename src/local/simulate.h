// The simulation theorem (paper, section 2.1.1), as executable code:
//
//   "an algorithm A performing in t rounds can be simulated by an
//    algorithm B executing two phases: First, every node v collects all
//    data from nodes at distance at most t from v; Second, every node
//    simulates the execution of A in B_G(v, t)."
//
// run_via_messages IS that algorithm B: it runs the flooding collector for
// t rounds through the synchronous engine, reconstructs each node's ball
// from its knowledge table (identities, inputs, edges), and applies the
// ball algorithm to the reconstruction. tests/simulate_test.cpp checks it
// produces exactly the same outputs as the direct ball runner for every
// algorithm that reads only model-visible data (identities, inputs,
// ball structure) — closing the loop between the two execution models.
#pragma once

#include "local/ball_collector.h"
#include "local/runner.h"

namespace lnc::local {

struct SimulationResult {
  Labeling output;
  int rounds = 0;  ///< always the algorithm's radius (flooding rounds)
};

/// Runs `algo` as a two-phase message-passing algorithm.
SimulationResult run_via_messages(const Instance& inst,
                                  const BallAlgorithm& algo,
                                  const EngineOptions& options = {});

/// The randomized variant: phase two applies the Monte-Carlo ball
/// algorithm to the reconstruction with the given coins. Sound because
/// coins are addressed by identity (the model's "exchange random bits"
/// power survives the reconstruction unchanged).
SimulationResult run_via_messages(const Instance& inst,
                                  const RandomizedBallAlgorithm& algo,
                                  const rand::CoinProvider& coins,
                                  const EngineOptions& options = {});

/// The ball reconstructed from a knowledge table: a standalone instance
/// whose node 0..m-1 are the known identities in ascending order, plus
/// the local index of the collecting node (the center). Exposed for tests
/// and for writing custom two-phase algorithms.
struct ReconstructedBall {
  Instance instance;        ///< graph + inputs + identities, ball-only
  graph::NodeId center = 0; ///< index of the collector in `instance`
};

ReconstructedBall reconstruct_ball(const Knowledge& knowledge,
                                   ident::Identity center_identity);

}  // namespace lnc::local
