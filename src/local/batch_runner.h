// The unified batched experiment executor.
//
// Every probabilistic quantity in the paper — the construction success
// probability r, the decider guarantee p, the Claim-2 beta, the Claim-3
// boosted acceptance — is an average over millions of independent trials.
// The seed routed those trials through four disjoint entry points that each
// re-allocated programs, message buffers, and RNGs per trial. This header
// is the single replacement:
//
//   ExperimentPlan  — what one trial does (a {0,1} success test, a
//                     real-valued statistic, or a counter update), how many
//                     trials, and the base seed;
//   BatchRunner     — executes a plan with trial-granularity parallelism
//                     over stats::ThreadPool, one reusable WorkerArena per
//                     worker, and per-trial Philox streams derived as
//                     stats::trial_seed(base_seed, index), so results are
//                     bit-for-bit identical across thread counts.
//
// Plan factories for the common workload shapes live in local/experiment.h
// (construction algorithms) and decide/experiment_plans.h (deciders).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "local/ball_collector.h"
#include "local/engine.h"
#include "local/runner.h"
#include "local/vector_engine.h"
#include "obs/metrics.h"
#include "rand/coins.h"
#include "stats/montecarlo.h"
#include "stats/threadpool.h"

namespace lnc::obs {
class Progress;
}  // namespace lnc::obs

namespace lnc::local {

/// A sampled input-output configuration — the storage unit of plans that
/// draw a fresh (instance, output) per trial (decide/guarantee.h samplers).
/// Samplers whose topology is fixed across trials set `shared_instance` to
/// an interned instance (scenario/registry.h) and only refill `output`;
/// consumers read the instance through inst().
struct SampledConfiguration {
  Instance instance;  ///< owned storage (used when shared_instance is null)
  Labeling output;
  std::shared_ptr<const Instance> shared_instance;

  const Instance& inst() const noexcept {
    return shared_instance != nullptr ? *shared_instance : instance;
  }
};

/// Per-worker reusable scratch: engine arenas, a labeling buffer, and
/// knowledge tables survive from one trial to the next, so the steady-state
/// trial allocates (almost) nothing. Not thread-safe; the runner hands each
/// worker its own arena.
class WorkerArena {
 public:
  EngineScratch& engine() noexcept { return engine_; }
  Labeling& labeling() noexcept { return labeling_; }
  std::vector<Knowledge>& knowledge() noexcept { return knowledge_; }

  /// This worker's reusable ball-collection slot: the direct ball runner
  /// keeps view and visited-map capacity warm across trials instead of
  /// allocating five vectors per node per trial.
  BallWorkspace& ball_workspace() noexcept { return ball_; }

  /// Second reusable ball slot for trial bodies that hold two balls at
  /// once: the streaming implicit path (decide/experiment_plans.cpp)
  /// re-expands each decision-ball member's construction ball while the
  /// decision ball stays live.
  BallWorkspace& member_ball_workspace() noexcept { return member_ball_; }

  /// Ball-local output buffer for the streaming implicit path — sized by
  /// the current ball, never by n.
  Labeling& ball_outputs() noexcept { return ball_outputs_; }

  /// This worker's telemetry accumulator (lives in the engine scratch so
  /// engine runs on this arena count into it automatically; ball-mode and
  /// decider paths charge it explicitly). BatchRunner resets it per batch
  /// and merges the per-worker blocks into the batch result.
  Telemetry& telemetry() noexcept { return engine_.telemetry(); }
  const Telemetry& telemetry() const noexcept { return engine_.telemetry(); }

  /// This worker's observability metrics (timing histograms and the
  /// like). Populated only while obs::metrics_enabled(); reset and
  /// merged by BatchRunner exactly like telemetry(), but NEVER part of
  /// the deterministic contract — metrics carry wall-clock measurements.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// This worker's reusable trial-vectorized batch storage (SoA arrays,
  /// the vector program, and the per-batch coin-key buffer stay warm
  /// across batches, mirroring what engine() does for the scalar path).
  VectorScratch& vector_scratch() noexcept { return vector_; }

  /// Per-worker sampled-configuration cache. Sampling plans keep their
  /// sample in this slot so instance/output capacity persists across
  /// trials, and an exact (owner, seed) repeat skips resampling entirely.
  /// `owner` disambiguates plans sharing a runner — use a token minted
  /// uniquely per plan (see guarantee_side_plan), NOT the address of a
  /// sampler or other short-lived object: a freed address can be reused
  /// by a different plan, which would replay a stale configuration.
  SampledConfiguration& sample_slot() noexcept { return sample_; }
  bool sample_matches(const void* owner, std::uint64_t seed) const noexcept {
    return sample_valid_ && sample_owner_ == owner && sample_seed_ == seed;
  }
  void note_sample(const void* owner, std::uint64_t seed) noexcept {
    sample_valid_ = true;
    sample_owner_ = owner;
    sample_seed_ = seed;
  }

 private:
  EngineScratch engine_;
  Labeling labeling_;
  std::vector<Knowledge> knowledge_;
  BallWorkspace ball_;
  BallWorkspace member_ball_;
  Labeling ball_outputs_;
  VectorScratch vector_;
  obs::MetricsRegistry metrics_;
  SampledConfiguration sample_;
  const void* sample_owner_ = nullptr;
  std::uint64_t sample_seed_ = 0;
  bool sample_valid_ = false;
};

/// Standard per-trial seed-derivation tags. Keeping them in one place is
/// what makes the construction and decision streams of every experiment
/// independent yet reproducible.
inline constexpr std::uint64_t kConstructionSeedTag = 0xC0;
inline constexpr std::uint64_t kDecisionSeedTag = 0xD0;
inline constexpr std::uint64_t kSampleSeedTag = 0x15;
inline constexpr std::uint64_t kFaultSeedTag = 0xFA;

/// Everything a trial body receives: its index, its private seed
/// (stats::trial_seed(base_seed, index) — a pure function of the index, so
/// the trial-to-worker assignment cannot influence results), and the
/// executing worker's arena. BatchRunner ALWAYS populates `arena`; trial
/// bodies may dereference it unconditionally.
struct TrialEnv {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  WorkerArena* arena = nullptr;

  /// Derives a sub-seed for an auxiliary purpose within the trial.
  std::uint64_t derive(std::uint64_t tag) const noexcept {
    return rand::mix_keys(seed, tag);
  }
  /// The trial's construction coins (the paper's sigma in Rand(C)).
  rand::PhiloxCoins construction_coins() const noexcept {
    return {derive(kConstructionSeedTag), rand::Stream::kConstruction};
  }
  /// The trial's decision coins (the paper's sigma' in Rand(D)).
  rand::PhiloxCoins decision_coins() const noexcept {
    return {derive(kDecisionSeedTag), rand::Stream::kDecision};
  }
  /// The trial's adversity coins — the fault model's private stream,
  /// disjoint from both algorithms' randomness by construction.
  rand::PhiloxCoins fault_coins() const noexcept {
    return {derive(kFaultSeedTag), rand::Stream::kFault};
  }
  /// Seed for per-trial instance/configuration sampling.
  std::uint64_t sample_seed() const noexcept {
    return derive(kSampleSeedTag);
  }
};

/// Opt-in trial-vectorized execution of a plan. When `factory` (whose
/// create_vector() must be non-null) and `instance` are set, the runner
/// may advance whole batches of trials in lockstep on the SoA backend
/// (local/vector_engine.h) instead of calling the scalar per-trial
/// callback; per trial, the workload-matching finish hook then turns the
/// construction's output into the tallied quantity. The scalar callbacks
/// stay populated regardless — they are the naive/batched path and the
/// bit-identity reference.
struct VectorExec {
  const Instance* instance = nullptr;
  const NodeProgramFactory* factory = nullptr;

  /// Finish hooks (exactly the one matching the plan's workload is set):
  /// each receives the trial env, the vector run's output labeling (valid
  /// only during the call), the executed round count, and the trial's
  /// deterministic telemetry delta — everything the scalar trial body
  /// would have derived from its own construction run.
  std::function<bool(const TrialEnv&, const Labeling&, int, const Telemetry&)>
      success_finish;
  std::function<double(const TrialEnv&, const Labeling&, int,
                       const Telemetry&)>
      value_finish;
  std::function<void(const TrialEnv&, const Labeling&, int, const Telemetry&,
                     std::span<std::uint64_t>)>
      count_finish;

  bool engaged() const noexcept {
    return instance != nullptr && factory != nullptr;
  }
};

/// A declarative batch of independent trials. Exactly one of the trial
/// callbacks is set; the others stay null.
struct ExperimentPlan {
  std::string name;
  std::uint64_t trials = 0;
  std::uint64_t base_seed = 0;

  /// {0,1}-valued trial: BatchRunner::run reports the success proportion.
  std::function<bool(const TrialEnv&)> success_trial;

  /// Real-valued trial: BatchRunner::run_mean reports mean and stddev.
  std::function<double(const TrialEnv&)> value_trial;

  /// Counter trial: adds into `counters` accumulator slots; slots are
  /// summed across workers (order-free, hence reproducible).
  std::function<void(const TrialEnv&, std::span<std::uint64_t>)> count_trial;
  std::size_t counters = 0;

  /// Optional vectorized execution of the same trials (see VectorExec).
  VectorExec vector;

  /// Backend selection and vector-backend tuning. kAuto resolves to
  /// kBatched here (scenario compilation resolves kAuto through
  /// OptimizationConfig::automatic before the plan reaches the runner);
  /// kVectorized transparently falls back to kBatched when `vector` is
  /// not engaged.
  OptimizationConfig optimization;
};

/// The three trial shapes a plan (and a scenario) can declare. Success
/// plans tally {0,1} outcomes into a Wilson estimate; value plans
/// average a real statistic; counter plans sum integer slots.
enum class WorkloadKind { kSuccess, kValue, kCounter };

const char* to_string(WorkloadKind kind) noexcept;

/// Inverse of to_string — the one parser behind spec files, shard files,
/// and the CLI flag. Nullopt on an unknown tag (callers own the error
/// message).
std::optional<WorkloadKind> workload_from_string(
    std::string_view text) noexcept;

/// The workload of a plan, read off which trial callback is set
/// (asserts that exactly the corresponding callback is present).
WorkloadKind workload_kind(const ExperimentPlan& plan);

/// Fully custom plans for trial shapes the factories don't cover. The
/// callback must derive all randomness from the TrialEnv.
ExperimentPlan custom_plan(std::string name, std::uint64_t trials,
                           std::uint64_t base_seed,
                           std::function<bool(const TrialEnv&)> trial);
ExperimentPlan custom_value_plan(std::string name, std::uint64_t trials,
                                 std::uint64_t base_seed,
                                 std::function<double(const TrialEnv&)> trial);
ExperimentPlan custom_count_plan(
    std::string name, std::uint64_t trials, std::uint64_t base_seed,
    std::size_t counters,
    std::function<void(const TrialEnv&, std::span<std::uint64_t>)> trial);

/// A contiguous trial-index subrange [begin, end) of a plan — the unit of
/// cross-process sharding. Per-trial seeds are pure functions of the trial
/// index, so executing a plan as any partition of ranges and summing the
/// tallies is bit-identical to one full run.
struct TrialRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t count() const noexcept { return end - begin; }
};

/// The range of shard `shard` out of `shard_count` near-equal contiguous
/// shards of [0, trials) (earlier shards take the remainder). Requires
/// shard < shard_count.
TrialRange shard_range(std::uint64_t trials, unsigned shard,
                       unsigned shard_count);

/// Raw tally of one executed trial range. Which block is meaningful
/// depends on the plan's workload: success plans fill `successes`, value
/// plans fill the exact sum/sum-of-squares accumulators, counter plans
/// fill `counts`. All blocks merge order-free, so any shard partition
/// reproduces the unsharded run's numbers bit for bit.
struct ShardTally {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;  ///< trials executed in this range

  /// Value-workload accumulators: the trial statistics and their squares
  /// summed EXACTLY (stats::ExactSum), which is what makes sharded means
  /// merge to the unsharded mean bit for bit — the floating-point
  /// analogue of the integer success tally.
  stats::ExactSum value_sum;
  stats::ExactSum value_sum_sq;

  /// Counter-workload slot sums (plan.counters entries; empty for other
  /// workloads).
  std::vector<std::uint64_t> counts;

  /// Communication volume accumulated executing this range. The
  /// deterministic counters are per-trial sums, so shard telemetries
  /// merged over a partition of [0, trials) equal the unsharded run's
  /// counters bit for bit.
  Telemetry telemetry;
};

/// Sums shard tallies into a full-plan estimate. Bit-identical to
/// BatchRunner::run on the whole plan whenever the tallies came from a
/// partition of [0, plan.trials).
stats::Estimate merge_tallies(std::span<const ShardTally> tallies);

/// Merges value-workload tallies into the full-plan mean estimate —
/// exact-sum accumulation, so the result equals BatchRunner::run_mean on
/// the whole plan bit for bit for any partition of [0, plan.trials).
stats::MeanEstimate merge_value_tallies(std::span<const ShardTally> tallies);

/// Element-wise sum of counter-workload tallies (empty `counts` entries
/// are treated as all-zero; non-empty entries must agree on width).
std::vector<std::uint64_t> merge_count_tallies(
    std::span<const ShardTally> tallies);

/// Merges the telemetry blocks of shard tallies (the telemetry
/// counterpart of merge_tallies).
Telemetry merge_telemetries(std::span<const ShardTally> tallies);

/// Executes ExperimentPlans. Arenas persist across run() calls, so a
/// runner reused for a sweep keeps its scratch warm. Not thread-safe;
/// use one runner per caller thread.
class BatchRunner {
 public:
  /// null pool => sequential execution with a single arena.
  explicit BatchRunner(const stats::ThreadPool* pool = nullptr);

  unsigned worker_count() const noexcept;

  /// Runs a success_trial plan; Wilson-interval estimate of Pr[success].
  stats::Estimate run(const ExperimentPlan& plan);

  /// Runs only the trials of a plan inside `range` — one shard of a
  /// cross-process run, for any workload kind. Merge with merge_tallies
  /// / merge_value_tallies / merge_count_tallies per the plan's kind.
  ShardTally run_shard(const ExperimentPlan& plan, TrialRange range);

  /// Runs a value_trial plan (run_shard over the full range, finalized
  /// with stats::finalize_mean_exact).
  stats::MeanEstimate run_mean(const ExperimentPlan& plan);

  /// Runs a count_trial plan; returns the `plan.counters` summed slots.
  std::vector<std::uint64_t> run_counts(const ExperimentPlan& plan);

  /// Telemetry of the most recent run/run_shard/run_mean/run_counts:
  /// the per-worker accumulators merged in worker order. Deterministic
  /// counters are bit-identical across thread counts.
  const Telemetry& last_telemetry() const noexcept { return last_telemetry_; }

  /// Observability metrics of the most recent run (per-trial wall-time
  /// and per-batch throughput histograms, merged across workers). Empty
  /// unless obs::metrics_enabled() was set during the run.
  const obs::MetricsRegistry& last_metrics() const noexcept {
    return last_metrics_;
  }

  /// Optional live-progress sink: when set, every completed trial ticks
  /// the heartbeat. Timing-only; never affects results.
  void set_progress(obs::Progress* progress) noexcept {
    progress_ = progress;
  }

 private:
  template <typename Body>
  void for_each_trial(const ExperimentPlan& plan, TrialRange range,
                      bool fresh_arenas, Body&& body);

  /// Vectorized dispatch: cuts `range` into consecutive lockstep batches
  /// of plan.optimization.batch_trials (a pure function of the range, NOT
  /// of the thread count) and runs each through run_vector_batch on the
  /// executing worker's scratch. `body` sees one call per trial.
  template <typename Body>
  void for_each_vector_trial(const ExperimentPlan& plan, TrialRange range,
                             Body&& body);

  /// Clears per-worker accumulators before a batch / merges them after.
  void reset_worker_telemetry();
  Telemetry merged_worker_telemetry();
  void reset_worker_metrics();
  obs::MetricsRegistry merged_worker_metrics();

  const stats::ThreadPool* pool_;
  std::vector<WorkerArena> arenas_;
  Telemetry last_telemetry_;
  obs::MetricsRegistry last_metrics_;
  obs::Progress* progress_ = nullptr;
};

}  // namespace lnc::local
