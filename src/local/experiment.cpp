#include "local/experiment.h"

#include <optional>
#include <utility>

#include "fault/fault.h"
#include "util/assert.h"

namespace lnc::local {
namespace {

bool fault_engaged(const ExecOptions& options) {
  return options.fault != nullptr && !options.fault->trivial();
}

/// Shared kBalls fault plumbing: censor the run and charge the realized
/// faults (once per trial — this is the ball path's ONLY charging site).
template <typename RunBody>
void run_censored_balls(const Instance& inst, const ExecOptions& options,
                        RunOptions& run_options, RunBody&& run) {
  std::optional<fault::BallCensor> censor;
  if (fault_engaged(options)) {
    LNC_EXPECTS(options.fault_coins != nullptr &&
                "non-trivial fault model requires its coin stream");
    censor.emplace(*options.fault, *options.fault_coins,
                   [&inst](graph::NodeId v) { return inst.identity_of(v); });
    run_options.ball_filter = &*censor;
  }
  run();
  if (censor.has_value() && options.arena != nullptr) {
    charge_fault_telemetry(inst, *options.fault, *options.fault_coins,
                           options.arena->telemetry());
  }
}

/// Per-node compute step shared by the messages and two-phase modes.
using ComputeFromView = std::function<Label(const View&)>;

/// The simulation theorem executed inside the node: flood for t rounds
/// (inherited collector behavior), then reconstruct B_G(v, t) from the
/// knowledge table and apply the ball algorithm locally.
class SimulatingProgram final : public BallCollectorProgram {
 public:
  SimulatingProgram(int radius, const ComputeFromView* compute)
      : BallCollectorProgram(radius), compute_(compute) {}

  bool init(const NodeEnv& env) override {
    n_nodes_ = env.n_nodes;
    const bool done = BallCollectorProgram::init(env);
    if (done) finish();  // zero-round algorithm: compute immediately
    return done;
  }

  bool receive(int round, const Inbox& inbox) override {
    const bool done = BallCollectorProgram::receive(round, inbox);
    if (done) finish();
    return done;
  }

  Label output() const override { return out_; }

 private:
  void finish() {
    const ReconstructedBall ball =
        reconstruct_ball(knowledge(), self_identity());
    const graph::BallView view_ball(ball.instance.g, ball.center, radius());
    View view;
    view.ball = &view_ball;
    view.instance = &ball.instance;
    view.n_nodes = n_nodes_;
    out_ = (*compute_)(view);
  }

  const ComputeFromView* compute_;
  std::optional<std::uint64_t> n_nodes_;
  Label out_ = 0;
};

class SimulatingFactory final : public NodeProgramFactory {
 public:
  SimulatingFactory(std::string name, int radius, ComputeFromView compute)
      : name_(std::move(name)),
        radius_(radius),
        compute_(std::move(compute)) {}

  std::string name() const override { return name_ + "@messages"; }

  std::unique_ptr<NodeProgram> create() const override {
    return std::make_unique<SimulatingProgram>(radius_, &compute_);
  }

 private:
  std::string name_;
  int radius_;
  ComputeFromView compute_;
};

void run_messages_mode(const Instance& inst, const std::string& name,
                       int radius, ComputeFromView compute, Labeling& output,
                       const ExecOptions& options) {
  SimulatingFactory factory(name, radius, std::move(compute));
  EngineOptions engine_options;
  engine_options.grant_n = options.grant_n;
  if (options.arena != nullptr) {
    engine_options.scratch = &options.arena->engine();
  }
  EngineResult result = run_engine(inst, factory, engine_options);
  LNC_ASSERT(result.completed);
  output = std::move(result.output);
}

void run_two_phase_mode(const Instance& inst, int radius,
                        const ComputeFromView& compute, Labeling& output,
                        const ExecOptions& options) {
  EngineOptions engine_options;
  engine_options.grant_n = options.grant_n;
  std::vector<Knowledge> local_tables;
  std::vector<Knowledge>& tables = options.arena != nullptr
                                       ? options.arena->knowledge()
                                       : local_tables;
  if (options.arena != nullptr) {
    engine_options.scratch = &options.arena->engine();
  }
  collect_balls_into(inst, radius, engine_options, tables);

  const graph::NodeId n = inst.node_count();
  output.assign(n, 0);
  BallWorkspace local_workspace;
  BallWorkspace& workspace = options.arena != nullptr
                                 ? options.arena->ball_workspace()
                                 : local_workspace;
  for (graph::NodeId v = 0; v < n; ++v) {
    const ReconstructedBall ball = reconstruct_ball(tables[v], inst.ids[v]);
    workspace.ball.collect(ball.instance.g, ball.center, radius,
                           workspace.scratch);
    const graph::BallView& view_ball = workspace.ball;
    View view;
    view.ball = &view_ball;
    view.instance = &ball.instance;
    if (options.grant_n) view.n_nodes = n;
    output[v] = compute(view);
  }
  if (options.arena != nullptr) {
    // Phase-one flooding was measured by the engine; phase two only
    // materializes the reconstructed balls in the harness.
    options.arena->telemetry().ball_expansions += n;
  }
}

}  // namespace

void charge_fault_telemetry(const Instance& inst,
                            const fault::FaultModel& model,
                            const rand::CoinProvider& fault_coins,
                            Telemetry& telemetry) {
  const graph::NodeId n = inst.node_count();
  auto failed = [&](graph::NodeId v) {
    return model.ball_node_failed(fault_coins, inst.identity_of(v));
  };
  for (graph::NodeId v = 0; v < n; ++v) {
    if (failed(v)) ++telemetry.nodes_crashed;
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (failed(v)) continue;
    for (graph::NodeId w : inst.g.neighbors(v)) {
      // Each surviving undirected edge is drawn once (lower endpoint).
      if (w <= v || failed(w)) continue;
      switch (model.ball_edge_fault(fault_coins, inst.identity_of(v),
                                    inst.identity_of(w))) {
        case fault::EdgeFault::kDropped:
          ++telemetry.messages_dropped;
          break;
        case fault::EdgeFault::kChurned:
          ++telemetry.edges_churned;
          break;
        case fault::EdgeFault::kNone:
          break;
      }
    }
  }
}

const char* to_string(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kBalls:
      return "balls";
    case ExecMode::kMessages:
      return "messages";
    case ExecMode::kTwoPhase:
      return "two-phase";
  }
  return "?";
}

void run_construction_into(const Instance& inst, const BallAlgorithm& algo,
                           ExecMode mode, Labeling& output,
                           const ExecOptions& options) {
  switch (mode) {
    case ExecMode::kBalls: {
      RunOptions run_options;
      run_options.grant_n = options.grant_n;
      if (options.arena != nullptr) {
        run_options.telemetry = &options.arena->telemetry();
        run_options.ball = &options.arena->ball_workspace();
      }
      run_censored_balls(inst, options, run_options, [&] {
        run_ball_algorithm_into(inst, algo, output, run_options);
      });
      return;
    }
    case ExecMode::kMessages:
      LNC_EXPECTS(!fault_engaged(options) &&
                  "simulation modes do not support fault models");
      run_messages_mode(
          inst, algo.name(), algo.radius(),
          [&algo](const View& view) { return algo.compute(view); }, output,
          options);
      return;
    case ExecMode::kTwoPhase:
      LNC_EXPECTS(!fault_engaged(options) &&
                  "simulation modes do not support fault models");
      run_two_phase_mode(
          inst, algo.radius(),
          [&algo](const View& view) { return algo.compute(view); }, output,
          options);
      return;
  }
}

void run_construction_into(const Instance& inst,
                           const RandomizedBallAlgorithm& algo,
                           const rand::CoinProvider& coins, ExecMode mode,
                           Labeling& output, const ExecOptions& options) {
  switch (mode) {
    case ExecMode::kBalls: {
      RunOptions run_options;
      run_options.grant_n = options.grant_n;
      if (options.arena != nullptr) {
        run_options.telemetry = &options.arena->telemetry();
        run_options.ball = &options.arena->ball_workspace();
      }
      run_censored_balls(inst, options, run_options, [&] {
        run_ball_algorithm_into(inst, algo, coins, output, run_options);
      });
      return;
    }
    case ExecMode::kMessages:
      LNC_EXPECTS(!fault_engaged(options) &&
                  "simulation modes do not support fault models");
      run_messages_mode(
          inst, algo.name(), algo.radius(),
          [&algo, &coins](const View& view) {
            return algo.compute(view, coins);
          },
          output, options);
      return;
    case ExecMode::kTwoPhase:
      LNC_EXPECTS(!fault_engaged(options) &&
                  "simulation modes do not support fault models");
      run_two_phase_mode(
          inst, algo.radius(),
          [&algo, &coins](const View& view) {
            return algo.compute(view, coins);
          },
          output, options);
      return;
  }
}

Labeling run_construction(const Instance& inst, const BallAlgorithm& algo,
                          ExecMode mode, const ExecOptions& options) {
  Labeling output;
  run_construction_into(inst, algo, mode, output, options);
  return output;
}

Labeling run_construction(const Instance& inst,
                          const RandomizedBallAlgorithm& algo,
                          const rand::CoinProvider& coins, ExecMode mode,
                          const ExecOptions& options) {
  Labeling output;
  run_construction_into(inst, algo, coins, mode, output, options);
  return output;
}

ExperimentPlan construction_plan(std::string name, const Instance& inst,
                                 const RandomizedBallAlgorithm& algo,
                                 OutputPredicate predicate,
                                 std::uint64_t trials, std::uint64_t base_seed,
                                 ExecMode mode, bool grant_n,
                                 const fault::FaultModel* fault) {
  ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, &algo, predicate = std::move(predicate), mode,
                        grant_n, fault](const TrialEnv& env) {
    const rand::PhiloxCoins coins = env.construction_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    ExecOptions options;
    options.grant_n = grant_n;
    options.arena = env.arena;
    options.fault = fault;
    options.fault_coins = &fault_coins;
    Labeling& output = env.arena->labeling();
    run_construction_into(inst, algo, coins, mode, output, options);
    return predicate(inst, output);
  };
  return plan;
}

ExperimentPlan construction_value_plan(
    std::string name, const Instance& inst,
    const RandomizedBallAlgorithm& algo, OutputStatistic statistic,
    std::uint64_t trials, std::uint64_t base_seed, ExecMode mode,
    bool grant_n, const fault::FaultModel* fault) {
  ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.value_trial = [&inst, &algo, statistic = std::move(statistic), mode,
                      grant_n, fault](const TrialEnv& env) {
    const rand::PhiloxCoins coins = env.construction_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    ExecOptions options;
    options.grant_n = grant_n;
    options.arena = env.arena;
    options.fault = fault;
    options.fault_coins = &fault_coins;
    Labeling& output = env.arena->labeling();
    run_construction_into(inst, algo, coins, mode, output, options);
    return statistic(inst, output);
  };
  return plan;
}

}  // namespace lnc::local
