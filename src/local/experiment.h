// Unified execution of construction algorithms across the paper's three
// equivalent views of a t-round LOCAL computation (section 2.1.1):
//
//   kBalls     — every node inspects B_G(v, t) directly (the direct ball
//                runner: the fast path);
//   kMessages  — the algorithm runs natively through the synchronous round
//                engine: each node floods its knowledge for t rounds and
//                applies the ball algorithm to its own reconstruction
//                *inside the node program* (the simulation theorem,
//                executed as one engine program);
//   kTwoPhase  — phase one collects balls through the engine, phase two
//                reconstructs and computes in the harness (local/simulate).
//
// tests/batch_test.cpp asserts the three modes agree label for label.
//
// The plan factories below wrap a construction run into an ExperimentPlan
// for local/batch_runner.h — one trial = one fresh construction-coin
// stream, executed against a predicate (success probability) or statistic
// (mean) of the produced labeling.
#pragma once

#include "local/batch_runner.h"
#include "local/runner.h"
#include "local/simulate.h"

namespace lnc::fault {
class FaultModel;
}

namespace lnc::local {

enum class ExecMode { kBalls, kMessages, kTwoPhase };

const char* to_string(ExecMode mode) noexcept;

struct ExecOptions {
  bool grant_n = false;
  /// Reusable per-worker storage; null uses call-local scratch.
  WorkerArena* arena = nullptr;

  /// Optional adversary (src/fault/): when `fault` is non-null and
  /// non-trivial, `fault_coins` must be the trial's dedicated fault
  /// stream. Only kBalls honors faults here — every ball is collected in
  /// the trial's realized fault subgraph and the realized faults are
  /// charged to the arena telemetry once per trial. The simulation modes
  /// (kMessages/kTwoPhase) assert the model away; scenario validation
  /// never routes a faulty spec at them. Engine-backed constructions
  /// apply faults through EngineOptions instead (scenario/builtins.cpp).
  const fault::FaultModel* fault = nullptr;
  const rand::CoinProvider* fault_coins = nullptr;
};

/// Tallies the realized fault subgraph of one trial into `telemetry`:
/// every failed node (nodes_crashed) and, between surviving nodes, every
/// dropped or churned edge (messages_dropped / edges_churned). A pure
/// function of (model, fault coins, instance identities) — the ball
/// path's deterministic fault accounting, charged exactly once per trial
/// by run_construction_into. Requires a materialized instance.
void charge_fault_telemetry(const Instance& inst,
                            const fault::FaultModel& model,
                            const rand::CoinProvider& fault_coins,
                            Telemetry& telemetry);

/// Runs a deterministic construction algorithm in the given mode.
void run_construction_into(const Instance& inst, const BallAlgorithm& algo,
                           ExecMode mode, Labeling& output,
                           const ExecOptions& options = {});
Labeling run_construction(const Instance& inst, const BallAlgorithm& algo,
                          ExecMode mode, const ExecOptions& options = {});

/// Runs a Monte-Carlo construction algorithm in the given mode with the
/// given coins (fix the seed upstream to realize a fixed sigma).
void run_construction_into(const Instance& inst,
                           const RandomizedBallAlgorithm& algo,
                           const rand::CoinProvider& coins, ExecMode mode,
                           Labeling& output, const ExecOptions& options = {});
Labeling run_construction(const Instance& inst,
                          const RandomizedBallAlgorithm& algo,
                          const rand::CoinProvider& coins, ExecMode mode,
                          const ExecOptions& options = {});

/// Per-output success / statistic checks. Callers close over languages,
/// relaxations, or any other acceptance notion.
using OutputPredicate =
    std::function<bool(const Instance&, const Labeling&)>;
using OutputStatistic =
    std::function<double(const Instance&, const Labeling&)>;

/// Pr over fresh construction coins that predicate(inst, C(inst)) holds.
/// The referenced instance, algorithm, and fault model (when non-null: a
/// per-trial fault stream is derived from each TrialEnv) must outlive the
/// plan's run.
ExperimentPlan construction_plan(std::string name, const Instance& inst,
                                 const RandomizedBallAlgorithm& algo,
                                 OutputPredicate predicate,
                                 std::uint64_t trials, std::uint64_t base_seed,
                                 ExecMode mode = ExecMode::kBalls,
                                 bool grant_n = false,
                                 const fault::FaultModel* fault = nullptr);

/// Mean over fresh construction coins of statistic(inst, C(inst)).
ExperimentPlan construction_value_plan(
    std::string name, const Instance& inst,
    const RandomizedBallAlgorithm& algo, OutputStatistic statistic,
    std::uint64_t trials, std::uint64_t base_seed,
    ExecMode mode = ExecMode::kBalls, bool grant_n = false,
    const fault::FaultModel* fault = nullptr);

}  // namespace lnc::local
