// Instances and configurations (paper, section 2.2.1).
//
//   input configuration        (G, x)
//   input-output configuration (G, (x, y))
//   instance                   (G, x, id)
//
// Inputs and outputs are per-node labels. The paper takes binary strings;
// under the promise F_k their length is at most k bits, so a 64-bit word
// loses nothing for k <= 64 and keeps the hot paths allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/implicit.h"
#include "ident/identity.h"

namespace lnc::local {

/// A node label (input or output value). Bit-length bounded by the promise
/// F_k; see promise_holds().
using Label = std::uint64_t;

/// A full per-node labeling, indexed by node index.
using Labeling = std::vector<Label>;

/// The paper's instance triple (G, x, id).
///
/// The graph lives in exactly one of two representations: materialized
/// (`g`, a CSR Graph; `implicit` null) or implicit (`implicit` set, `g`
/// empty — neighborhoods synthesized on demand, no O(n) state at all).
/// Implicit instances carry consecutive identities (id(v) = v + 1, the
/// paper's Corollary-1 assignment) and all-zero inputs, computed rather
/// than stored; consumers go through topology() / identity_of() instead
/// of touching `g` / `ids` directly.
struct Instance {
  graph::Graph g;
  std::shared_ptr<const graph::ImplicitTopology> implicit;
  Labeling input;           // size == node_count(); empty means all-zero
  ident::IdAssignment ids;  // size == node_count(); empty when implicit

  bool is_implicit() const noexcept { return implicit != nullptr; }

  /// The graph under either representation — what ball collection and
  /// every neighbor-scanning consumer should expand against.
  const graph::Topology& topology() const noexcept {
    return implicit ? static_cast<const graph::Topology&>(*implicit) : g;
  }

  graph::NodeId node_count() const noexcept {
    return implicit ? implicit->node_count() : g.node_count();
  }

  /// Input of node v (all-zero default when input is empty).
  Label input_of(graph::NodeId v) const noexcept {
    return input.empty() ? 0 : input[v];
  }

  /// Identity of node v: the stored assignment, or the computed
  /// consecutive assignment (v + 1) for implicit instances.
  ident::Identity identity_of(graph::NodeId v) const noexcept {
    return implicit ? static_cast<ident::Identity>(v) + 1 : ids[v];
  }

  /// Validates internal consistency (sizes match, ids distinct — the
  /// IdAssignment constructor already guarantees distinctness).
  void validate() const;
};

/// Builds an instance with all-zero inputs and the given identities.
Instance make_instance(graph::Graph g, ident::IdAssignment ids);

/// Builds an implicit instance: on-demand neighborhoods, consecutive
/// identities, all-zero inputs.
Instance make_implicit_instance(
    std::shared_ptr<const graph::ImplicitTopology> topology);

/// Bit-length of a label (0 for label 0).
int label_bits(Label value) noexcept;

/// The promise F_k (paper, section 2.2.3): degree, input length and output
/// length all at most k. Empty output span checks the input side only.
bool promise_holds(const graph::Graph& g, std::span<const Label> x,
                   std::span<const Label> y, int k) noexcept;

}  // namespace lnc::local
