// The synchronous LOCAL round engine (paper, section 2.1.1).
//
// Each round, every node (1) sends a message to its neighbors, (2) receives
// its neighbors' messages, (3) computes. Message size and local computation
// are unbounded — the model's only resource is the number of rounds, which
// the engine counts and reports (that count *is* the measurement in
// experiments E3 and E10).
//
// Programs are per-node state machines created by a factory per execution;
// node steps within a round are data-parallel and can run on a thread pool
// (results are independent of the schedule because rounds are barriers and
// nodes share no mutable state).
//
// Message storage is pooled: nodes write through MessageWriter into a
// per-run arena (one flat word buffer in sequential mode, reusable per-node
// buffers under parallel node stepping) and read neighbors' messages
// through zero-copy Inbox views. An EngineScratch can be passed in to reuse
// the arena, program table, and RNG storage across runs — the batched
// Monte-Carlo path (local/batch_runner.h) keeps one scratch per worker.
//
// This file is the SCALAR engine: one trial at a time, one heap program
// object per node. Programs whose factory overrides create_vector() can
// additionally run on the trial-vectorized SoA backend in
// local/vector_engine.h, which advances whole batches of trials in
// lockstep with bit-identical coin flips, outputs, and telemetry; the
// batch runner picks between the two per plan via local::OptimizationConfig.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "local/instance.h"
#include "local/telemetry.h"
#include "rand/coins.h"
#include "stats/threadpool.h"

namespace lnc::fault {
class FaultModel;
}

namespace lnc::local {

class MessageStore;

/// Append-only writer for one node's outgoing message this round. An empty
/// message (no words pushed) == silence.
class MessageWriter {
 public:
  void push(std::uint64_t word) { words_->push_back(word); }
  void append(std::span<const std::uint64_t> words) {
    words_->insert(words_->end(), words.begin(), words.end());
  }

 private:
  friend class MessageStore;
  explicit MessageWriter(std::vector<std::uint64_t>* words) noexcept
      : words_(words) {}
  std::vector<std::uint64_t>* words_;
};

/// Pooled storage for one round's outgoing messages. Two modes:
///  * shared arena (sequential node stepping): all messages live back to
///    back in one flat word vector addressed by per-node offsets — no
///    per-message allocation once the arena is warm;
///  * per-node buffers (parallel node stepping): each node owns a buffer
///    whose capacity persists across rounds, so steady-state rounds do not
///    allocate either.
class MessageStore {
 public:
  /// Prepares storage for n nodes. `shared_arena` selects the flat arena
  /// (requires the send phase to visit nodes in ascending order).
  void reset(graph::NodeId n, bool shared_arena) {
    shared_ = shared_arena;
    flat_.clear();
    if (shared_) {
      offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
      buffers_.clear();
    } else {
      offsets_.clear();
      buffers_.resize(n);  // existing buffers keep their capacity
    }
  }

  void begin_round() {
    if (shared_) flat_.clear();
  }

  /// Writer for node v's message. In shared-arena mode writers must be
  /// obtained in ascending node order and closed with end_write(v) before
  /// the next writer is opened.
  MessageWriter writer(graph::NodeId v) {
    if (shared_) {
      offsets_[v] = flat_.size();
      return MessageWriter(&flat_);
    }
    buffers_[v].clear();
    return MessageWriter(&buffers_[v]);
  }

  /// Closes node v's message (shared-arena bookkeeping; no-op otherwise).
  void end_write(graph::NodeId v) {
    if (shared_) offsets_[v + 1] = flat_.size();
  }

  /// The message node v sent this round. Valid until the next begin_round.
  std::span<const std::uint64_t> message(graph::NodeId v) const noexcept {
    if (shared_) {
      return {flat_.data() + offsets_[v], flat_.data() + offsets_[v + 1]};
    }
    return {buffers_[v].data(), buffers_[v].size()};
  }

  /// Retained capacity of the message arena, in bytes (telemetry's
  /// arena high-water mark).
  std::size_t footprint_bytes() const noexcept {
    std::size_t bytes = flat_.capacity() * sizeof(std::uint64_t) +
                        offsets_.capacity() * sizeof(std::size_t) +
                        buffers_.capacity() * sizeof(buffers_[0]);
    for (const auto& buffer : buffers_) {
      bytes += buffer.capacity() * sizeof(std::uint64_t);
    }
    return bytes;
  }

 private:
  bool shared_ = true;
  std::vector<std::uint64_t> flat_;      // shared-arena words
  std::vector<std::size_t> offsets_;     // size n + 1 in shared mode
  std::vector<std::vector<std::uint64_t>> buffers_;  // parallel mode
};

/// Zero-copy view of the messages on a node's ports this round: inbox[p]
/// is the message from the neighbor on port p (empty span == silence).
/// A non-null `suppressed` row (one char per port, set by the engine's
/// fault pass) turns the flagged ports into silence — a dropped delivery
/// is indistinguishable from a silent neighbor, exactly the lossy-link
/// semantics.
class Inbox {
 public:
  Inbox(const MessageStore& store, std::span<const graph::NodeId> neighbors,
        const char* suppressed = nullptr) noexcept
      : store_(&store), neighbors_(neighbors), suppressed_(suppressed) {}

  std::size_t size() const noexcept { return neighbors_.size(); }
  std::span<const std::uint64_t> operator[](std::size_t port) const noexcept {
    if (suppressed_ != nullptr && suppressed_[port] != 0) return {};
    return store_->message(neighbors_[port]);
  }

 private:
  const MessageStore* store_;
  std::span<const graph::NodeId> neighbors_;
  const char* suppressed_;
};

/// What a node knows at wake-up. Ports are indices into the neighbor list
/// (neighbor port p of v is g.neighbors(v)[p]); `succ_port`, when present,
/// gives a consistent sense of direction on a ring (the Linial lower bound
/// holds even with this extra power, so granting it only strengthens the
/// reproduced separations).
struct NodeEnv {
  ident::Identity id = 0;
  Label input = 0;
  std::uint32_t degree = 0;
  std::optional<std::uint32_t> succ_port;  // ring orientation, if granted
  std::optional<std::uint64_t> n_nodes;    // knowledge of n, if granted
  rand::NodeRng* rng = nullptr;            // null for deterministic programs
};

/// A per-node program. The engine calls send() then receive() each round
/// until every node has halted (receive returned true) or max_rounds hits.
/// Nodes that halted keep participating as message relays: send() is still
/// invoked (a halted node may broadcast its final state), receive() is not.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Returns true when the node halts immediately (a zero-round program:
  /// the output is fixed before any communication).
  virtual bool init(const NodeEnv& env) = 0;

  /// Writes the broadcast message for this round (round numbering starts
  /// at 1) into `out`; writing nothing means silence.
  virtual void send(int round, MessageWriter& out) = 0;

  /// inbox[p] is the message from the neighbor on port p. Returns true when
  /// the node halts with its output fixed.
  virtual bool receive(int round, const Inbox& inbox) = 0;

  virtual Label output() const = 0;
};

class VectorProgram;  // local/vector_engine.h

class NodeProgramFactory {
 public:
  virtual ~NodeProgramFactory() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<NodeProgram> create() const = 0;

  /// Opt-in program recycling: reset `program` — an instance this factory
  /// created earlier — back to its pre-init() state and return true, or
  /// return false when it cannot be recycled (wrong type/configuration),
  /// in which case the engine falls back to create(). init() runs
  /// afterwards either way. Implementing this lets the batched Monte-Carlo
  /// path skip n heap allocations per trial.
  virtual bool recreate(NodeProgram& program) const {
    (void)program;
    return false;
  }

  /// Opt-in trial vectorization: a structure-of-arrays program advancing
  /// many trials in lockstep (local/vector_engine.h), required to be
  /// bit-identical to create()'s program — same per-node draw sequences,
  /// halting rounds, outputs, and message/word counts. Null (the default)
  /// means the plan transparently falls back to the scalar engine.
  virtual std::unique_ptr<VectorProgram> create_vector() const;
};

struct EngineOptions;
struct EngineResult;

/// Reusable cross-run engine storage: the program table, contiguous
/// per-node RNGs, halted flags, and the message arena. Passing one scratch
/// to consecutive run_engine calls (same or different instances) reuses all
/// capacity — the per-trial hot path of the batch runner. Not thread-safe:
/// use one scratch per worker.
class EngineScratch {
 public:
  EngineScratch() = default;
  EngineScratch(const EngineScratch&) = delete;
  EngineScratch& operator=(const EngineScratch&) = delete;
  EngineScratch(EngineScratch&&) = default;
  EngineScratch& operator=(EngineScratch&&) = default;

  /// Telemetry accumulated across every run executed on this scratch
  /// since the last reset(). Lock-free by construction: one scratch per
  /// worker. BatchRunner resets per-worker accumulators at the start of
  /// each batch and merges them into the batch result.
  Telemetry& telemetry() noexcept { return telemetry_; }
  const Telemetry& telemetry() const noexcept { return telemetry_; }

 private:
  friend EngineResult run_engine(const Instance& inst,
                                 const NodeProgramFactory& factory,
                                 const EngineOptions& options);
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<rand::NodeRng> rngs_;  // contiguous; reserve() keeps ptrs stable
  std::vector<char> halted_;
  MessageStore store_;
  // Fault-pass storage (sized/filled only when a non-trivial fault model
  // is active): per-node crash rounds and dead flags, plus a per-port
  // suppression bitmap addressed by port_offsets_ (prefix degrees).
  std::vector<std::uint64_t> crash_rounds_;
  std::vector<char> dead_;
  std::vector<char> suppressed_;
  std::vector<std::size_t> port_offsets_;
  // Which factory populated programs_ — recycling is only attempted when
  // the same factory (by address AND name, to survive address reuse) runs
  // again on this scratch.
  const NodeProgramFactory* last_factory_ = nullptr;
  std::string last_factory_name_;
  Telemetry telemetry_;
};

struct EngineOptions {
  int max_rounds = 1 << 20;        ///< safety guard; hitting it is an error
  bool grant_n = false;            ///< expose |V| via NodeEnv::n_nodes
  bool grant_ring_orientation = false;  ///< expose succ_port on cycle()
  const rand::CoinProvider* coins = nullptr;  ///< null => deterministic
  const stats::ThreadPool* pool = nullptr;    ///< null => sequential steps

  /// Optional adversary (src/fault/). When `fault` is non-null and
  /// non-trivial, `fault_coins` must be set (the trial's dedicated fault
  /// stream): crashed nodes fall silent from their crash round onward and
  /// output 0, dropped/churned deliveries read as silence, and the fault
  /// telemetry counters measure what was realized. All draws are keyed by
  /// node identities and the round index — never by schedule — so faulty
  /// runs stay bit-identical across thread counts and shards.
  const fault::FaultModel* fault = nullptr;
  const rand::CoinProvider* fault_coins = nullptr;

  /// Keep the per-node programs alive in EngineResult::programs so callers
  /// can read program-specific state back (e.g. the ball collector's
  /// knowledge tables). Off by default: most callers only need the
  /// labeling, and retaining n live programs per run is pure overhead.
  bool retain_programs = false;

  /// Optional reusable storage; null uses run-local storage.
  EngineScratch* scratch = nullptr;
};

struct EngineResult {
  Labeling output;
  int rounds = 0;       ///< rounds executed until the last node halted
  bool completed = false;  ///< false iff max_rounds was exhausted

  /// Measured communication volume of THIS run (also merged into the
  /// scratch's cross-run accumulator when one was passed in).
  Telemetry telemetry;

  /// The per-node programs — populated only when
  /// EngineOptions::retain_programs is set. programs[v] belongs to node v.
  std::vector<std::unique_ptr<NodeProgram>> programs;
};

/// Runs the program to quiescence on the instance.
EngineResult run_engine(const Instance& inst, const NodeProgramFactory& factory,
                        const EngineOptions& options = {});

}  // namespace lnc::local
