// The synchronous LOCAL round engine (paper, section 2.1.1).
//
// Each round, every node (1) sends a message to its neighbors, (2) receives
// its neighbors' messages, (3) computes. Message size and local computation
// are unbounded — the model's only resource is the number of rounds, which
// the engine counts and reports (that count *is* the measurement in
// experiments E3 and E10).
//
// Programs are per-node state machines created by a factory per execution;
// node steps within a round are data-parallel and can run on a thread pool
// (results are independent of the schedule because rounds are barriers and
// nodes share no mutable state).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "local/instance.h"
#include "rand/coins.h"
#include "stats/threadpool.h"

namespace lnc::local {

/// Messages are word vectors; empty message == silence.
using Message = std::vector<std::uint64_t>;

/// What a node knows at wake-up. Ports are indices into the neighbor list
/// (neighbor port p of v is g.neighbors(v)[p]); `succ_port`, when present,
/// gives a consistent sense of direction on a ring (the Linial lower bound
/// holds even with this extra power, so granting it only strengthens the
/// reproduced separations).
struct NodeEnv {
  ident::Identity id = 0;
  Label input = 0;
  std::uint32_t degree = 0;
  std::optional<std::uint32_t> succ_port;  // ring orientation, if granted
  std::optional<std::uint64_t> n_nodes;    // knowledge of n, if granted
  rand::NodeRng* rng = nullptr;            // null for deterministic programs
};

/// A per-node program. The engine calls send() then receive() each round
/// until every node has halted (receive returned true) or max_rounds hits.
/// Nodes that halted keep participating as message relays: send() is still
/// invoked (a halted node may broadcast its final state), receive() is not.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Returns true when the node halts immediately (a zero-round program:
  /// the output is fixed before any communication).
  virtual bool init(const NodeEnv& env) = 0;

  /// The broadcast message for this round (round numbering starts at 1).
  virtual Message send(int round) = 0;

  /// inbox[p] is the message from the neighbor on port p. Returns true when
  /// the node halts with its output fixed.
  virtual bool receive(int round, std::span<const Message> inbox) = 0;

  virtual Label output() const = 0;
};

class NodeProgramFactory {
 public:
  virtual ~NodeProgramFactory() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<NodeProgram> create() const = 0;
};

struct EngineOptions {
  int max_rounds = 1 << 20;        ///< safety guard; hitting it is an error
  bool grant_n = false;            ///< expose |V| via NodeEnv::n_nodes
  bool grant_ring_orientation = false;  ///< expose succ_port on cycle()
  const rand::CoinProvider* coins = nullptr;  ///< null => deterministic
  const stats::ThreadPool* pool = nullptr;    ///< null => sequential steps
};

struct EngineResult {
  Labeling output;
  int rounds = 0;       ///< rounds executed until the last node halted
  bool completed = false;  ///< false iff max_rounds was exhausted

  /// The per-node programs, still alive after the run so callers can read
  /// back program-specific state (e.g. the ball collector's knowledge
  /// tables). programs[v] belongs to node v.
  std::vector<std::unique_ptr<NodeProgram>> programs;
};

/// Runs the program to quiescence on the instance.
EngineResult run_engine(const Instance& inst, const NodeProgramFactory& factory,
                        const EngineOptions& options = {});

}  // namespace lnc::local
