#include "local/batch_runner.h"

#include <algorithm>

#include "obs/progress.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/timer.h"

namespace lnc::local {

ExperimentPlan custom_plan(std::string name, std::uint64_t trials,
                           std::uint64_t base_seed,
                           std::function<bool(const TrialEnv&)> trial) {
  ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = std::move(trial);
  return plan;
}

ExperimentPlan custom_value_plan(
    std::string name, std::uint64_t trials, std::uint64_t base_seed,
    std::function<double(const TrialEnv&)> trial) {
  ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.value_trial = std::move(trial);
  return plan;
}

ExperimentPlan custom_count_plan(
    std::string name, std::uint64_t trials, std::uint64_t base_seed,
    std::size_t counters,
    std::function<void(const TrialEnv&, std::span<std::uint64_t>)> trial) {
  ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.counters = counters;
  plan.count_trial = std::move(trial);
  return plan;
}

const char* to_string(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kSuccess:
      return "success";
    case WorkloadKind::kValue:
      return "value";
    case WorkloadKind::kCounter:
      return "counter";
  }
  return "?";
}

std::optional<WorkloadKind> workload_from_string(
    std::string_view text) noexcept {
  if (text == "success") return WorkloadKind::kSuccess;
  if (text == "value") return WorkloadKind::kValue;
  if (text == "counter") return WorkloadKind::kCounter;
  return std::nullopt;
}

WorkloadKind workload_kind(const ExperimentPlan& plan) {
  if (plan.success_trial != nullptr) {
    LNC_EXPECTS(plan.value_trial == nullptr && plan.count_trial == nullptr);
    return WorkloadKind::kSuccess;
  }
  if (plan.value_trial != nullptr) {
    LNC_EXPECTS(plan.count_trial == nullptr);
    return WorkloadKind::kValue;
  }
  LNC_EXPECTS(plan.count_trial != nullptr);
  return WorkloadKind::kCounter;
}

TrialRange shard_range(std::uint64_t trials, unsigned shard,
                       unsigned shard_count) {
  LNC_EXPECTS(shard_count > 0 && shard < shard_count);
  const std::uint64_t base = trials / shard_count;
  const std::uint64_t remainder = trials % shard_count;
  const std::uint64_t begin =
      shard * base + std::min<std::uint64_t>(shard, remainder);
  const std::uint64_t length = base + (shard < remainder ? 1 : 0);
  return {begin, begin + length};
}

stats::Estimate merge_tallies(std::span<const ShardTally> tallies) {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  for (const ShardTally& tally : tallies) {
    successes += tally.successes;
    trials += tally.trials;
  }
  return stats::finalize_estimate(successes, trials);
}

stats::MeanEstimate merge_value_tallies(std::span<const ShardTally> tallies) {
  stats::ExactSum sum;
  stats::ExactSum sum_sq;
  std::uint64_t trials = 0;
  for (const ShardTally& tally : tallies) {
    sum.merge(tally.value_sum);
    sum_sq.merge(tally.value_sum_sq);
    trials += tally.trials;
  }
  return stats::finalize_mean_exact(sum, sum_sq, trials);
}

std::vector<std::uint64_t> merge_count_tallies(
    std::span<const ShardTally> tallies) {
  std::vector<std::uint64_t> total;
  for (const ShardTally& tally : tallies) {
    if (tally.counts.empty()) continue;
    if (total.empty()) total.assign(tally.counts.size(), 0);
    LNC_EXPECTS(tally.counts.size() == total.size() &&
                "merging counter tallies of different widths");
    for (std::size_t j = 0; j < total.size(); ++j) {
      total[j] += tally.counts[j];
    }
  }
  return total;
}

Telemetry merge_telemetries(std::span<const ShardTally> tallies) {
  Telemetry merged;
  for (const ShardTally& tally : tallies) merged.merge(tally.telemetry);
  return merged;
}

BatchRunner::BatchRunner(const stats::ThreadPool* pool) : pool_(pool) {
  arenas_.resize(worker_count());
}

unsigned BatchRunner::worker_count() const noexcept {
  return pool_ != nullptr ? pool_->thread_count() : 1;
}

template <typename Body>
void BatchRunner::for_each_trial(const ExperimentPlan& plan, TrialRange range,
                                 bool fresh_arenas, Body&& body) {
  auto invoke = [&](unsigned worker, std::uint64_t offset) {
    const std::uint64_t i = range.begin + offset;
    TrialEnv env;
    env.index = i;
    env.seed = stats::trial_seed(plan.base_seed, i);
    // Observability channel for this worker: deep engine code (ball
    // collection, vector kernels) reaches the registry through the
    // thread-local pointer. Installed only when metrics are on, so the
    // disabled path costs one relaxed load here and a null TLS read at
    // every downstream hook.
    obs::MetricsRegistry* metrics =
        obs::metrics_enabled() ? &arenas_[worker].metrics() : nullptr;
    const obs::WorkerMetricsScope metrics_scope(metrics);
    const util::Timer trial_timer;
    if (fresh_arenas) {
      // Naive backend: a cold arena per trial (nothing survives — the
      // reuse-ablation baseline). The trial's telemetry still lands in
      // the persistent worker accumulator so tallies merge identically.
      WorkerArena fresh;
      env.arena = &fresh;
      body(worker, env);
      arenas_[worker].telemetry().merge(fresh.telemetry());
    } else {
      env.arena = &arenas_[worker];
      body(worker, env);
    }
    // Per-trial wall time lands in the worker's lock-free accumulator
    // (timing-only telemetry; never part of the deterministic contract).
    const double trial_seconds = trial_timer.elapsed_seconds();
    arenas_[worker].telemetry().wall_seconds += trial_seconds;
    if (metrics != nullptr) {
      metrics->observe("trial_wall_seconds", trial_seconds);
    }
    if (progress_ != nullptr) progress_->tick(1);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for_workers(range.count(), invoke);
  } else {
    for (std::uint64_t i = 0; i < range.count(); ++i) invoke(0, i);
  }
}

template <typename Body>
void BatchRunner::for_each_vector_trial(const ExperimentPlan& plan,
                                        TrialRange range, Body&& body) {
  const std::uint64_t batch_size =
      std::max<std::uint64_t>(plan.optimization.batch_trials, 1);
  const std::uint64_t batches =
      (range.count() + batch_size - 1) / batch_size;
  auto run_batch = [&](unsigned worker, std::uint64_t b) {
    WorkerArena& arena = arenas_[worker];
    const std::uint64_t begin = range.begin + b * batch_size;
    const std::uint64_t end = std::min(range.end, begin + batch_size);
    obs::MetricsRegistry* metrics =
        obs::metrics_enabled() ? &arena.metrics() : nullptr;
    const obs::WorkerMetricsScope metrics_scope(metrics);
    const obs::Span batch_span("batch", obs::span_args("trials", end - begin));
    // Per-trial construction-coin keys, exactly what the scalar trial
    // body's env.construction_coins() would produce.
    auto& keys = arena.vector_scratch().coin_key_buffer();
    keys.resize(end - begin);
    for (std::uint64_t i = begin; i < end; ++i) {
      TrialEnv env;
      env.index = i;
      env.seed = stats::trial_seed(plan.base_seed, i);
      keys[i - begin] = env.construction_coins().key();
    }
    const util::Timer batch_timer;
    run_vector_batch(
        *plan.vector.instance, *plan.vector.factory, keys, plan.optimization,
        arena.vector_scratch(), &arena.telemetry(),
        [&](std::uint32_t local, const Labeling& out, int rounds,
            const Telemetry& delta) {
          TrialEnv env;
          env.index = begin + local;
          env.seed = stats::trial_seed(plan.base_seed, env.index);
          env.arena = &arena;
          body(worker, env, out, rounds, delta);
        });
    const double batch_seconds = batch_timer.elapsed_seconds();
    arena.telemetry().wall_seconds += batch_seconds;
    if (metrics != nullptr) {
      metrics->observe("batch_wall_seconds", batch_seconds);
      if (batch_seconds > 0.0) {
        metrics->observe("batch_trials_per_sec",
                         static_cast<double>(end - begin) / batch_seconds);
      }
    }
    if (progress_ != nullptr) progress_->tick(end - begin);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for_workers(batches, run_batch);
  } else {
    for (std::uint64_t b = 0; b < batches; ++b) run_batch(0, b);
  }
}

void BatchRunner::reset_worker_telemetry() {
  for (WorkerArena& arena : arenas_) arena.telemetry().reset();
}

void BatchRunner::reset_worker_metrics() {
  for (WorkerArena& arena : arenas_) arena.metrics().clear();
}

obs::MetricsRegistry BatchRunner::merged_worker_metrics() {
  obs::MetricsRegistry merged;
  for (const WorkerArena& arena : arenas_) merged.merge(arena.metrics());
  return merged;
}

Telemetry BatchRunner::merged_worker_telemetry() {
  Telemetry merged;
  for (const WorkerArena& arena : arenas_) merged.merge(arena.telemetry());
  return merged;
}

stats::Estimate BatchRunner::run(const ExperimentPlan& plan) {
  LNC_EXPECTS(plan.success_trial != nullptr);
  const ShardTally tally = run_shard(plan, {0, plan.trials});
  return stats::finalize_estimate(tally.successes, tally.trials);
}

ShardTally BatchRunner::run_shard(const ExperimentPlan& plan,
                                  TrialRange range) {
  LNC_EXPECTS(range.begin <= range.end && range.end <= plan.trials);
  const WorkloadKind kind = workload_kind(plan);

  // Resolve the backend. kAuto at this level means the plan never went
  // through OptimizationConfig::automatic — keep the warm-arena scalar
  // path, the long-standing default. A vectorized request degrades to
  // batched transparently when the plan carries no vector execution.
  OptimizationConfig::Backend backend = plan.optimization.backend;
  if (backend == OptimizationConfig::Backend::kAuto) {
    backend = OptimizationConfig::Backend::kBatched;
  }
  if (backend == OptimizationConfig::Backend::kVectorized &&
      !plan.vector.engaged()) {
    backend = OptimizationConfig::Backend::kBatched;
  }
  const bool vectorized = backend == OptimizationConfig::Backend::kVectorized;
  const bool fresh_arenas = backend == OptimizationConfig::Backend::kNaive;

  reset_worker_telemetry();
  reset_worker_metrics();
  ShardTally tally;
  tally.trials = range.count();
  switch (kind) {
    case WorkloadKind::kSuccess: {
      std::vector<stats::WorkerCounter> tallies(worker_count());
      if (vectorized) {
        LNC_EXPECTS(plan.vector.success_finish != nullptr);
        for_each_vector_trial(
            plan, range,
            [&](unsigned worker, const TrialEnv& env, const Labeling& out,
                int rounds, const Telemetry& delta) {
              if (plan.vector.success_finish(env, out, rounds, delta)) {
                ++tallies[worker].value;
              }
            });
      } else {
        for_each_trial(plan, range, fresh_arenas,
                       [&](unsigned worker, const TrialEnv& env) {
                         if (plan.success_trial(env)) ++tallies[worker].value;
                       });
      }
      tally.successes = stats::sum_counters(tallies);
      break;
    }
    case WorkloadKind::kValue: {
      // Per-worker exact accumulators: exact sums are order-free, so
      // merging them in worker order reproduces the same represented
      // value — and hence the same rounded double — for every thread
      // count and shard partition.
      struct alignas(64) WorkerSums {
        stats::ExactSum sum;
        stats::ExactSum sum_sq;
      };
      std::vector<WorkerSums> sums(worker_count());
      if (vectorized) {
        LNC_EXPECTS(plan.vector.value_finish != nullptr);
        for_each_vector_trial(
            plan, range,
            [&](unsigned worker, const TrialEnv& env, const Labeling& out,
                int rounds, const Telemetry& delta) {
              const double value =
                  plan.vector.value_finish(env, out, rounds, delta);
              sums[worker].sum.add(value);
              sums[worker].sum_sq.add(value * value);
            });
      } else {
        for_each_trial(plan, range, fresh_arenas,
                       [&](unsigned worker, const TrialEnv& env) {
                         const double value = plan.value_trial(env);
                         sums[worker].sum.add(value);
                         sums[worker].sum_sq.add(value * value);
                       });
      }
      for (const WorkerSums& worker_sums : sums) {
        tally.value_sum.merge(worker_sums.sum);
        tally.value_sum_sq.merge(worker_sums.sum_sq);
      }
      break;
    }
    case WorkloadKind::kCounter: {
      std::vector<std::vector<std::uint64_t>> slots(
          worker_count(), std::vector<std::uint64_t>(plan.counters, 0));
      if (vectorized) {
        LNC_EXPECTS(plan.vector.count_finish != nullptr);
        for_each_vector_trial(
            plan, range,
            [&](unsigned worker, const TrialEnv& env, const Labeling& out,
                int rounds, const Telemetry& delta) {
              plan.vector.count_finish(env, out, rounds, delta,
                                       slots[worker]);
            });
      } else {
        for_each_trial(plan, range, fresh_arenas,
                       [&](unsigned worker, const TrialEnv& env) {
                         plan.count_trial(env, slots[worker]);
                       });
      }
      tally.counts.assign(plan.counters, 0);
      for (const auto& worker_slots : slots) {
        for (std::size_t j = 0; j < plan.counters; ++j) {
          tally.counts[j] += worker_slots[j];
        }
      }
      break;
    }
  }
  tally.telemetry = merged_worker_telemetry();
  last_telemetry_ = tally.telemetry;
  last_metrics_ = merged_worker_metrics();
  return tally;
}

stats::MeanEstimate BatchRunner::run_mean(const ExperimentPlan& plan) {
  LNC_EXPECTS(plan.value_trial != nullptr);
  const ShardTally tally = run_shard(plan, {0, plan.trials});
  return stats::finalize_mean_exact(tally.value_sum, tally.value_sum_sq,
                                    tally.trials);
}

std::vector<std::uint64_t> BatchRunner::run_counts(const ExperimentPlan& plan) {
  LNC_EXPECTS(plan.count_trial != nullptr);
  return run_shard(plan, {0, plan.trials}).counts;
}

}  // namespace lnc::local
