// The generic t-round full-information protocol: every node floods its
// knowledge every round; after t rounds a node knows exactly B_G(v, t) —
// identities and inputs of all nodes at distance <= t, and the adjacency
// of all nodes at distance <= t-1 (hence every ball edge except those
// between two distance-t nodes, matching the paper's ball definition).
//
// This is the constructive half of the "simulation theorem" of section
// 2.1.1: any t-round algorithm can be replayed on top of this protocol.
// tests/local_test.cpp checks that the knowledge gathered here coincides
// with graph::BallView node-for-node and edge-for-edge.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "local/engine.h"

namespace lnc::local {

/// What the collector learned about one remote node.
struct KnownNode {
  ident::Identity id = 0;
  Label input = 0;
  bool adjacency_known = false;
  std::vector<ident::Identity> neighbor_ids;  // valid iff adjacency_known
};

/// Knowledge table keyed by identity (nodes have no global indices in the
/// LOCAL model — identity is the only name they share).
using Knowledge = std::map<ident::Identity, KnownNode>;

/// Runs the flooding protocol for `radius` rounds and returns every node's
/// final knowledge table, indexed by node index.
std::vector<Knowledge> collect_balls(const Instance& inst, int radius,
                                     const EngineOptions& options = {});

/// Edges of the ball reconstructed from a knowledge table: unordered
/// identity pairs (a, b), a < b, where at least one endpoint's adjacency is
/// known. This equals the edge set of B_G(v, t) mapped to identities.
std::vector<std::pair<ident::Identity, ident::Identity>> knowledge_edges(
    const Knowledge& knowledge);

}  // namespace lnc::local
