// The generic t-round full-information protocol: every node floods its
// knowledge every round; after t rounds a node knows exactly B_G(v, t) —
// identities and inputs of all nodes at distance <= t, and the adjacency
// of all nodes at distance <= t-1 (hence every ball edge except those
// between two distance-t nodes, matching the paper's ball definition).
//
// This is the constructive half of the "simulation theorem" of section
// 2.1.1: any t-round algorithm can be replayed on top of this protocol.
// tests/local_test.cpp checks that the knowledge gathered here coincides
// with graph::BallView node-for-node and edge-for-edge.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "local/engine.h"

namespace lnc::local {

/// What the collector learned about one remote node.
struct KnownNode {
  ident::Identity id = 0;
  Label input = 0;
  bool adjacency_known = false;
  std::vector<ident::Identity> neighbor_ids;  // valid iff adjacency_known
};

/// Knowledge table keyed by identity (nodes have no global indices in the
/// LOCAL model — identity is the only name they share).
using Knowledge = std::map<ident::Identity, KnownNode>;

/// The flooding collector as a reusable NodeProgram: after `radius` rounds
/// its knowledge table is exactly B_G(v, radius). Subclass and override
/// receive() to run phase two of the simulation theorem *inside* the node
/// (see local/experiment.cpp's native message-passing execution mode).
class BallCollectorProgram : public NodeProgram {
 public:
  explicit BallCollectorProgram(int radius) : radius_(radius) {}

  bool init(const NodeEnv& env) override;
  void send(int round, MessageWriter& out) override;
  bool receive(int round, const Inbox& inbox) override;
  Label output() const override { return 0; }

  int radius() const noexcept { return radius_; }
  ident::Identity self_identity() const noexcept { return self_id_; }
  const Knowledge& knowledge() const noexcept { return knowledge_; }
  Knowledge take_knowledge() noexcept { return std::move(knowledge_); }

 private:
  int radius_;
  ident::Identity self_id_ = 0;
  Knowledge knowledge_;
};

/// Runs the flooding protocol for `radius` rounds and returns every node's
/// final knowledge table, indexed by node index.
std::vector<Knowledge> collect_balls(const Instance& inst, int radius,
                                     const EngineOptions& options = {});

/// Same protocol, writing into a caller-owned table vector so batched
/// executions (local/batch_runner.h) reuse the OUTER vector across trials.
/// Each Knowledge map is still move-assigned fresh from the collector
/// programs — per-trial map-node allocations remain (see the ROADMAP's
/// instance-caching item for the deeper reuse).
void collect_balls_into(const Instance& inst, int radius,
                        const EngineOptions& options,
                        std::vector<Knowledge>& tables);

/// Edges of the ball reconstructed from a knowledge table: unordered
/// identity pairs (a, b), a < b, where at least one endpoint's adjacency is
/// known. This equals the edge set of B_G(v, t) mapped to identities.
std::vector<std::pair<ident::Identity, ident::Identity>> knowledge_edges(
    const Knowledge& knowledge);

}  // namespace lnc::local
