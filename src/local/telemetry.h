// Communication-volume telemetry (ROADMAP "Engine telemetry").
//
// The paper's round-count tables report one resource; message/word volume
// is the other implicit cost of a local algorithm, and the randomized-
// network literature frames its tradeoffs in exactly those terms. Every
// execution path accumulates a Telemetry block:
//
//  * engine executions (kMessages, kTwoPhase collection, engine-backed
//    constructions) MEASURE their counters: every non-silent message, its
//    word count, and every executed round;
//  * ball-mode executions (the direct ball runner, ball-based decider
//    evaluations) MODEL theirs through the simulation theorem (paper,
//    section 2.1.1): inspecting B(v, t) is charged as the delivery of the
//    view to v — one announcement per ball member (`messages_sent`), the
//    canonical knowledge encoding of the ball (`words_sent`, the same
//    encoding the flooding collector transmits), and max(t, 1) rounds per
//    execution (the wake-up round in which nodes announce their initial
//    records always runs, so zero-round algorithms are charged the
//    announcements they actually read).
//
// Counters accumulate lock-free per worker (inside EngineScratch, reached
// through WorkerArena) and are merged deterministically by BatchRunner
// alongside the success tallies. The first four counters are pure
// functions of the executed trial set — bit-identical across thread
// counts and across sharded vs. unsharded runs (tests/batch_test.cpp,
// tests/scenario_test.cpp). The last two describe the executing machine
// and are reported but never gated.
#pragma once

#include <algorithm>
#include <cstdint>

namespace lnc::local {

struct Telemetry {
  // -- deterministic counters (gated by CI) --------------------------------
  std::uint64_t messages_sent = 0;    ///< non-silent messages (or modeled
                                      ///< per-member announcements)
  std::uint64_t words_sent = 0;       ///< 64-bit words across all messages
  std::uint64_t rounds_executed = 0;  ///< engine rounds, or max(t, 1) per
                                      ///< ball-mode execution
  std::uint64_t ball_expansions = 0;  ///< BallViews materialized in the
                                      ///< harness (direct runner, decider
                                      ///< evaluations, two-phase rebuilds)
  std::uint64_t messages_dropped = 0;  ///< deliveries suppressed by the
                                       ///< fault model (lossy links)
  std::uint64_t nodes_crashed = 0;     ///< crash-stop nodes realized by the
                                       ///< fault model
  std::uint64_t edges_churned = 0;     ///< (edge, round) deactivations
                                       ///< realized by the fault model

  // -- environment-dependent (reported, never gated) ------------------------
  std::uint64_t arena_peak_bytes = 0;  ///< high-water engine-arena footprint
  double wall_seconds = 0.0;           ///< summed per-trial wall time

  void reset() noexcept { *this = Telemetry{}; }

  /// Order-free accumulation: counters and wall time sum, the arena
  /// high-water mark takes the max — merging per-worker or per-shard
  /// blocks in any order yields the same deterministic counters.
  void merge(const Telemetry& other) noexcept {
    messages_sent += other.messages_sent;
    words_sent += other.words_sent;
    rounds_executed += other.rounds_executed;
    ball_expansions += other.ball_expansions;
    messages_dropped += other.messages_dropped;
    nodes_crashed += other.nodes_crashed;
    edges_churned += other.edges_churned;
    arena_peak_bytes = std::max(arena_peak_bytes, other.arena_peak_bytes);
    wall_seconds += other.wall_seconds;
  }

  /// Equality of the deterministic counters only — the contract checked
  /// across thread counts and shard partitions (timing fields are
  /// machine-dependent by nature).
  bool deterministic_equal(const Telemetry& other) const noexcept {
    return messages_sent == other.messages_sent &&
           words_sent == other.words_sent &&
           rounds_executed == other.rounds_executed &&
           ball_expansions == other.ball_expansions &&
           messages_dropped == other.messages_dropped &&
           nodes_crashed == other.nodes_crashed &&
           edges_churned == other.edges_churned;
  }
};

}  // namespace lnc::local
