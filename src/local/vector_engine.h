// Trial-vectorized execution backend (ROADMAP "Trial vectorization").
//
// Every Monte-Carlo estimate in the paper is thousands of independent
// trials of the SAME (instance, program) pair. The scalar round engine
// (local/engine.h) advances one trial at a time through per-node heap
// program objects — pointer-chasing and virtual dispatch per node per
// round. This backend advances a BATCH of B trials in lockstep instead:
//
//   * per-node program state lives in contiguous structure-of-arrays
//     storage indexed [trial * n + node] (no program objects at all);
//   * coin flips are drawn batch-at-a-time per round from the per-trial
//     Philox streams — VecRng replays the exact (key, identity, counter)
//     draw sequence of rand::NodeRng, so every number is bit-identical
//     to the scalar engine's;
//   * message rounds are flat passes over the batch against the shared
//     CSR adjacency (messages are never materialized: a "received"
//     message is a read of the sender's round-start state);
//   * per-round skip masks elide trials that already terminated
//     (use_done_mask) and nodes that are silent/halted (use_silent_skip).
//
// A program opts in by overriding NodeProgramFactory::create_vector()
// (local/engine.h); everything else transparently falls back to the
// scalar engine. OptimizationConfig selects the backend per plan — by
// hand or through OptimizationConfig::automatic(n, trials, degree) —
// and exposes each optimization as an independently-toggleable flag so
// the ablation tests can prove every toggle alone preserves identity.
//
// The contract, gated by tests/vector_engine_test.cpp and CI: tallies,
// exact sums, and deterministic telemetry are bit-identical across
// backends x thread counts x shard partitions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "local/engine.h"
#include "rand/philox.h"

namespace lnc::local {

/// Which trial-execution strategy a plan runs under, plus the individual
/// vector-backend optimizations. Every field is independently toggleable
/// so ablations can isolate each win; all settings produce bit-identical
/// tallies, exact sums, and deterministic telemetry by contract.
struct OptimizationConfig {
  enum class Backend {
    kAuto,        ///< resolve per plan (automatic() or the runner default)
    kNaive,       ///< scalar engine, fresh arenas per trial (no reuse)
    kBatched,     ///< scalar engine, warm per-worker arenas (the PR-1 path)
    kVectorized,  ///< SoA lockstep batches (falls back when not vectorizable)
  };

  Backend backend = Backend::kAuto;

  /// Trials advanced in lockstep per batch (vectorized backend only).
  std::uint64_t batch_trials = 32;

  /// Skip per-node work for halted/silent nodes via compact active-node
  /// lists instead of scanning every node every round.
  bool use_silent_skip = true;

  /// Track live trials in a compact list so finished trials cost nothing
  /// per round (off: every round scans all trials and tests a done flag).
  bool use_done_mask = true;

  /// Keep the SoA arrays and the vector program warm across batches (off:
  /// every batch reallocates from scratch — the arena-reuse ablation).
  bool reuse_round_buffers = true;

  /// The auto-tuning entry point: picks naive for degenerate trial counts,
  /// batched for workloads too small (or too large per trial) to win from
  /// lockstep batches, and vectorized with a cache-sized batch_trials
  /// otherwise. `mean_degree` is the instance's average degree (the SoA
  /// state per trial scales with n * degree for port-indexed programs).
  static OptimizationConfig automatic(std::uint64_t n, std::uint64_t trials,
                                      double mean_degree);
};

const char* to_string(OptimizationConfig::Backend backend) noexcept;

/// Inverse of to_string — the parser behind spec files and --backend.
/// Nullopt on an unknown tag (callers own the error message).
std::optional<OptimizationConfig::Backend> backend_from_string(
    std::string_view text) noexcept;

/// Per-(trial, node) Philox stream — the allocation-free mirror of
/// rand::NodeRng over a raw PhiloxCoins key. Draw k of this struct equals
/// rand::NodeRng(PhiloxCoins-with-this-key, identity) draw k bit for bit;
/// that equivalence (asserted in tests/vector_engine_test.cpp) is what
/// makes the vector backend's coin flips identical to the scalar engine's.
struct VecRng {
  std::uint64_t key = 0;
  std::uint64_t identity = 0;
  std::uint64_t counter = 0;

  std::uint64_t next_u64() noexcept {
    return rand::philox_u64(key, identity, counter++);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p): true with probability p.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Uniform integer in [0, bound); bound must be positive. Same
  /// rejection loop as NodeRng::next_below, draw for draw.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }
};

class VectorScratch;

/// Shared driver-owned state of one lockstep batch: the instance, the
/// per-(trial, node) RNG and halt arrays, per-trial round/traffic
/// accounting, and the skip masks. VectorPrograms read and update it from
/// their flat round passes.
class VectorBatch {
 public:
  const Instance& instance() const noexcept { return *inst_; }
  std::uint32_t nodes() const noexcept { return n_; }
  std::uint32_t trials() const noexcept { return trials_; }
  const OptimizationConfig& config() const noexcept { return config_; }

  /// Flat index of (trial, node) into the [trial * n + node] arrays.
  std::size_t at(std::uint32_t trial, std::uint32_t node) const noexcept {
    return static_cast<std::size_t>(trial) * n_ + node;
  }

  VecRng& rng(std::uint32_t trial, std::uint32_t node) noexcept {
    return rngs_[at(trial, node)];
  }

  bool halted(std::uint32_t trial, std::uint32_t node) const noexcept {
    return halted_[at(trial, node)] != 0;
  }

  /// Marks (trial, node) halted — the vector analogue of receive()
  /// returning true. Idempotent.
  void set_halted(std::uint32_t trial, std::uint32_t node) noexcept {
    char& flag = halted_[at(trial, node)];
    if (flag == 0) {
      flag = 1;
      --live_nodes_[trial];
    }
  }

  bool trial_done(std::uint32_t trial) const noexcept {
    return done_[trial] != 0;
  }

  /// Charges `messages` non-silent messages totalling `words` words to
  /// the trial's deterministic telemetry counters. Programs must charge
  /// exactly what the scalar engine would measure for the round.
  void add_traffic(std::uint32_t trial, std::uint64_t messages,
                   std::uint64_t words) noexcept {
    messages_[trial] += messages;
    words_[trial] += words;
  }

  /// Every trial still running, through the done mask when enabled.
  template <typename Body>
  void for_each_live_trial(Body&& body) const {
    if (config_.use_done_mask) {
      for (const std::uint32_t t : live_trials_) body(t);
      return;
    }
    for (std::uint32_t t = 0; t < trials_; ++t) {
      if (done_[t] == 0) body(t);
    }
  }

  /// Every non-halted node of a live trial — the silent-node skip mask.
  /// With use_silent_skip the compact active list is iterated (halted
  /// nodes cost nothing); without it, all n nodes are scanned and tested.
  /// Nodes halted DURING the pass stay in the list until the driver
  /// compacts it at the end of the round.
  template <typename Body>
  void for_each_active_node(std::uint32_t trial, Body&& body) const {
    if (config_.use_silent_skip) {
      const std::uint32_t* list = active_nodes_.data() +
                                  static_cast<std::size_t>(trial) * n_;
      const std::uint32_t count = active_counts_[trial];
      for (std::uint32_t k = 0; k < count; ++k) body(list[k]);
      return;
    }
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (halted_[at(trial, v)] == 0) body(v);
    }
  }

 private:
  friend class VectorScratch;
  friend void run_vector_batch(const Instance& inst,
                               const NodeProgramFactory& factory,
                               std::span<const std::uint64_t> coin_keys,
                               const OptimizationConfig& config,
                               VectorScratch& scratch, Telemetry* accumulate,
                               const std::function<void(
                                   std::uint32_t, const Labeling&, int,
                                   const Telemetry&)>& finish);

  std::size_t footprint_bytes() const noexcept;

  const Instance* inst_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint32_t trials_ = 0;
  OptimizationConfig config_;

  std::vector<VecRng> rngs_;             // [trial * n + node]
  std::vector<char> halted_;             // [trial * n + node]
  std::vector<std::uint32_t> live_nodes_;  // per trial: non-halted count
  std::vector<char> done_;               // per trial
  std::vector<int> rounds_;              // per trial: rounds executed
  std::vector<std::uint64_t> messages_;  // per trial: messages sent
  std::vector<std::uint64_t> words_;     // per trial: words sent

  std::vector<std::uint32_t> live_trials_;   // done mask (compact list)
  std::vector<std::uint32_t> active_nodes_;  // [trial * n], silent skip
  std::vector<std::uint32_t> active_counts_;  // per trial
};

/// A trial-vectorized node program: the SoA counterpart of one
/// NodeProgram, advancing EVERY (trial, node) of a batch per call.
/// Implementations own their state arrays (sized in init, capacity kept
/// across batches when the scratch is reused) and must replicate the
/// scalar program exactly: per-node draw sequences, halting rounds, and
/// per-round message/word counts.
class VectorProgram {
 public:
  virtual ~VectorProgram() = default;

  virtual std::string name() const = 0;

  /// Sizes/resets state for batch.trials() lockstep trials on
  /// batch.instance(); marks nodes that halt at wake-up via set_halted
  /// (the analogue of init() returning true).
  virtual void init(VectorBatch& batch) = 0;

  /// One synchronous round (numbering starts at 1) over every live
  /// trial: the send pass, the traffic charge, then the receive pass,
  /// exactly mirroring the scalar engine's send barrier.
  virtual void round(VectorBatch& batch, int round) = 0;

  /// Trial `trial`'s output labeling, resized to batch.nodes().
  virtual void output(const VectorBatch& batch, std::uint32_t trial,
                      Labeling& out) const = 0;

  /// Retained state-array capacity, for the arena high-water telemetry
  /// (reported, never gated).
  virtual std::size_t footprint_bytes() const noexcept { return 0; }
};

/// Reusable per-worker storage for the vector backend: the batch arrays
/// and the (recyclable) vector program survive across batches, so a warm
/// batch allocates nothing. Not thread-safe: one scratch per worker.
class VectorScratch {
 public:
  VectorScratch() = default;
  VectorScratch(const VectorScratch&) = delete;
  VectorScratch& operator=(const VectorScratch&) = delete;
  VectorScratch(VectorScratch&&) = default;
  VectorScratch& operator=(VectorScratch&&) = default;

 private:
  friend void run_vector_batch(const Instance& inst,
                               const NodeProgramFactory& factory,
                               std::span<const std::uint64_t> coin_keys,
                               const OptimizationConfig& config,
                               VectorScratch& scratch, Telemetry* accumulate,
                               const std::function<void(
                                   std::uint32_t, const Labeling&, int,
                                   const Telemetry&)>& finish);

  std::unique_ptr<VectorProgram> program_;
  const NodeProgramFactory* last_factory_ = nullptr;
  std::string last_factory_name_;
  VectorBatch batch_;
  Labeling output_;
  std::vector<std::uint64_t> coin_keys_;  // BatchRunner's reusable key buffer
public:
  /// Reusable per-batch coin-key buffer for callers assembling key spans.
  std::vector<std::uint64_t>& coin_key_buffer() noexcept { return coin_keys_; }
};

/// Runs one lockstep batch of coin_keys.size() trials of the factory's
/// vector program (factory.create_vector() must be non-null) on `inst`.
/// coin_keys[t] is trial t's construction-coin Philox key — the exact
/// PhiloxCoins key the scalar engine would have been handed, so draws
/// match bit for bit. For each trial, `finish` receives the local trial
/// index, the output labeling (valid only during the call), the executed
/// round count, and the trial's deterministic telemetry delta. The
/// deltas (plus the batch arena high-water mark) are merged into
/// `accumulate` when non-null — the per-worker accumulator the batch
/// runner reads, exactly like EngineScratch::telemetry().
void run_vector_batch(
    const Instance& inst, const NodeProgramFactory& factory,
    std::span<const std::uint64_t> coin_keys, const OptimizationConfig& config,
    VectorScratch& scratch, Telemetry* accumulate,
    const std::function<void(std::uint32_t, const Labeling&, int,
                             const Telemetry&)>& finish);

}  // namespace lnc::local
