#include "local/simulate.h"

#include <algorithm>

#include "util/assert.h"

namespace lnc::local {

ReconstructedBall reconstruct_ball(const Knowledge& knowledge,
                                   ident::Identity center_identity) {
  ReconstructedBall result;

  // Stable node order: identities ascending (any order works; algorithms
  // may only read identities and inputs, never raw indices).
  std::vector<ident::Identity> ids;
  ids.reserve(knowledge.size());
  for (const auto& [id, record] : knowledge) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  auto index_of = [&ids](ident::Identity id) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    LNC_ASSERT(it != ids.end() && *it == id);
    return static_cast<graph::NodeId>(it - ids.begin());
  };

  graph::Graph::Builder builder(static_cast<graph::NodeId>(ids.size()));
  for (const auto& [a, b] : knowledge_edges(knowledge)) {
    builder.add_edge(index_of(a), index_of(b));
  }

  Labeling input(ids.size(), 0);
  for (const auto& [id, record] : knowledge) {
    input[index_of(id)] = record.input;
  }

  result.instance.g = builder.build();
  result.instance.input = std::move(input);
  result.instance.ids = ident::IdAssignment(std::move(ids));
  result.center = result.instance.ids.index_of(center_identity);
  LNC_ASSERT(result.center != graph::kInvalidNode);
  return result;
}

namespace {

template <typename ComputeAtNode>
SimulationResult simulate_impl(const Instance& inst, int t,
                               const EngineOptions& options,
                               ComputeAtNode&& compute) {
  const std::vector<Knowledge> tables = collect_balls(inst, t, options);

  SimulationResult result;
  result.rounds = t;
  result.output.resize(inst.node_count());
  for (graph::NodeId v = 0; v < inst.node_count(); ++v) {
    const ReconstructedBall ball = reconstruct_ball(tables[v], inst.ids[v]);
    // The reconstruction holds exactly B_G(v, t) (ball_collector tests),
    // so a radius-t BallView over it from the center is the identical
    // object a direct run would see — modulo node indexing, which the
    // View interface hides.
    const graph::BallView view_ball(ball.instance.g, ball.center, t);
    View view;
    view.ball = &view_ball;
    view.instance = &ball.instance;
    if (options.grant_n) view.n_nodes = inst.node_count();
    result.output[v] = compute(view);
  }
  return result;
}

}  // namespace

SimulationResult run_via_messages(const Instance& inst,
                                  const BallAlgorithm& algo,
                                  const EngineOptions& options) {
  return simulate_impl(inst, algo.radius(), options,
                       [&](const View& view) { return algo.compute(view); });
}

SimulationResult run_via_messages(const Instance& inst,
                                  const RandomizedBallAlgorithm& algo,
                                  const rand::CoinProvider& coins,
                                  const EngineOptions& options) {
  return simulate_impl(inst, algo.radius(), options, [&](const View& view) {
    return algo.compute(view, coins);
  });
}

}  // namespace lnc::local
