#include "lang/weak_coloring.h"

#include "util/assert.h"

namespace lnc::lang {

WeakColoring::WeakColoring(int colors) : colors_(colors) {
  LNC_EXPECTS(colors >= 2);
}

std::string WeakColoring::name() const {
  return "weak-" + std::to_string(colors_) + "-coloring";
}

bool WeakColoring::is_bad_ball(const LabeledBall& ball) const {
  const local::Label center_color = ball.output_of(0);
  if (center_color >= static_cast<local::Label>(colors_)) return true;
  const auto nbrs = ball.ball->neighbors(0);
  if (nbrs.empty()) return false;  // isolated nodes are unconstrained
  for (graph::NodeId nbr : nbrs) {
    if (ball.output_of(nbr) != center_color) return false;
  }
  return true;
}

}  // namespace lnc::lang
