// A concrete constructive-Lovász-Local-Lemma system (paper, sections 1.1
// and 4; Chung-Pettie-Su is the cited distributed LLL reference).
//
// Each node holds one binary variable. The bad event at node v:
//
//     E_v  ==  all variables in the closed neighborhood N[v] are equal.
//
// Pr[E_v] = 2^{-deg(v)} under uniform assignment, and E_v depends only on
// variables within distance 1, so events at distance >= 3 are independent:
// the symmetric LLL condition  e * p * (d+1) <= 1  holds whenever node
// degrees are >= ~5 (p = 2^-5, dependency degree <= d^2). The *language*
// "no bad event holds" is a radius-1 LCL; its f-resilient relaxation "at
// most f bad events hold" is the paper's Definition 1 applied to LLL.
//
// algo/moser_tardos.h constructs satisfying assignments by distributed
// resampling; experiment E11 measures its round count.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class LllAvoidance final : public LclLanguage {
 public:
  std::string name() const override { return "lll-avoidance"; }
  int radius() const override { return 1; }

  /// Bad ball == the bad event E_center holds (all of N[center] agree),
  /// or the output is not binary. Isolated nodes never trigger E_v (an
  /// empty neighborhood makes the event trivially... a single variable is
  /// always "all equal"; we follow the convention that E_v requires at
  /// least one neighbor, else the LLL condition would be unsatisfiable).
  bool is_bad_ball(const LabeledBall& ball) const override;

  /// True when the symmetric LLL condition e*p*(d+1) <= 1 holds for every
  /// node of g: p = 2^{-deg(v)} and d = (max event-dependency degree) =
  /// max over v of |{u != v : N[u] cap N[v] != empty}| bounded here by
  /// delta^2 with delta = max degree.
  static bool lll_condition_holds(const graph::Graph& g);
};

}  // namespace lnc::lang
