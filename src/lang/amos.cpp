#include "lang/amos.h"

namespace lnc::lang {

bool Amos::contains(const local::Instance& /*inst*/,
                    std::span<const local::Label> output) const {
  return selected_count(output) <= 1;
}

std::size_t Amos::selected_count(std::span<const local::Label> output) {
  std::size_t count = 0;
  for (local::Label value : output) {
    if (value == kSelected) ++count;
  }
  return count;
}

}  // namespace lnc::lang
