// amos — "at most one selected" (paper, section 2.3.1):
//
//   amos = { (G, (x, y)) : |{ v in V(G) : y(v) = selected }| <= 1 }
//
// The canonical witness that LD is a strict subset of BPLD: no t-round
// deterministic decider can decide amos on graphs of diameter > 2t, yet a
// zero-round randomized decider achieves guarantee p = (sqrt(5)-1)/2
// (decide/amos_decider.h; experiments E1 and E9).
//
// amos is NOT an LCL: membership is a global population count.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class Amos final : public Language {
 public:
  /// Output label marking a selected node.
  static constexpr local::Label kSelected = 1;

  std::string name() const override { return "amos"; }

  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override;

  /// Number of selected nodes.
  static std::size_t selected_count(std::span<const local::Label> output);
};

}  // namespace lnc::lang
