#include "lang/relax.h"

#include <cmath>

#include "util/assert.h"

namespace lnc::lang {

FResilient::FResilient(const LclLanguage& base, std::size_t max_faults)
    : base_(&base), max_faults_(max_faults) {}

std::string FResilient::name() const {
  return std::to_string(max_faults_) + "-resilient(" + base_->name() + ")";
}

bool FResilient::contains(const local::Instance& inst,
                          std::span<const local::Label> output) const {
  return base_->count_bad_balls(inst, output) <= max_faults_;
}

EpsSlack::EpsSlack(const LclLanguage& base, double eps)
    : base_(&base), eps_(eps) {
  LNC_EXPECTS(eps >= 0.0 && eps <= 1.0);
}

std::string EpsSlack::name() const {
  return "slack[" + std::to_string(eps_) + "](" + base_->name() + ")";
}

std::size_t EpsSlack::fault_budget(const local::Instance& inst) const {
  return static_cast<std::size_t>(
      std::floor(eps_ * static_cast<double>(inst.node_count())));
}

bool EpsSlack::contains(const local::Instance& inst,
                        std::span<const local::Label> output) const {
  return base_->count_bad_balls(inst, output) <= fault_budget(inst);
}

PolyResilient::PolyResilient(const LclLanguage& base, double exponent)
    : base_(&base), exponent_(exponent) {
  LNC_EXPECTS(exponent >= 0.0 && exponent <= 1.0);
}

std::string PolyResilient::name() const {
  return "poly-resilient[n^" + std::to_string(exponent_) + "](" +
         base_->name() + ")";
}

std::size_t PolyResilient::fault_budget(const local::Instance& inst) const {
  return static_cast<std::size_t>(
      std::floor(std::pow(static_cast<double>(inst.node_count()),
                          exponent_)));
}

bool PolyResilient::contains(const local::Instance& inst,
                             std::span<const local::Label> output) const {
  return base_->count_bad_balls(inst, output) <= fault_budget(inst);
}

}  // namespace lnc::lang
