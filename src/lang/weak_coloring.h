// Weak q-coloring (Naor-Stockmeyer): every non-isolated node must have at
// least one neighbor with a different color. The paper cites it (sections
// 1.1, 2.2.2) as a task both constructible and decidable in constant time.
// Bad(L): radius-1 balls whose non-isolated center matches ALL neighbors.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class WeakColoring final : public LclLanguage {
 public:
  explicit WeakColoring(int colors);

  std::string name() const override;
  int radius() const override { return 1; }
  bool is_bad_ball(const LabeledBall& ball) const override;

  int colors() const noexcept { return colors_; }

 private:
  int colors_;
};

}  // namespace lnc::lang
