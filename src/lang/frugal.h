// c-frugal proper coloring (paper, section 4): a proper coloring in which
// no color appears more than c times in the neighborhood of any node. The
// paper uses it as the example of an LD language whose "local fixing" is
// not easy — motivating why Corollary 1 needs Theorem 1 rather than a
// patch-the-faults argument. Bad(L), radius 1: center conflicts with a
// neighbor, palette overflow, or some color occurring > c times among the
// center's neighbors.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class FrugalColoring final : public LclLanguage {
 public:
  FrugalColoring(int colors, int frugality);

  std::string name() const override;
  int radius() const override { return 1; }
  bool is_bad_ball(const LabeledBall& ball) const override;

  int colors() const noexcept { return colors_; }
  int frugality() const noexcept { return frugality_; }

 private:
  int colors_;
  int frugality_;
};

}  // namespace lnc::lang
