// Maximal matching — a task the paper names among the f-resilient targets
// (section 1.2). A node's output is the identity of its matched neighbor,
// or kUnmatched. Bad(L), radius 1:
//   * the output names a non-neighbor (or the node itself),
//   * the named neighbor does not point back (symmetry),
//   * the center and some neighbor are both unmatched (maximality).
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class MaximalMatching final : public LclLanguage {
 public:
  static constexpr local::Label kUnmatched = 0;

  std::string name() const override { return "maximal-matching"; }
  int radius() const override { return 1; }
  bool is_bad_ball(const LabeledBall& ball) const override;
};

}  // namespace lnc::lang
