// Maximal independent set. Bad(L): radius-1 balls where the center is in
// the set together with a neighbor (independence), or the center and all
// its neighbors are out (maximality). Output 1 = in the set.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class MaximalIndependentSet final : public LclLanguage {
 public:
  static constexpr local::Label kIn = 1;

  std::string name() const override { return "mis"; }
  int radius() const override { return 1; }
  bool is_bad_ball(const LabeledBall& ball) const override;
};

}  // namespace lnc::lang
