#include "lang/language.h"

namespace lnc::lang {

bool LclLanguage::contains(const local::Instance& inst,
                           std::span<const local::Label> output) const {
  return count_bad_balls(inst, output) == 0;
}

std::vector<graph::NodeId> LclLanguage::bad_ball_centers(
    const local::Instance& inst,
    std::span<const local::Label> output) const {
  std::vector<graph::NodeId> centers;
  const int t = radius();
  for (graph::NodeId v = 0; v < inst.node_count(); ++v) {
    const graph::BallView view(inst.g, v, t);
    LabeledBall labeled{&view, &inst, output};
    if (is_bad_ball(labeled)) centers.push_back(v);
  }
  return centers;
}

std::size_t LclLanguage::count_bad_balls(
    const local::Instance& inst,
    std::span<const local::Label> output) const {
  return bad_ball_centers(inst, output).size();
}

}  // namespace lnc::lang
