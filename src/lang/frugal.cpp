#include "lang/frugal.h"

#include <vector>

#include "util/assert.h"

namespace lnc::lang {

FrugalColoring::FrugalColoring(int colors, int frugality)
    : colors_(colors), frugality_(frugality) {
  LNC_EXPECTS(colors >= 1);
  LNC_EXPECTS(frugality >= 1);
}

std::string FrugalColoring::name() const {
  return std::to_string(frugality_) + "-frugal-" + std::to_string(colors_) +
         "-coloring";
}

bool FrugalColoring::is_bad_ball(const LabeledBall& ball) const {
  const local::Label center_color = ball.output_of(0);
  if (center_color >= static_cast<local::Label>(colors_)) return true;
  std::vector<int> uses(static_cast<std::size_t>(colors_), 0);
  for (graph::NodeId nbr : ball.ball->neighbors(0)) {
    const local::Label c = ball.output_of(nbr);
    if (c >= static_cast<local::Label>(colors_)) return true;
    if (c == center_color) return true;  // not proper
    if (++uses[static_cast<std::size_t>(c)] > frugality_) return true;
  }
  return false;
}

}  // namespace lnc::lang
