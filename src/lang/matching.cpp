#include "lang/matching.h"

#include "ident/identity.h"

namespace lnc::lang {

bool MaximalMatching::is_bad_ball(const LabeledBall& ball) const {
  const auto& inst = *ball.instance;
  const graph::BallView& view = *ball.ball;
  const local::Label center_out = ball.output_of(0);
  const ident::Identity center_id = inst.ids[view.to_original(0)];
  const auto nbrs = view.neighbors(0);

  if (center_out == kUnmatched) {
    // Maximality: an unmatched center with an unmatched neighbor is bad.
    for (graph::NodeId nbr : nbrs) {
      if (ball.output_of(nbr) == kUnmatched) return true;
    }
    return false;
  }

  // Validity: the output must name a neighbor's identity...
  graph::NodeId mate = graph::kInvalidNode;
  for (graph::NodeId nbr : nbrs) {
    if (inst.ids[view.to_original(nbr)] == center_out) {
      mate = nbr;
      break;
    }
  }
  if (mate == graph::kInvalidNode) return true;
  // ... and that neighbor must point back (symmetry).
  return ball.output_of(mate) != center_id;
}

}  // namespace lnc::lang
