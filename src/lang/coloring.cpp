#include "lang/coloring.h"

#include "util/assert.h"

namespace lnc::lang {

ProperColoring::ProperColoring(int colors) : colors_(colors) {
  LNC_EXPECTS(colors >= 1);
}

std::string ProperColoring::name() const {
  return "proper-" + std::to_string(colors_) + "-coloring";
}

bool ProperColoring::is_bad_ball(const LabeledBall& ball) const {
  const local::Label center_color = ball.output_of(0);
  if (center_color >= static_cast<local::Label>(colors_)) return true;
  for (graph::NodeId nbr : ball.ball->neighbors(0)) {
    if (ball.output_of(nbr) == center_color) return true;
  }
  return false;
}

std::size_t ProperColoring::conflict_edges(
    const local::Instance& inst, std::span<const local::Label> output) {
  std::size_t conflicts = 0;
  for (const graph::Edge& e : inst.g.edges()) {
    if (output[e.u] == output[e.v]) ++conflicts;
  }
  return conflicts;
}

}  // namespace lnc::lang
