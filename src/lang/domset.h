// Minimal dominating set — the third task the paper names for f-resilient
// relaxations (section 1.2). Output 1 = in the set S.
//
// Domination is a radius-1 property (a node outside S needs a neighbor in
// S). MINIMALITY is radius-2: v in S is redundant iff S \ {v} still
// dominates, i.e. iff no node in N[v] has v as its unique dominator; each
// witness's own dominators live in its closed neighborhood, i.e. within
// distance 2 of v. Bad(L) therefore uses radius 2 — a useful stress case
// for everything downstream that assumed t = 1.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class MinimalDominatingSet final : public LclLanguage {
 public:
  static constexpr local::Label kIn = 1;

  std::string name() const override { return "minimal-dominating-set"; }
  int radius() const override { return 2; }
  bool is_bad_ball(const LabeledBall& ball) const override;
};

}  // namespace lnc::lang
