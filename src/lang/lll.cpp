#include "lang/lll.h"

#include <cmath>

namespace lnc::lang {

bool LllAvoidance::is_bad_ball(const LabeledBall& ball) const {
  const local::Label center_value = ball.output_of(0);
  if (center_value > 1) return true;  // variables are binary
  const auto nbrs = ball.ball->neighbors(0);
  if (nbrs.empty()) return false;
  for (graph::NodeId nbr : nbrs) {
    if (ball.output_of(nbr) > 1) return true;
    if (ball.output_of(nbr) != center_value) return false;
  }
  return true;  // every variable in N[center] agrees: E_center holds
}

bool LllAvoidance::lll_condition_holds(const graph::Graph& g) {
  const double delta = static_cast<double>(g.max_degree());
  const double dependency_degree = delta * delta;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const double p = std::pow(2.0, -static_cast<double>(g.degree(v)));
    if (std::exp(1.0) * p * (dependency_degree + 1.0) > 1.0) return false;
  }
  return true;
}

}  // namespace lnc::lang
