#include "lang/domset.h"

namespace lnc::lang {

bool MinimalDominatingSet::is_bad_ball(const LabeledBall& ball) const {
  const graph::BallView& view = *ball.ball;
  if (ball.output_of(0) > kIn) return true;  // labels are {0, 1}
  const bool center_in = ball.output_of(0) == kIn;

  auto dominated_excluding_center = [&](graph::NodeId local) {
    // Is `local` dominated by someone other than the ball's center?
    // All of local's neighbors are present in the radius-2 ball whenever
    // dist(local) <= 1, which is the only case we query below.
    if (local != 0 && ball.output_of(local) == kIn) return true;
    for (graph::NodeId w : view.neighbors(local)) {
      if (w != 0 && ball.output_of(w) == kIn) return true;
    }
    return false;
  };

  if (!center_in) {
    // Domination: the center needs a dominator in N[center].
    for (graph::NodeId nbr : view.neighbors(0)) {
      if (ball.output_of(nbr) == kIn) return false;
    }
    return true;  // nobody dominates the center
  }

  // Minimality: center v in S is bad iff removing it keeps every node in
  // N[v] dominated (then S was not minimal at v).
  if (!dominated_excluding_center(0)) return false;
  for (graph::NodeId nbr : view.neighbors(0)) {
    if (view.distance(nbr) != 1) continue;
    if (!dominated_excluding_center(nbr)) return false;
  }
  return true;  // v is redundant
}

}  // namespace lnc::lang
