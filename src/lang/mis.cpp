#include "lang/mis.h"

namespace lnc::lang {

bool MaximalIndependentSet::is_bad_ball(const LabeledBall& ball) const {
  const bool center_in = ball.output_of(0) == kIn;
  if (ball.output_of(0) > kIn) return true;  // labels are {0, 1}
  bool any_neighbor_in = false;
  for (graph::NodeId nbr : ball.ball->neighbors(0)) {
    if (ball.output_of(nbr) == kIn) {
      any_neighbor_in = true;
      if (center_in) return true;  // independence violated
    }
  }
  if (!center_in && !any_neighbor_in) return true;  // maximality violated
  return false;
}

}  // namespace lnc::lang
