// Distributed languages (paper, section 2.2.1) and locally checkable
// labelings (section 4, Definition 1).
//
// A Language answers the global membership question "(G, (x, y)) in L?".
// An LclLanguage is additionally *defined by the exclusion of bad balls*:
// L contains exactly the configurations with zero balls in Bad(L). Its
// f-resilient relaxation L_f (Definition 1) tolerates at most f bad balls
// and is generally NOT locally checkable — the crux of the paper.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/ball.h"
#include "graph/graph.h"
#include "local/instance.h"

namespace lnc::lang {

/// A labeled ball: structure plus input/output labels of its members
/// (ball-local indexing; 0 is the center). Bad(L) should be a property of
/// the labeled structure — that portability across host graphs is what
/// makes legal/illegal balls meaningful (section 1.1). Languages whose
/// outputs *name* neighbors (e.g. maximal-matching) may read identities
/// through `instance`, which preserves portability because the named
/// identities travel with the ball.
struct LabeledBall {
  const graph::BallView* ball = nullptr;
  const local::Instance* instance = nullptr;
  std::span<const local::Label> output;       // by ORIGINAL node index
  /// Alternative output form covering exactly the ball's members — the
  /// streaming implicit path never materializes an O(n) labeling (see
  /// decide::DeciderView). Exactly one of the two spans is non-empty.
  std::span<const local::Label> ball_output;  // by ball-LOCAL index

  local::Label input_of(graph::NodeId local) const noexcept {
    return instance->input_of(ball->to_original(local));
  }
  local::Label output_of(graph::NodeId local) const noexcept {
    return output.empty() ? ball_output[local]
                          : output[ball->to_original(local)];
  }
};

class Language {
 public:
  virtual ~Language() = default;
  virtual std::string name() const = 0;

  /// Global membership: is (G, (x, y)) in L?
  virtual bool contains(const local::Instance& inst,
                        std::span<const local::Label> output) const = 0;
};

/// A language defined by exclusion of a set Bad(L) of radius-t balls.
class LclLanguage : public Language {
 public:
  /// The (constant) radius t of the excluded balls.
  virtual int radius() const = 0;

  /// Is this labeled ball in Bad(L)?
  virtual bool is_bad_ball(const LabeledBall& ball) const = 0;

  /// Membership == no node's ball is bad.
  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override;

  /// F(G) in the paper's Corollary-1 proof: the centers of bad balls.
  std::vector<graph::NodeId> bad_ball_centers(
      const local::Instance& inst,
      std::span<const local::Label> output) const;

  /// |F(G)|.
  std::size_t count_bad_balls(const local::Instance& inst,
                              std::span<const local::Label> output) const;
};

}  // namespace lnc::lang
