// The paper's two relaxations of an LCL language L (sections 1.1 and 4).
//
//   f-resilient  (Definition 1):  L_f = configurations with at most f bad
//   balls. NOT locally checkable in general (counting to f is global), but
//   in BPLD (Corollary 1's decider, decide/resilient_decider.h). Theorem 1
//   concludes randomization does not help to *construct* members of L_f.
//
//   epsilon-slack:  configurations with at most eps*n bad balls. The
//   threshold depends on n, so the language is in BPLD#node but NOT in
//   BPLD (section 5) — and randomization DOES help: the zero-round uniform
//   coloring solves slack 3-coloring with constant probability while
//   deterministic algorithms need Omega(log* n) rounds. Experiments E2/E4
//   measure the two sides of this separation.
#pragma once

#include <memory>

#include "lang/language.h"

namespace lnc::lang {

/// L_f: at most `f` balls in Bad(L). Holds a non-owning reference to the
/// base language, which must outlive the relaxation.
class FResilient final : public Language {
 public:
  FResilient(const LclLanguage& base, std::size_t max_faults);

  std::string name() const override;

  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override;

  const LclLanguage& base() const noexcept { return *base_; }
  std::size_t max_faults() const noexcept { return max_faults_; }

 private:
  const LclLanguage* base_;
  std::size_t max_faults_;
};

/// Epsilon-slack: at most eps * n bad balls (threshold floor(eps*n)).
class EpsSlack final : public Language {
 public:
  EpsSlack(const LclLanguage& base, double eps);

  std::string name() const override;

  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override;

  const LclLanguage& base() const noexcept { return *base_; }
  double eps() const noexcept { return eps_; }

  /// The instance-dependent fault budget floor(eps * n).
  std::size_t fault_budget(const local::Instance& inst) const;

 private:
  const LclLanguage* base_;
  double eps_;
};

/// The paper's open-problem relaxation (section 5): at most n^c bad balls
/// for an exponent c in (0, 1) — "one intriguing question is whether
/// randomization helps for intermediate relaxations, like allowing O(n^c)
/// nodes to output incorrect values". At c = 0 this degenerates to
/// 1-resilience, at c = 1 to 1-slack; the bench sweep (E2 extension)
/// measures where the zero-round Monte-Carlo algorithm's success
/// probability collapses. Like eps-slack, the threshold needs n, so the
/// language lies in BPLD#node, outside Theorem 1's reach — which is why
/// the paper leaves the regime open.
class PolyResilient final : public Language {
 public:
  PolyResilient(const LclLanguage& base, double exponent);

  std::string name() const override;

  bool contains(const local::Instance& inst,
                std::span<const local::Label> output) const override;

  const LclLanguage& base() const noexcept { return *base_; }
  double exponent() const noexcept { return exponent_; }

  /// floor(n^exponent).
  std::size_t fault_budget(const local::Instance& inst) const;

 private:
  const LclLanguage* base_;
  double exponent_;
};

}  // namespace lnc::lang
