// Proper q-coloring — the paper's running example. Bad(L) = balls of
// radius 1 whose center shares its color with some neighbor, or whose
// center's color is outside the palette {0, ..., q-1}.
#pragma once

#include "lang/language.h"

namespace lnc::lang {

class ProperColoring final : public LclLanguage {
 public:
  explicit ProperColoring(int colors);

  std::string name() const override;
  int radius() const override { return 1; }
  bool is_bad_ball(const LabeledBall& ball) const override;

  int colors() const noexcept { return colors_; }

  /// Number of monochromatic edges under `output` — the conflict count the
  /// epsilon-slack experiment (E2) reports.
  static std::size_t conflict_edges(const local::Instance& inst,
                                    std::span<const local::Label> output);

 private:
  int colors_;
};

}  // namespace lnc::lang
