#include "decide/slack_decider.h"

#include <algorithm>
#include <cmath>

#include "decide/resilient_decider.h"
#include "util/assert.h"
#include "util/table.h"

namespace lnc::decide {

SlackDecider::SlackDecider(const lang::LclLanguage& base, double eps)
    : base_(&base), eps_(eps) {
  LNC_EXPECTS(eps > 0.0 && eps <= 1.0);
}

std::string SlackDecider::name() const {
  return "slack-decider(eps=" + util::format_double(eps_, 4) + ", " +
         base_->name() + ")";
}

int SlackDecider::radius() const { return base_->radius(); }

double SlackDecider::p_for(std::uint64_t n_nodes) const {
  const auto budget = static_cast<std::size_t>(std::max(
      1.0, std::floor(eps_ * static_cast<double>(n_nodes))));
  return ResilientDecider::default_p(budget);
}

bool SlackDecider::accept(const DeciderView& view,
                          const rand::CoinProvider& coins) const {
  LNC_EXPECTS(view.view.n_nodes.has_value() &&
              "SlackDecider is a BPLD#node decider: it must be granted n");
  lang::LabeledBall ball{view.view.ball, view.view.instance, view.output,
                         view.ball_output};
  if (!base_->is_bad_ball(ball)) return true;
  const ident::Identity self =
      view.view.instance->ids[view.view.ball->to_original(0)];
  rand::NodeRng rng(coins, self);
  return rng.bernoulli(p_for(*view.view.n_nodes));
}

}  // namespace lnc::decide
