#include "decide/amos_decider.h"

#include "lang/amos.h"
#include "util/assert.h"
#include "util/math.h"
#include "util/table.h"

namespace lnc::decide {

AmosDecider::AmosDecider(double p)
    : p_(p < 0.0 ? util::golden_ratio_guarantee() : p) {
  LNC_EXPECTS(p_ >= 0.0 && p_ <= 1.0);
}

std::string AmosDecider::name() const {
  return "amos-decider(p=" + util::format_double(p_, 4) + ")";
}

double AmosDecider::guarantee() const { return util::amos_guarantee(p_); }

bool AmosDecider::accept(const DeciderView& view,
                         const rand::CoinProvider& coins) const {
  if (view.output_of(0) != lang::Amos::kSelected) return true;
  // Selected nodes flip one private coin. The coin is keyed by the node's
  // true identity and a decision-draw index distinct from any coin the
  // construction algorithm used (the provider's stream tag separates C
  // from D; see rand/coins.h).
  const ident::Identity self =
      view.view.instance->ids[view.view.ball->to_original(0)];
  rand::NodeRng rng(coins, self);
  return rng.bernoulli(p_);
}

}  // namespace lnc::decide
