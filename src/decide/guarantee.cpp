#include "decide/guarantee.h"

#include "decide/experiment_plans.h"
#include "local/batch_runner.h"
#include "rand/splitmix.h"

namespace lnc::decide {

GuaranteeReport measure_guarantee(const RandomizedDecider& decider,
                                  const ConfigurationSampler& yes_sampler,
                                  const ConfigurationSampler& no_sampler,
                                  const GuaranteeOptions& options) {
  GuaranteeReport report;
  report.advertised = decider.guarantee();

  EvaluateOptions eval_options;
  eval_options.grant_n = options.grant_n;

  local::BatchRunner runner(options.pool);
  report.accept_on_yes = runner.run(guarantee_side_plan(
      decider.name() + "/accept-on-yes", yes_sampler, decider,
      /*want_accept=*/true, options.trials,
      rand::mix_keys(options.base_seed, 0x59), eval_options));
  report.reject_on_no = runner.run(guarantee_side_plan(
      decider.name() + "/reject-on-no", no_sampler, decider,
      /*want_accept=*/false, options.trials,
      rand::mix_keys(options.base_seed, 0x4E), eval_options));
  return report;
}

}  // namespace lnc::decide
