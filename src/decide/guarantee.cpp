#include "decide/guarantee.h"

#include "rand/splitmix.h"

namespace lnc::decide {

GuaranteeReport measure_guarantee(const RandomizedDecider& decider,
                                  const ConfigurationSampler& yes_sampler,
                                  const ConfigurationSampler& no_sampler,
                                  const GuaranteeOptions& options) {
  GuaranteeReport report;
  report.advertised = decider.guarantee();

  EvaluateOptions eval_options;
  eval_options.grant_n = options.grant_n;

  auto run_side = [&](const ConfigurationSampler& sampler, bool want_accept,
                      std::uint64_t side_tag) {
    return stats::estimate_probability(
        options.trials, rand::mix_keys(options.base_seed, side_tag),
        [&](std::uint64_t seed) {
          const SampledConfiguration sample =
              sampler(rand::mix_keys(seed, 0xC0FF));
          const rand::PhiloxCoins coins(rand::mix_keys(seed, 0xD1CE),
                                        rand::Stream::kDecision);
          const DecisionOutcome outcome = evaluate(
              sample.instance, sample.output, decider, coins, eval_options);
          return outcome.accepted == want_accept;
        },
        options.pool);
  };

  report.accept_on_yes = run_side(yes_sampler, /*want_accept=*/true, 0x59);
  report.reject_on_no = run_side(no_sampler, /*want_accept=*/false, 0x4E);
  return report;
}

}  // namespace lnc::decide
