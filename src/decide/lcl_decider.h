// The canonical deterministic decider for an LCL language: node v accepts
// iff its radius-t ball is not in Bad(L). Witnesses L in LD: on a yes
// instance every ball is good (all accept); on a no instance some ball is
// bad and its center rejects. This is the paper's "checking whether a
// given graph coloring is proper can be done in just one round".
#pragma once

#include "decide/decider.h"
#include "lang/language.h"

namespace lnc::decide {

class LclDecider final : public Decider {
 public:
  explicit LclDecider(const lang::LclLanguage& language);

  std::string name() const override;
  int radius() const override;
  bool accept(const DeciderView& view) const override;

 private:
  const lang::LclLanguage* language_;
};

}  // namespace lnc::decide
