#include "decide/resilient_decider.h"

#include <cmath>

#include "util/assert.h"
#include "util/table.h"

namespace lnc::decide {

util::Interval ResilientDecider::admissible_interval(std::size_t max_faults) {
  LNC_EXPECTS(max_faults >= 1);
  const double f = static_cast<double>(max_faults);
  return {std::pow(2.0, -1.0 / f), std::pow(2.0, -1.0 / (f + 1.0))};
}

double ResilientDecider::default_p(std::size_t max_faults) {
  const util::Interval iv = admissible_interval(max_faults);
  return std::sqrt(iv.lo * iv.hi);
}

ResilientDecider::ResilientDecider(const lang::LclLanguage& base,
                                   std::size_t max_faults, double p)
    : base_(&base),
      max_faults_(max_faults),
      p_(p < 0.0 ? default_p(max_faults) : p) {
  const util::Interval iv = admissible_interval(max_faults);
  LNC_EXPECTS(p_ > iv.lo && p_ < iv.hi);
}

std::string ResilientDecider::name() const {
  return "resilient-decider(f=" + std::to_string(max_faults_) + ", " +
         base_->name() + ", p=" + util::format_double(p_, 4) + ")";
}

int ResilientDecider::radius() const { return base_->radius(); }

double ResilientDecider::guarantee() const {
  // min over the two error modes: p^f on yes instances, 1 - p^{f+1} on no
  // instances; both exceed 1/2 by the choice of p.
  const double f = static_cast<double>(max_faults_);
  const double yes_side = std::pow(p_, f);
  const double no_side = 1.0 - std::pow(p_, f + 1.0);
  return std::min(yes_side, no_side);
}

bool ResilientDecider::accept(const DeciderView& view,
                              const rand::CoinProvider& coins) const {
  lang::LabeledBall ball{view.view.ball, view.view.instance, view.output,
                         view.ball_output};
  if (!base_->is_bad_ball(ball)) return true;
  const ident::Identity self =
      view.view.instance->ids[view.view.ball->to_original(0)];
  rand::NodeRng rng(coins, self);
  return rng.bernoulli(p_);
}

}  // namespace lnc::decide
