// Distributed deciders (paper, sections 2.2 and 2.3).
//
// A decider maps an input-output configuration to per-node boolean
// verdicts; the configuration is ACCEPTED iff every node outputs true.
// Deterministic deciders realize LD; randomized Monte-Carlo deciders with
// guarantee p > 1/2 realize BPLD:
//
//   (G,(x,y)) in L  => Pr[all nodes accept]      >= p
//   (G,(x,y)) not in L => Pr[some node rejects]  >= p        (Eq. 1)
//
// Deciders see the same View as construction algorithms plus the outputs.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "local/runner.h"

namespace lnc::decide {

/// A decider's view: a construction View plus the output labeling.
///
/// The outputs arrive in one of two forms: a full labeling indexed by
/// ORIGINAL node index (the materialized path), or a ball-local span
/// `ball_output` covering exactly the ball's members (the streaming
/// implicit path, which never holds an O(n) labeling). Deciders read
/// through output_of and never notice the difference.
struct DeciderView {
  local::View view;
  std::span<const local::Label> output;       // by ORIGINAL node index
  std::span<const local::Label> ball_output;  // by ball-LOCAL index

  local::Label output_of(graph::NodeId local) const noexcept {
    return output.empty() ? ball_output[local]
                          : output[view.ball->to_original(local)];
  }
};

/// Deterministic decider (class LD when radius is constant).
class Decider {
 public:
  virtual ~Decider() = default;
  virtual std::string name() const = 0;
  virtual int radius() const = 0;
  /// The verdict at the ball's center.
  virtual bool accept(const DeciderView& view) const = 0;
};

/// Randomized Monte-Carlo decider (class BPLD when radius is constant and
/// the guarantee exceeds 1/2). Coins are addressed through the provider by
/// node identity, same contract as construction algorithms.
class RandomizedDecider {
 public:
  virtual ~RandomizedDecider() = default;
  virtual std::string name() const = 0;
  virtual int radius() const = 0;
  /// The decider's advertised guarantee p (for reporting/verification).
  virtual double guarantee() const = 0;
  virtual bool accept(const DeciderView& view,
                      const rand::CoinProvider& coins) const = 0;
};

}  // namespace lnc::decide
