// Running deciders over whole configurations.
//
// Acceptance is the conjunction of per-node verdicts (paper, Eq. 1). The
// optional "far from u" restriction implements the proof device of Claims
// 4 and 5: only verdicts of nodes at distance GREATER than `exclusion
// radius` from a distinguished node u count. ("We say that D accepts
// (G,(x,y)) far from v if D outputs true at all nodes at distance greater
// than t+t' from v.")
#pragma once

#include <optional>
#include <vector>

#include "decide/decider.h"
#include "local/instance.h"
#include "local/runner.h"
#include "local/telemetry.h"
#include "stats/threadpool.h"

namespace lnc::fault {
class FaultModel;
}

namespace lnc::decide {

/// Restricts which verdicts count toward acceptance.
struct FarFrom {
  graph::NodeId node = 0;  ///< the distinguished node u
  int exclusion_radius = 0;  ///< verdicts at distance <= this are ignored
};

struct DecisionOutcome {
  bool accepted = true;  ///< conjunction over the counted verdicts
  std::vector<graph::NodeId> rejecting;  ///< counted nodes voting false

  /// The paper's Reject(u, sigma') set is `rejecting` of an unrestricted
  /// run under a fixed decision seed.
};

struct EvaluateOptions {
  std::optional<FarFrom> far_from;
  bool grant_n = false;  ///< BPLD#node deciders need |V|
  const stats::ThreadPool* pool = nullptr;

  /// When set, the evaluation charges its modeled communication volume
  /// here (same simulation-theorem accounting as the direct ball runner:
  /// one announcement per member of each counted node's ball, the ball's
  /// canonical word encoding, and max(radius, 1) rounds per evaluation).
  /// Honored by direct evaluate() calls only: the plan factories in
  /// decide/experiment_plans.h REPLACE this per trial with the executing
  /// worker's arena accumulator — a single caller-supplied sink shared
  /// across BatchRunner workers would race; read plan telemetry from
  /// BatchRunner::last_telemetry() / ShardTally::telemetry instead.
  local::Telemetry* telemetry = nullptr;

  /// Reusable ball storage for sequential evaluations (same contract as
  /// local::RunOptions::ball); the plan factories pass the executing
  /// worker's slot per trial. Pooled evaluations manage per-worker
  /// workspaces internally.
  local::BallWorkspace* ball = nullptr;

  /// Optional adversary (src/fault/): when `fault` is non-null and
  /// non-trivial, `fault_coins` must be the trial's dedicated fault
  /// stream. Crashed nodes cast no verdict (they are not counted toward
  /// acceptance — a crash-stop node cannot reject), and every surviving
  /// node's decision ball is collected inside the realized fault
  /// subgraph. The censor charges NO fault telemetry: the construction
  /// side already tallied this trial's realized faults exactly once.
  const fault::FaultModel* fault = nullptr;
  const rand::CoinProvider* fault_coins = nullptr;
};

/// Deterministic decider over the configuration.
DecisionOutcome evaluate(const local::Instance& inst,
                         std::span<const local::Label> output,
                         const Decider& decider,
                         const EvaluateOptions& options = {});

/// Randomized decider with explicit coins (fix the seed upstream to run
/// the paper's D_{sigma'}).
DecisionOutcome evaluate(const local::Instance& inst,
                         std::span<const local::Label> output,
                         const RandomizedDecider& decider,
                         const rand::CoinProvider& coins,
                         const EvaluateOptions& options = {});

}  // namespace lnc::decide
