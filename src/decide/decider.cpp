#include "decide/decider.h"

// Interface definitions only; concrete deciders live in sibling files.
// This translation unit anchors the vtables.

namespace lnc::decide {}  // namespace lnc::decide
