// Empirical verification that a randomized decider meets Eq. (1): sample
// yes/no configurations, run the decider with fresh decision coins, and
// check  Pr[all accept | yes] and Pr[some reject | no]  against the
// advertised guarantee. The instruments behind experiments E1 and E4.
#pragma once

#include <functional>

#include "decide/evaluate.h"
#include "local/batch_runner.h"
#include "stats/montecarlo.h"

namespace lnc::decide {

/// A configuration sampler: produces (instance, output) pairs; `seed`
/// controls any randomness in the sample. The sampler owns the storage via
/// the returned struct. Samplers with a fixed topology should set
/// `shared_instance` to an interned instance (scenario/registry.h) so the
/// per-trial sample only rebuilds the output labeling.
using SampledConfiguration = local::SampledConfiguration;
using ConfigurationSampler =
    std::function<SampledConfiguration(std::uint64_t seed)>;

struct GuaranteeReport {
  stats::Estimate accept_on_yes;  ///< Pr[all accept] over yes samples
  stats::Estimate reject_on_no;   ///< Pr[some rejects] over no samples
  double advertised = 0.0;        ///< decider.guarantee()

  /// Both empirical bounds' CI lower ends clear 1/2 (the BPLD bar).
  bool meets_bpld_bar() const noexcept {
    return accept_on_yes.ci.lo > 0.5 && reject_on_no.ci.lo > 0.5;
  }
};

struct GuaranteeOptions {
  std::uint64_t trials = 2000;
  std::uint64_t base_seed = 1;
  bool grant_n = false;
  const stats::ThreadPool* pool = nullptr;
};

/// Estimates both sides of Eq. (1). Each trial draws one configuration
/// from the corresponding sampler and one decision-coin seed.
GuaranteeReport measure_guarantee(const RandomizedDecider& decider,
                                  const ConfigurationSampler& yes_sampler,
                                  const ConfigurationSampler& no_sampler,
                                  const GuaranteeOptions& options = {});

}  // namespace lnc::decide
