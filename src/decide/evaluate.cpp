#include "decide/evaluate.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>

#include "fault/fault.h"
#include "graph/metrics.h"
#include "util/assert.h"

namespace lnc::decide {
namespace {

template <typename VerdictAt>
DecisionOutcome evaluate_impl(const local::Instance& inst,
                              const EvaluateOptions& options, int radius,
                              VerdictAt&& verdict_at) {
  inst.validate();
  const graph::NodeId n = inst.node_count();

  std::vector<char> counted(n, 1);
  if (options.far_from.has_value()) {
    const std::vector<int> dist =
        graph::bfs_distances(inst.g, options.far_from->node);
    for (graph::NodeId v = 0; v < n; ++v) {
      counted[v] =
          (dist[v] >= 0 && dist[v] <= options.far_from->exclusion_radius)
              ? 0
              : 1;
    }
  }

  // Fault censoring: crashed nodes cast no verdict, and surviving nodes
  // observe only the realized fault subgraph. Telemetry for the realized
  // faults is NOT charged here — the construction side owns that tally.
  std::optional<fault::BallCensor> censor;
  if (options.fault != nullptr && !options.fault->trivial()) {
    LNC_EXPECTS(options.fault_coins != nullptr &&
                "non-trivial fault model requires its coin stream");
    censor.emplace(*options.fault, *options.fault_coins,
                   [&inst](graph::NodeId v) { return inst.identity_of(v); });
    for (graph::NodeId v = 0; v < n; ++v) {
      if (counted[v] != 0 && censor->node_blocked(v)) counted[v] = 0;
    }
  }
  const graph::BallFilter* filter =
      censor.has_value() ? &*censor : nullptr;

  std::vector<char> rejected(n, 0);
  const bool count_telemetry = options.telemetry != nullptr;
  // Relaxed atomics: commutative sums, bit-identical whatever the node
  // schedule (see local/runner.cpp).
  std::atomic<std::uint64_t> announcements{0};
  std::atomic<std::uint64_t> encoded_words{0};
  std::atomic<std::uint64_t> expansions{0};
  auto body = [&](local::BallWorkspace& workspace, std::uint64_t v) {
    if (counted[v] == 0) return;
    workspace.ball.collect(inst.topology(), static_cast<graph::NodeId>(v),
                           radius, workspace.scratch, filter);
    const graph::BallView& ball = workspace.ball;
    local::View view;
    view.ball = &ball;
    view.instance = &inst;
    if (options.grant_n) view.n_nodes = n;
    if (!verdict_at(view)) rejected[v] = 1;
    if (count_telemetry) {
      announcements.fetch_add(ball.size(), std::memory_order_relaxed);
      encoded_words.fetch_add(ball.encoded_words(),
                              std::memory_order_relaxed);
      expansions.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (options.pool != nullptr) {
    std::vector<local::BallWorkspace> workspaces(
        options.pool->thread_count());
    options.pool->parallel_for_workers(
        n, [&](unsigned worker, std::uint64_t v) {
          body(workspaces[worker], v);
        });
  } else {
    local::BallWorkspace local_workspace;
    local::BallWorkspace& workspace =
        options.ball != nullptr ? *options.ball : local_workspace;
    for (graph::NodeId v = 0; v < n; ++v) body(workspace, v);
  }
  if (count_telemetry) {
    local::Telemetry& telemetry = *options.telemetry;
    telemetry.messages_sent +=
        announcements.load(std::memory_order_relaxed);
    telemetry.words_sent += encoded_words.load(std::memory_order_relaxed);
    telemetry.rounds_executed +=
        static_cast<std::uint64_t>(std::max(radius, 1));
    telemetry.ball_expansions += expansions.load(std::memory_order_relaxed);
  }

  DecisionOutcome outcome;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (rejected[v] != 0) {
      outcome.accepted = false;
      outcome.rejecting.push_back(v);
    }
  }
  return outcome;
}

}  // namespace

DecisionOutcome evaluate(const local::Instance& inst,
                         std::span<const local::Label> output,
                         const Decider& decider,
                         const EvaluateOptions& options) {
  return evaluate_impl(inst, options, decider.radius(),
                       [&](const local::View& view) {
                         DeciderView dv{view, output};
                         return decider.accept(dv);
                       });
}

DecisionOutcome evaluate(const local::Instance& inst,
                         std::span<const local::Label> output,
                         const RandomizedDecider& decider,
                         const rand::CoinProvider& coins,
                         const EvaluateOptions& options) {
  return evaluate_impl(inst, options, decider.radius(),
                       [&](const local::View& view) {
                         DeciderView dv{view, output};
                         return decider.accept(dv, coins);
                       });
}

}  // namespace lnc::decide
