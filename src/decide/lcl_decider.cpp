#include "decide/lcl_decider.h"

namespace lnc::decide {

LclDecider::LclDecider(const lang::LclLanguage& language)
    : language_(&language) {}

std::string LclDecider::name() const {
  return "lcl-decider(" + language_->name() + ")";
}

int LclDecider::radius() const { return language_->radius(); }

bool LclDecider::accept(const DeciderView& view) const {
  lang::LabeledBall ball{view.view.ball, view.view.instance, view.output,
                         view.ball_output};
  return !language_->is_bad_ball(ball);
}

}  // namespace lnc::decide
