// The epsilon-slack decider — a BPLD#node decider (paper, section 5):
//
//   "the eps-slack relaxation of (Delta+1)-coloring is in BPLD#node
//    (using the same algorithm as in the proof of Corollary 1 with
//    f = eps*n)"
//
// Identical mechanism to ResilientDecider, but the fault budget f is the
// instance-dependent floor(eps * n) — which requires every node to KNOW n.
// That knowledge is what bars the language from BPLD and (section 5) is
// why Theorem 1 does not extend to BPLD#node: the separation experiment E2
// shows randomized construction succeeding where Theorem 1 would forbid it
// if eps-slack were in plain BPLD.
#pragma once

#include "decide/decider.h"
#include "lang/language.h"

namespace lnc::decide {

class SlackDecider final : public RandomizedDecider {
 public:
  SlackDecider(const lang::LclLanguage& base, double eps);

  std::string name() const override;
  int radius() const override;
  /// Advertised guarantee; depends on n, so this reports the infimum over
  /// n >= 1 given the p-schedule (both sides exceed 1/2 for every n).
  double guarantee() const override { return 0.5; }
  bool accept(const DeciderView& view,
              const rand::CoinProvider& coins) const override;

  /// The per-instance acceptance probability p(n) = default_p(eps * n).
  double p_for(std::uint64_t n_nodes) const;

  double eps() const noexcept { return eps_; }

 private:
  const lang::LclLanguage* base_;
  double eps_;
};

}  // namespace lnc::decide
