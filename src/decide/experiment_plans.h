// ExperimentPlan factories for decider workloads — the decision-side
// counterpart of local/experiment.h. Every Monte-Carlo quantity involving
// a decider (acceptance probabilities, Eq.-(1) guarantee sides, the
// Claim-4/Claim-5 far-from statistics) is declared through one of these
// and executed by local::BatchRunner.
#pragma once

#include "decide/evaluate.h"
#include "decide/guarantee.h"
#include "local/experiment.h"

namespace lnc::decide {

/// Pr over fresh decision coins that D accepts the FIXED configuration
/// (inst, output). `success_on_accept == false` inverts the success notion
/// (estimates the rejection probability instead). The referenced instance,
/// output span, and decider must outlive the plan's run.
local::ExperimentPlan acceptance_plan(
    std::string name, const local::Instance& inst,
    std::span<const local::Label> output, const RandomizedDecider& decider,
    std::uint64_t trials, std::uint64_t base_seed,
    EvaluateOptions options = {}, bool success_on_accept = true);

/// One full proof-pipeline trial: run C with fresh construction coins,
/// then D with fresh (independent) decision coins on C's output.
local::ExperimentPlan construct_then_decide_plan(
    std::string name, const local::Instance& inst,
    const local::RandomizedBallAlgorithm& algo,
    const RandomizedDecider& decider, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options = {},
    bool success_on_accept = true,
    local::ExecMode mode = local::ExecMode::kBalls);

/// One side of Eq. (1): sample a configuration with the trial's sample
/// seed, decide it with fresh decision coins, succeed when the outcome
/// matches `want_accept`.
local::ExperimentPlan guarantee_side_plan(
    std::string name, const ConfigurationSampler& sampler,
    const RandomizedDecider& decider, bool want_accept, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options = {});

}  // namespace lnc::decide
