#include "decide/experiment_plans.h"

#include <atomic>
#include <cstdint>
#include <utility>

namespace lnc::decide {

local::ExperimentPlan acceptance_plan(
    std::string name, const local::Instance& inst,
    std::span<const local::Label> output, const RandomizedDecider& decider,
    std::uint64_t trials, std::uint64_t base_seed, EvaluateOptions options,
    bool success_on_accept) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, output, &decider, options,
                        success_on_accept](const local::TrialEnv& env) {
    const rand::PhiloxCoins coins = env.decision_coins();
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &env.arena->telemetry();
    trial_options.ball = &env.arena->ball_workspace();
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, coins, trial_options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan construct_then_decide_plan(
    std::string name, const local::Instance& inst,
    const local::RandomizedBallAlgorithm& algo,
    const RandomizedDecider& decider, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options, bool success_on_accept,
    local::ExecMode mode) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, &algo, &decider, options, success_on_accept,
                        mode](const local::TrialEnv& env) {
    const rand::PhiloxCoins c_coins = env.construction_coins();
    const rand::PhiloxCoins d_coins = env.decision_coins();
    local::ExecOptions exec_options;
    exec_options.grant_n = options.grant_n;
    exec_options.arena = env.arena;
    local::Labeling& output = env.arena->labeling();
    local::run_construction_into(inst, algo, c_coins, mode, output,
                                 exec_options);
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &env.arena->telemetry();
    trial_options.ball = &env.arena->ball_workspace();
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, d_coins, trial_options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan guarantee_side_plan(
    std::string name, const ConfigurationSampler& sampler,
    const RandomizedDecider& decider, bool want_accept, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  // Cache-owner token: unique per plan object, NOT the sampler's address —
  // a stack/loop-local sampler can be freed and a different sampler can
  // land at the same address, which would otherwise replay a stale cached
  // configuration on a warm runner.
  static std::atomic<std::uintptr_t> next_owner_token{1};
  const std::uintptr_t owner_token =
      next_owner_token.fetch_add(1, std::memory_order_relaxed);
  plan.success_trial = [&sampler, owner_token, &decider, want_accept,
                        options](const local::TrialEnv& env) {
    // The sample lives in the worker arena: its instance/output capacity
    // persists across trials, and an exact (plan, seed) repeat — e.g.
    // re-running a plan on a warm runner — skips resampling entirely.
    local::WorkerArena& arena = *env.arena;
    const auto* owner = reinterpret_cast<const void*>(owner_token);
    const std::uint64_t seed = env.sample_seed();
    local::SampledConfiguration& sample = arena.sample_slot();
    if (!arena.sample_matches(owner, seed)) {
      sample = sampler(seed);
      arena.note_sample(owner, seed);
    }
    const rand::PhiloxCoins coins = env.decision_coins();
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &arena.telemetry();
    trial_options.ball = &arena.ball_workspace();
    const DecisionOutcome outcome =
        evaluate(sample.inst(), sample.output, decider, coins,
                 trial_options);
    return outcome.accepted == want_accept;
  };
  return plan;
}

}  // namespace lnc::decide
