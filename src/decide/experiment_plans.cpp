#include "decide/experiment_plans.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/timer.h"

namespace lnc::decide {
namespace {

bool fault_requested(const EvaluateOptions& options) {
  return options.fault != nullptr && !options.fault->trivial();
}

}  // namespace

local::ExperimentPlan acceptance_plan(
    std::string name, const local::Instance& inst,
    std::span<const local::Label> output, const RandomizedDecider& decider,
    std::uint64_t trials, std::uint64_t base_seed, EvaluateOptions options,
    bool success_on_accept) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, output, &decider, options,
                        success_on_accept](const local::TrialEnv& env) {
    const rand::PhiloxCoins coins = env.decision_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &env.arena->telemetry();
    trial_options.ball = &env.arena->ball_workspace();
    if (fault_requested(options)) trial_options.fault_coins = &fault_coins;
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, coins, trial_options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan construct_then_decide_plan(
    std::string name, const local::Instance& inst,
    const local::RandomizedBallAlgorithm& algo,
    const RandomizedDecider& decider, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options, bool success_on_accept,
    local::ExecMode mode) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  if (inst.is_implicit()) {
    // Streaming construct-then-decide: an implicit instance has no O(n)
    // labeling to fill, so each node's verdict recomputes the outputs of
    // its decision ball's members from their own construction balls.
    // Outputs are pure functions of (ball, identities, construction
    // coins), and the conjunction over nodes is taken WITHOUT early exit,
    // so the trial result and the telemetry charges (each node charges
    // its construction ball once and its decision ball once;
    // recomputation is not communication) are bit-identical to the
    // materialized path's.
    LNC_EXPECTS(mode == local::ExecMode::kBalls);
    LNC_EXPECTS(!options.far_from.has_value());
    LNC_EXPECTS(!fault_requested(options) &&
                "implicit execution does not support fault models");
    plan.success_trial = [&inst, &algo, &decider, options,
                          success_on_accept](const local::TrialEnv& env) {
      const rand::PhiloxCoins c_coins = env.construction_coins();
      const rand::PhiloxCoins d_coins = env.decision_coins();
      local::WorkerArena& arena = *env.arena;
      local::BallWorkspace& dec_ws = arena.ball_workspace();
      local::BallWorkspace& member_ws = arena.member_ball_workspace();
      local::Labeling& member_outputs = arena.ball_outputs();
      const graph::Topology& topology = inst.topology();
      const graph::NodeId n = inst.node_count();
      const int t_cons = algo.radius();
      const int t_dec = decider.radius();
      std::uint64_t announcements = 0;
      std::uint64_t encoded_words = 0;
      bool accepted = true;
      // Observability over the streaming loop: the node sweep is chunked
      // so giga-scale trials emit node-range trace spans and live
      // progress ticks without perturbing per-node work. Ball-collection
      // latency is SAMPLED (every 1024th node) — timing 10^8 collects
      // individually would dominate the loop. All of it is timing-only:
      // the verdict, telemetry charges, and iteration order are
      // untouched.
      constexpr graph::NodeId kNodeChunk = 1u << 16;
      constexpr graph::NodeId kCollectSampleMask = 1023;
      obs::MetricsRegistry* obs_metrics = obs::worker_metrics();
      for (graph::NodeId chunk_begin = 0; chunk_begin < n;) {
        const graph::NodeId chunk_end =
            n - chunk_begin > kNodeChunk ? chunk_begin + kNodeChunk : n;
        const obs::Span chunk_span(
            "node-range", obs::span_args("begin", chunk_begin));
        for (graph::NodeId v = chunk_begin; v < chunk_end; ++v) {
          if (obs_metrics != nullptr && (v & kCollectSampleMask) == 0) {
            const util::Timer collect_timer;
            dec_ws.ball.collect(topology, v, t_dec, dec_ws.scratch);
            obs_metrics->observe("ball_collect_seconds",
                                 collect_timer.elapsed_seconds());
          } else {
            dec_ws.ball.collect(topology, v, t_dec, dec_ws.scratch);
          }
          const graph::BallView& dec_ball = dec_ws.ball;
          announcements += dec_ball.size();
          encoded_words += dec_ball.encoded_words();
          member_outputs.assign(dec_ball.size(), 0);
          for (graph::NodeId m = 0; m < dec_ball.size(); ++m) {
            member_ws.ball.collect(topology, dec_ball.to_original(m), t_cons,
                                   member_ws.scratch);
            local::View member_view;
            member_view.ball = &member_ws.ball;
            member_view.instance = &inst;
            if (options.grant_n) member_view.n_nodes = n;
            member_outputs[m] = algo.compute(member_view, c_coins);
            if (m == 0) {
              // The center's construction ball IS node v's construction-
              // phase visit; charge it exactly once.
              announcements += member_ws.ball.size();
              encoded_words += member_ws.ball.encoded_words();
            }
          }
          local::View view;
          view.ball = &dec_ball;
          view.instance = &inst;
          if (options.grant_n) view.n_nodes = n;
          const DeciderView dv{view, {}, member_outputs};
          if (!decider.accept(dv, d_coins)) accepted = false;
        }
        obs::node_progress_tick(chunk_end - chunk_begin);
        chunk_begin = chunk_end;
      }
      local::Telemetry& telemetry = arena.telemetry();
      telemetry.messages_sent += announcements;
      telemetry.words_sent += encoded_words;
      telemetry.rounds_executed +=
          static_cast<std::uint64_t>(std::max(t_cons, 1)) +
          static_cast<std::uint64_t>(std::max(t_dec, 1));
      telemetry.ball_expansions += 2 * static_cast<std::uint64_t>(n);
      return accepted == success_on_accept;
    };
    return plan;
  }
  plan.success_trial = [&inst, &algo, &decider, options, success_on_accept,
                        mode](const local::TrialEnv& env) {
    const rand::PhiloxCoins c_coins = env.construction_coins();
    const rand::PhiloxCoins d_coins = env.decision_coins();
    const rand::PhiloxCoins f_coins = env.fault_coins();
    local::ExecOptions exec_options;
    exec_options.grant_n = options.grant_n;
    exec_options.arena = env.arena;
    // One realized adversary per trial, shared by both phases: the
    // construction runs (and charges the realized faults) under the same
    // fault stream the decision censor reads.
    exec_options.fault = options.fault;
    exec_options.fault_coins = &f_coins;
    local::Labeling& output = env.arena->labeling();
    local::run_construction_into(inst, algo, c_coins, mode, output,
                                 exec_options);
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &env.arena->telemetry();
    trial_options.ball = &env.arena->ball_workspace();
    if (fault_requested(options)) trial_options.fault_coins = &f_coins;
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, d_coins, trial_options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan guarantee_side_plan(
    std::string name, const ConfigurationSampler& sampler,
    const RandomizedDecider& decider, bool want_accept, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  // Cache-owner token: unique per plan object, NOT the sampler's address —
  // a stack/loop-local sampler can be freed and a different sampler can
  // land at the same address, which would otherwise replay a stale cached
  // configuration on a warm runner.
  static std::atomic<std::uintptr_t> next_owner_token{1};
  const std::uintptr_t owner_token =
      next_owner_token.fetch_add(1, std::memory_order_relaxed);
  plan.success_trial = [&sampler, owner_token, &decider, want_accept,
                        options](const local::TrialEnv& env) {
    // The sample lives in the worker arena: its instance/output capacity
    // persists across trials, and an exact (plan, seed) repeat — e.g.
    // re-running a plan on a warm runner — skips resampling entirely.
    local::WorkerArena& arena = *env.arena;
    const auto* owner = reinterpret_cast<const void*>(owner_token);
    const std::uint64_t seed = env.sample_seed();
    local::SampledConfiguration& sample = arena.sample_slot();
    if (!arena.sample_matches(owner, seed)) {
      sample = sampler(seed);
      arena.note_sample(owner, seed);
    }
    const rand::PhiloxCoins coins = env.decision_coins();
    const rand::PhiloxCoins fault_coins = env.fault_coins();
    EvaluateOptions trial_options = options;
    trial_options.telemetry = &arena.telemetry();
    trial_options.ball = &arena.ball_workspace();
    if (fault_requested(options)) trial_options.fault_coins = &fault_coins;
    const DecisionOutcome outcome =
        evaluate(sample.inst(), sample.output, decider, coins,
                 trial_options);
    return outcome.accepted == want_accept;
  };
  return plan;
}

}  // namespace lnc::decide
