#include "decide/experiment_plans.h"

#include <utility>

namespace lnc::decide {

local::ExperimentPlan acceptance_plan(
    std::string name, const local::Instance& inst,
    std::span<const local::Label> output, const RandomizedDecider& decider,
    std::uint64_t trials, std::uint64_t base_seed, EvaluateOptions options,
    bool success_on_accept) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, output, &decider, options,
                        success_on_accept](const local::TrialEnv& env) {
    const rand::PhiloxCoins coins = env.decision_coins();
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, coins, options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan construct_then_decide_plan(
    std::string name, const local::Instance& inst,
    const local::RandomizedBallAlgorithm& algo,
    const RandomizedDecider& decider, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options, bool success_on_accept,
    local::ExecMode mode) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&inst, &algo, &decider, options, success_on_accept,
                        mode](const local::TrialEnv& env) {
    const rand::PhiloxCoins c_coins = env.construction_coins();
    const rand::PhiloxCoins d_coins = env.decision_coins();
    local::ExecOptions exec_options;
    exec_options.grant_n = options.grant_n;
    exec_options.arena = env.arena;
    local::Labeling& output = env.arena->labeling();
    local::run_construction_into(inst, algo, c_coins, mode, output,
                                 exec_options);
    const DecisionOutcome outcome =
        evaluate(inst, output, decider, d_coins, options);
    return outcome.accepted == success_on_accept;
  };
  return plan;
}

local::ExperimentPlan guarantee_side_plan(
    std::string name, const ConfigurationSampler& sampler,
    const RandomizedDecider& decider, bool want_accept, std::uint64_t trials,
    std::uint64_t base_seed, EvaluateOptions options) {
  local::ExperimentPlan plan;
  plan.name = std::move(name);
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.success_trial = [&sampler, &decider, want_accept,
                        options](const local::TrialEnv& env) {
    const SampledConfiguration sample = sampler(env.sample_seed());
    const rand::PhiloxCoins coins = env.decision_coins();
    const DecisionOutcome outcome =
        evaluate(sample.instance, sample.output, decider, coins, options);
    return outcome.accepted == want_accept;
  };
  return plan;
}

}  // namespace lnc::decide
