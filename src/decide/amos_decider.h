// The zero-round randomized decider for amos (paper, section 2.3.1):
//
//   "Every non selected node v accepts, and every selected node v accepts
//    with probability p, and rejects with probability 1 - p."
//
// With s selected nodes: Pr[all accept] = p^s. For a yes instance (s <= 1)
// the acceptance probability is >= p; for a no instance (s >= 2) the
// rejection probability is >= 1 - p^2. The guarantee min(p, 1 - p^2) is
// maximized at p* = (sqrt(5)-1)/2 ~ 0.618, where p* = 1 - p*^2 — the value
// the paper states. Experiment E1 sweeps p and recovers the curve.
#pragma once

#include "decide/decider.h"

namespace lnc::decide {

class AmosDecider final : public RandomizedDecider {
 public:
  /// p defaults to the golden-ratio optimum.
  explicit AmosDecider(double p = -1.0);

  std::string name() const override;
  int radius() const override { return 0; }
  double guarantee() const override;
  bool accept(const DeciderView& view,
              const rand::CoinProvider& coins) const override;

  double p() const noexcept { return p_; }

 private:
  double p_;
};

}  // namespace lnc::decide
