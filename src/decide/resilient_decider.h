// The randomized decider for f-resilient relaxations (Corollary 1 proof).
//
// For L in LCL with bad-ball radius t, pick p in (2^{-1/f}, 2^{-1/(f+1)}).
// Every node inspects its radius-t ball: good ball => accept; bad ball =>
// accept with probability p. With |F(G)| bad balls the acceptance
// probability is p^{|F(G)|}, hence
//
//   |F(G)| <= f   => Pr[all accept]       >= p^f     > 1/2
//   |F(G)| >= f+1 => Pr[some node rejects] >= 1-p^{f+1} > 1/2
//
// placing L_f in BPLD — the hypothesis Theorem 1 needs. Experiment E4
// verifies both inequalities empirically across f.
#pragma once

#include "decide/decider.h"
#include "lang/language.h"
#include "util/math.h"

namespace lnc::decide {

class ResilientDecider final : public RandomizedDecider {
 public:
  /// Uses the geometric mean of the admissible interval by default; a
  /// custom p must lie in (2^{-1/f}, 2^{-1/(f+1)}).
  ResilientDecider(const lang::LclLanguage& base, std::size_t max_faults,
                   double p = -1.0);

  std::string name() const override;
  int radius() const override;
  double guarantee() const override;
  bool accept(const DeciderView& view,
              const rand::CoinProvider& coins) const override;

  double p() const noexcept { return p_; }
  std::size_t max_faults() const noexcept { return max_faults_; }

  /// The admissible open interval (2^{-1/f}, 2^{-1/(f+1)}).
  static util::Interval admissible_interval(std::size_t max_faults);
  /// The default p: geometric mean of the interval endpoints.
  static double default_p(std::size_t max_faults);

 private:
  const lang::LclLanguage* base_;
  std::size_t max_faults_;
  double p_;
};

}  // namespace lnc::decide
