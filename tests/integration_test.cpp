// Cross-module integration tests: full pipelines combining construction
// algorithms, languages, deciders, and the Theorem-1 machinery — each one
// a miniature of an E-series experiment.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/cole_vishkin.h"
#include "algo/luby_mis.h"
#include "algo/rand_coloring.h"
#include "algo/weak_color_mc.h"
#include "core/boost_params.h"
#include "core/critical_strings.h"
#include "core/glue.h"
#include "core/hard_instances.h"
#include "decide/evaluate.h"
#include "decide/experiment_plans.h"
#include "decide/lcl_decider.h"
#include "decide/resilient_decider.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "lang/coloring.h"
#include "lang/mis.h"
#include "lang/domset.h"
#include "lang/relax.h"
#include "lang/weak_coloring.h"
#include "local/experiment.h"
#include "util/logstar.h"

namespace lnc {
namespace {

// E3 miniature: construct with Cole-Vishkin, check with the LD decider —
// the classic "construction in O(log* n), verification in 1 round" pair.
TEST(Pipeline, ColeVishkinPlusLclDecider) {
  const lang::ProperColoring lang(3);
  const decide::LclDecider decider(lang);
  for (graph::NodeId n : {16u, 64u, 256u}) {
    const local::Instance inst = core::consecutive_ring(n);
    const local::EngineResult constructed =
        algo::run_cole_vishkin(inst, util::floor_log2(n) + 1);
    ASSERT_TRUE(constructed.completed);
    EXPECT_TRUE(
        decide::evaluate(inst, constructed.output, decider).accepted);
    // Rounds stay tiny while n explodes (log* signature).
    EXPECT_LE(constructed.rounds, 9);
  }
}

// E2 miniature: the zero-round random coloring solves eps-slack coloring
// with probability -> 1 (randomization HELPS for slack).
TEST(Pipeline, RandomColoringSolvesSlackWithHighProbability) {
  const lang::ProperColoring base(3);
  const lang::EpsSlack slack(base, 0.55);
  const algo::UniformRandomColoring coloring(3);
  const local::Instance inst = core::consecutive_ring(120);
  local::BatchRunner runner;
  auto contains = [](const lang::Language& language) {
    return [&language](const local::Instance& instance,
                       const local::Labeling& y) {
      return language.contains(instance, y);
    };
  };
  const stats::Estimate success = runner.run(local::construction_plan(
      "slack-0.55", inst, coloring, contains(slack), 400, 21));
  // Expected bad-ball fraction ~ 5/9 < 0.55... per-node bad probability is
  // 1 - (2/3)^2 = 5/9 ~ 0.5556 with eps = 0.55 slightly below the mean, so
  // success should be near 1/2; use a slack above the mean instead:
  const lang::EpsSlack roomy(base, 0.65);
  const stats::Estimate roomy_success = runner.run(local::construction_plan(
      "slack-0.65", inst, coloring, contains(roomy), 400, 22));
  EXPECT_GT(roomy_success.ci.lo, 0.9);
  (void)success;
}

// E4/E6 miniature: the same random coloring FAILS f-resilient coloring
// essentially always on big rings (randomization does NOT help), and the
// resilient decider catches it with probability >= its guarantee.
TEST(Pipeline, RandomColoringFailsResilientAndGetsCaught) {
  const lang::ProperColoring base(3);
  const lang::FResilient relaxed(base, 2);
  const algo::UniformRandomColoring coloring(3);
  const decide::ResilientDecider decider(base, 2);
  const local::Instance inst = core::consecutive_ring(60);

  local::BatchRunner runner;
  const stats::Estimate caught = runner.run(local::custom_plan(
      "resilient-caught", 600, 31, [&](const local::TrialEnv& env) {
        const rand::PhiloxCoins c_coins = env.construction_coins();
        const rand::PhiloxCoins d_coins = env.decision_coins();
        local::Labeling& y = env.arena->labeling();
        local::run_ball_algorithm_into(inst, coloring, c_coins, y);
        if (relaxed.contains(inst, y)) return false;  // C got lucky
        return !decide::evaluate(inst, y, decider, d_coins).accepted;
      }));
  // Pr[C fails AND D notices] >= beta * p with beta ~ 1 here and
  // p in (2^{-1/2}, 2^{-1/3}) ~ 0.73; allow generous slack.
  EXPECT_GT(caught.ci.lo, 0.5);
}

// E6 miniature: Claim 3's boosting on disjoint unions — acceptance of
// D on C(union of k hard instances) decays geometrically in k.
TEST(Pipeline, DisjointUnionBoostsRejection) {
  const lang::ProperColoring base(3);
  const algo::UniformRandomColoring coloring(3);
  const decide::ResilientDecider decider(base, 1);

  local::BatchRunner runner;
  auto acceptance_for = [&](std::size_t instance_count) {
    const auto parts = core::claim2_sequence(instance_count, 5);
    const core::GluedInstance combined =
        core::disjoint_union_instances(parts);
    return runner.run(decide::construct_then_decide_plan(
        "disjoint-union-accept", combined.instance, coloring, decider, 500,
        41));
  };
  const stats::Estimate one = acceptance_for(1);
  const stats::Estimate three = acceptance_for(3);
  const stats::Estimate six = acceptance_for(6);
  EXPECT_GT(one.p_hat, three.p_hat);
  EXPECT_GE(three.p_hat + 0.02, six.p_hat);  // monotone within noise
  EXPECT_LT(six.p_hat, 0.1);                 // strong boosting by k = 6
}

// E7 miniature: the same boosting survives the CONNECTED glue.
TEST(Pipeline, ConnectedGlueBoostsRejection) {
  const lang::ProperColoring base(3);
  const algo::UniformRandomColoring coloring(3);
  const decide::ResilientDecider decider(base, 1);

  local::BatchRunner runner;
  auto acceptance_for = [&](std::size_t instance_count) {
    const auto parts = core::claim2_sequence(instance_count, 5);
    std::vector<graph::NodeId> anchors(parts.size(), 0);
    const core::GluedInstance glued = core::theorem1_glue(parts, anchors);
    EXPECT_TRUE(graph::is_connected(glued.instance.g));
    return runner.run(decide::construct_then_decide_plan(
        "glued-accept", glued.instance, coloring, decider, 500, 51));
  };
  const stats::Estimate two = acceptance_for(2);
  const stats::Estimate five = acceptance_for(5);
  EXPECT_GT(two.p_hat, five.p_hat - 0.02);
  EXPECT_LT(five.p_hat, 0.15);
}

// Weak coloring round-trip: Monte-Carlo construction + LD decision — the
// "both constructible and decidable in constant time" cell of the paper's
// 2x2 table (section 2.2.2).
TEST(Pipeline, WeakColoringConstructAndDecide) {
  const lang::WeakColoring lang(2);
  const decide::LclDecider decider(lang);
  const local::Instance inst = core::consecutive_ring(40);
  const std::uint64_t trials = 60;
  local::BatchRunner runner;
  const stats::Estimate agreement = runner.run(local::custom_plan(
      "weak-color-roundtrip", trials, 100, [&](const local::TrialEnv& env) {
        const rand::PhiloxCoins coins = env.construction_coins();
        const local::EngineResult result =
            algo::run_weak_color_mc(inst, coins, 6);
        const bool member = lang.contains(inst, result.output);
        const bool accepted =
            decide::evaluate(inst, result.output, decider).accepted;
        return member == accepted;  // LD decider is exact
      }));
  EXPECT_EQ(agreement.successes, trials);
}

// Classic cross-language fact the library should witness: every maximal
// independent set is a minimal dominating set (maximality gives
// domination; independence makes every member its own private witness).
// Luby's output must therefore satisfy BOTH languages.
TEST(Pipeline, LubyMisIsAlsoMinimalDominatingSet) {
  const lang::MaximalIndependentSet mis;
  const lang::MinimalDominatingSet mds;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const local::Instance inst = local::make_instance(
        graph::random_regular(40, 3, seed),
        ident::random_permutation(40, seed));
    const rand::PhiloxCoins coins(seed * 97 + 5,
                                  rand::Stream::kConstruction);
    const local::EngineResult result = algo::run_luby_mis(inst, coins);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(mis.contains(inst, result.output));
    EXPECT_TRUE(mds.contains(inst, result.output));
  }
}

// Claim 5 end-to-end on one hard instance: some scattered node u has
// far-rejection probability >= beta(1-p)/mu.
TEST(Pipeline, Claim5FindsAGoodAnchor) {
  const lang::ProperColoring base(3);
  const lang::FResilient relaxed(base, 1);
  const algo::UniformRandomColoring coloring(3);
  const decide::ResilientDecider decider(base, 1);
  const local::Instance inst = core::consecutive_ring(48);

  const double p = decider.p();
  const stats::Estimate beta_est =
      core::estimate_beta(inst, coloring, relaxed, 500, 61);
  core::BoostParameters params;
  params.r = 0.01;  // nominal; only mu matters here
  params.p = p;
  params.beta = beta_est.p_hat;
  params.t = 0;
  params.t_prime = 1;
  const std::uint64_t mu = params.mu();

  const int exclusion = 1;  // t + t'
  const auto scattered = graph::scattered_nodes(
      inst.g, 2 * exclusion, static_cast<std::size_t>(mu));
  ASSERT_GE(scattered.size(), 1u);

  const core::Claim5Report report =
      core::verify_claim5(inst, coloring, decider, scattered, exclusion,
                          beta_est.p_hat, p, mu, 600, 71);
  EXPECT_TRUE(report.exists_above_bound());
  // The best anchor is a legal node of the instance.
  EXPECT_LT(report.best_anchor(), inst.node_count());
}

}  // namespace
}  // namespace lnc
