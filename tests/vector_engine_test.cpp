// Vector-engine backend tests: the acceptance gate of the trial-vectorized
// SoA backend. Every backend (naive / batched / vectorized), every thread
// count, every shard partition, and every OptimizationConfig toggle must
// produce bit-identical tallies, exact sums, counter slots, and
// deterministic telemetry — forcing a backend is a performance choice,
// never a results choice.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algo/luby_mis.h"
#include "graph/generators.h"
#include "ident/identity.h"
#include "local/batch_runner.h"
#include "local/vector_engine.h"
#include "rand/coins.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "stats/montecarlo.h"
#include "stats/threadpool.h"

namespace {

using namespace lnc;
using local::OptimizationConfig;
using Backend = local::OptimizationConfig::Backend;

scenario::ScenarioSpec shrunk_preset(const std::string& name,
                                     std::uint64_t trials) {
  const scenario::ScenarioSpec* preset = scenario::find_preset(name);
  EXPECT_NE(preset, nullptr) << name;
  scenario::ScenarioSpec spec = *preset;
  spec.trials = trials;
  spec.n_grid = {spec.n_grid.front()};
  return spec;
}

scenario::SweepResult run_with(const scenario::ScenarioSpec& base,
                               Backend backend, unsigned threads,
                               unsigned shard = 0, unsigned shard_count = 1) {
  scenario::ScenarioSpec spec = base;
  spec.backend = backend;
  EXPECT_EQ(scenario::validate(spec), "");
  const scenario::CompiledScenario compiled = scenario::compile(spec);
  scenario::SweepOptions options;
  options.shard = shard;
  options.shard_count = shard_count;
  std::optional<stats::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  options.pool = pool ? &*pool : nullptr;
  return scenario::run_sweep(compiled, options);
}

void expect_tallies_identical(const local::ShardTally& a,
                              const local::ShardTally& b,
                              const std::string& what) {
  EXPECT_EQ(a.trials, b.trials) << what;
  EXPECT_EQ(a.successes, b.successes) << what;
  EXPECT_TRUE(a.value_sum == b.value_sum)
      << what << ": " << a.value_sum.to_hex() << " vs " << b.value_sum.to_hex();
  EXPECT_TRUE(a.value_sum_sq == b.value_sum_sq) << what;
  EXPECT_EQ(a.counts, b.counts) << what;
  EXPECT_TRUE(a.telemetry.deterministic_equal(b.telemetry))
      << what << ": msgs " << a.telemetry.messages_sent << " vs "
      << b.telemetry.messages_sent << ", words " << a.telemetry.words_sent
      << " vs " << b.telemetry.words_sent << ", rounds "
      << a.telemetry.rounds_executed << " vs " << b.telemetry.rounds_executed;
}

void expect_results_identical(const scenario::SweepResult& a,
                              const scenario::SweepResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    expect_tallies_identical(a.rows[i].tally, b.rows[i].tally,
                             what + " row " + std::to_string(i));
  }
}

// Vectorizable presets covering all three vector programs and all three
// workloads (the counter case is the luby value preset re-declared as a
// counter, since no stock counter preset uses a vectorizable engine).
std::vector<scenario::ScenarioSpec> vectorizable_specs() {
  std::vector<scenario::ScenarioSpec> specs;
  specs.push_back(shrunk_preset("gnp-weak-coloring", 40));     // success
  specs.push_back(shrunk_preset("tree-matching", 40));         // success
  specs.push_back(shrunk_preset("luby-mis-rounds", 40));       // value
  specs.push_back(shrunk_preset("rand-matching-rounds", 40));  // value
  scenario::ScenarioSpec counter = shrunk_preset("luby-mis-rounds", 40);
  counter.name = "luby-mis-rounds-counter";
  counter.workload = local::WorkloadKind::kCounter;
  specs.push_back(counter);
  return specs;
}

TEST(VectorEngine, BackendsAreBitIdenticalAcrossThreadCounts) {
  for (const scenario::ScenarioSpec& spec : vectorizable_specs()) {
    const scenario::SweepResult baseline = run_with(spec, Backend::kNaive, 1);
    for (const Backend backend :
         {Backend::kNaive, Backend::kBatched, Backend::kVectorized}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        if (backend == Backend::kNaive && threads == 1) continue;
        expect_results_identical(
            baseline, run_with(spec, backend, threads),
            spec.name + " backend=" + local::to_string(backend) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(VectorEngine, UnevenShardMergeReproducesUnshardedRun) {
  // 40 trials over 3 shards split 14/13/13 — the batch boundaries inside
  // each shard land differently than in the unsharded run, so this pins
  // down that per-trial outcomes are pure in the trial index, not in the
  // batch layout.
  const scenario::ScenarioSpec spec = shrunk_preset("luby-mis-rounds", 40);
  const scenario::SweepResult whole = run_with(spec, Backend::kVectorized, 2);
  std::vector<scenario::SweepResult> shards;
  for (unsigned s = 0; s < 3; ++s) {
    shards.push_back(run_with(spec, Backend::kVectorized, 2, s, 3));
  }
  expect_results_identical(whole, scenario::merge_sweeps(shards),
                           "3-way vectorized shard merge");

  // Mixed-backend shards must merge to the same numbers too — that is
  // the contract that makes merge_sweep_files' backend mismatch a
  // warning rather than an error.
  std::vector<scenario::SweepResult> mixed;
  mixed.push_back(run_with(spec, Backend::kNaive, 1, 0, 3));
  mixed.push_back(run_with(spec, Backend::kBatched, 2, 1, 3));
  mixed.push_back(run_with(spec, Backend::kVectorized, 8, 2, 3));
  scenario::SweepResult merged = scenario::merge_sweeps(mixed);
  expect_results_identical(whole, merged, "mixed-backend shard merge");
}

TEST(VectorEngine, OptimizationTogglesPreserveBitIdentity) {
  // Each toggle changes HOW the batch iterates, never WHAT it computes:
  // flipping any one of them (and shrinking the batch down to single-trial
  // or a ragged 7) must reproduce the default configuration exactly.
  const scenario::ScenarioSpec spec =
      shrunk_preset("rand-matching-rounds", 40);
  scenario::ScenarioSpec forced = spec;
  forced.backend = Backend::kVectorized;
  const scenario::CompiledScenario compiled = scenario::compile(forced);
  ASSERT_EQ(compiled.points().size(), 1u);
  const local::ExperimentPlan& base_plan = compiled.points()[0].plan;
  ASSERT_TRUE(base_plan.vector.engaged());

  local::BatchRunner runner(nullptr);
  const local::TrialRange range{0, forced.trials};
  const local::ShardTally baseline = runner.run_shard(base_plan, range);

  const auto variant = [&](const char* what, auto&& mutate) {
    local::ExperimentPlan plan = base_plan;
    mutate(plan.optimization);
    expect_tallies_identical(baseline, runner.run_shard(plan, range), what);
  };
  variant("use_silent_skip=false",
          [](OptimizationConfig& c) { c.use_silent_skip = false; });
  variant("use_done_mask=false",
          [](OptimizationConfig& c) { c.use_done_mask = false; });
  variant("reuse_round_buffers=false",
          [](OptimizationConfig& c) { c.reuse_round_buffers = false; });
  variant("batch_trials=1",
          [](OptimizationConfig& c) { c.batch_trials = 1; });
  variant("batch_trials=7",
          [](OptimizationConfig& c) { c.batch_trials = 7; });
  variant("all toggles off, ragged batches", [](OptimizationConfig& c) {
    c.use_silent_skip = false;
    c.use_done_mask = false;
    c.reuse_round_buffers = false;
    c.batch_trials = 3;
  });
}

TEST(VectorEngine, AutomaticConfigPicksSaneBackends) {
  EXPECT_EQ(OptimizationConfig::automatic(64, 1, 2.0).backend,
            Backend::kNaive);
  EXPECT_EQ(OptimizationConfig::automatic(64, 4, 2.0).backend,
            Backend::kBatched);
  const OptimizationConfig big = OptimizationConfig::automatic(64, 1000, 3.0);
  EXPECT_EQ(big.backend, Backend::kVectorized);
  EXPECT_GE(big.batch_trials, 4u);
  EXPECT_LE(big.batch_trials, 64u);
  // Tiny vectorized runs never allocate batches wider than the trial count.
  EXPECT_LE(OptimizationConfig::automatic(64, 10, 3.0).batch_trials, 10u);
  // Huge instances drive the batch width down to the floor, never to zero.
  EXPECT_EQ(OptimizationConfig::automatic(1u << 22, 1000, 8.0).batch_trials,
            4u);
}

TEST(VectorEngine, BackendRoundTripsThroughStrings) {
  for (const Backend backend : {Backend::kAuto, Backend::kNaive,
                                Backend::kBatched, Backend::kVectorized}) {
    const auto parsed = local::backend_from_string(local::to_string(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(local::backend_from_string("simd").has_value());
  EXPECT_FALSE(local::backend_from_string("").has_value());
}

TEST(VectorEngine, DirectBatchMatchesScalarEngineTrialForTrial) {
  // The lowest-level form of the contract: run_vector_batch over a span of
  // construction-coin keys reproduces run_engine per trial — labelings,
  // executed rounds, and the deterministic telemetry delta.
  const local::Instance inst = local::make_instance(
      graph::cycle(48), ident::random_permutation(48, 11));
  const algo::LubyMisFactory factory;
  constexpr std::uint64_t kSeed = 1234;
  constexpr std::uint32_t kTrials = 9;  // ragged vs the batch width below

  std::vector<local::Labeling> scalar_outputs;
  std::vector<int> scalar_rounds;
  std::vector<local::Telemetry> scalar_deltas;
  std::vector<std::uint64_t> keys;
  for (std::uint32_t t = 0; t < kTrials; ++t) {
    const rand::PhiloxCoins coins(stats::trial_seed(kSeed, t),
                                  rand::Stream::kConstruction);
    keys.push_back(coins.key());
    local::EngineOptions options;
    options.coins = &coins;
    const local::EngineResult result = run_engine(inst, factory, options);
    ASSERT_TRUE(result.completed);
    scalar_outputs.push_back(result.output);
    scalar_rounds.push_back(result.rounds);
    scalar_deltas.push_back(result.telemetry);
  }

  OptimizationConfig config;
  config.backend = Backend::kVectorized;
  config.batch_trials = 4;
  local::VectorScratch scratch;
  std::uint32_t seen = 0;
  // Two half-batches through the same scratch: the second run exercises
  // the program-recycling path on warm buffers.
  for (const auto& slice :
       {std::span<const std::uint64_t>(keys.data(), 5),
        std::span<const std::uint64_t>(keys.data() + 5, kTrials - 5)}) {
    const std::uint32_t base = seen;
    local::run_vector_batch(
        inst, factory, slice, config, scratch, nullptr,
        [&](std::uint32_t trial, const local::Labeling& output, int rounds,
            const local::Telemetry& delta) {
          const std::uint32_t global = base + trial;
          EXPECT_EQ(output, scalar_outputs[global]) << "trial " << global;
          EXPECT_EQ(rounds, scalar_rounds[global]) << "trial " << global;
          EXPECT_TRUE(delta.deterministic_equal(scalar_deltas[global]))
              << "trial " << global;
          ++seen;
        });
  }
  EXPECT_EQ(seen, kTrials);
}

}  // namespace
