// Tests for src/rand: Philox known-answer vectors, stream separation,
// coin determinism, and NodeRng distribution sanity.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rand/coins.h"
#include "rand/philox.h"
#include "rand/splitmix.h"

namespace lnc::rand {
namespace {

// Known-answer tests from the Random123 reference implementation
// (Salmon et al., "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11).
TEST(Philox, KnownAnswerZero) {
  const auto out = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const auto out = philox4x32(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits) {
  const auto out = philox4x32(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out[0], 0xd16cfe09u);
  EXPECT_EQ(out[1], 0x94fdccebu);
  EXPECT_EQ(out[2], 0x5001e420u);
  EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(Philox, U64IsDeterministic) {
  EXPECT_EQ(philox_u64(1, 2, 3), philox_u64(1, 2, 3));
  EXPECT_NE(philox_u64(1, 2, 3), philox_u64(1, 2, 4));
  EXPECT_NE(philox_u64(1, 2, 3), philox_u64(2, 2, 3));
}

// The bulk kernel (SIMD-dispatched at runtime) must reproduce the serial
// path bit for bit — it is the vector engine's draw-pass primitive and
// any divergence would silently break backend bit-identity. Odd counts
// exercise both the wide main loop and the serial tail.
TEST(Philox, BatchMatchesSerialBitForBit) {
  for (const std::size_t count : {0uz, 1uz, 3uz, 16uz, 37uz, 1000uz}) {
    std::vector<std::uint64_t> hi(count), lo(count), out(count);
    for (std::size_t i = 0; i < count; ++i) {
      hi[i] = 0x9E3779B97F4A7C15ull * i + 7;
      lo[i] = ~i * 3;
    }
    for (const std::uint64_t key : {0ull, 1ull, 0xDEADBEEFCAFEF00Dull}) {
      philox_u64_batch(key, hi.data(), lo.data(), out.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], philox_u64(key, hi[i], lo[i]))
            << "lane " << i << " of " << count << " under key " << key;
      }
    }
  }
}

TEST(SplitMix, MixKeysIsOrderSensitive) {
  EXPECT_NE(mix_keys(1, 2), mix_keys(2, 1));
  EXPECT_EQ(mix_keys(1, 2), mix_keys(1, 2));
}

TEST(SplitMix, NextBelowIsInRange) {
  SplitMix64 rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Coins, SameSeedSameCoins) {
  const PhiloxCoins a(123, Stream::kConstruction);
  const PhiloxCoins b(123, Stream::kConstruction);
  for (std::uint64_t identity : {1ull, 77ull, 1ull << 40}) {
    for (std::uint64_t draw = 0; draw < 16; ++draw) {
      EXPECT_EQ(a.draw(identity, draw), b.draw(identity, draw));
    }
  }
}

TEST(Coins, StreamsAreIndependent) {
  const PhiloxCoins c(123, Stream::kConstruction);
  const PhiloxCoins d(123, Stream::kDecision);
  int equal = 0;
  for (std::uint64_t draw = 0; draw < 64; ++draw) {
    if (c.draw(5, draw) == d.draw(5, draw)) ++equal;
  }
  EXPECT_EQ(equal, 0);  // 64-bit collisions would be astronomically rare
}

TEST(Coins, IdentityKeysTheStream) {
  // The paper's Rand(C) is indexed by node identity: the same node keeps
  // its coins when the surrounding graph changes (gluing argument).
  const PhiloxCoins coins(9, Stream::kConstruction);
  EXPECT_EQ(coins.draw(42, 0), coins.draw(42, 0));
  EXPECT_NE(coins.draw(42, 0), coins.draw(43, 0));
}

TEST(Coins, CountingDecoratorCounts) {
  const PhiloxCoins inner(1, Stream::kAux);
  const CountingCoins counting(inner);
  NodeRng rng(counting, 7);
  for (int i = 0; i < 5; ++i) rng.next_u64();
  EXPECT_EQ(counting.total_draws(), 5u);
  EXPECT_EQ(rng.draws_used(), 5u);
}

TEST(NodeRng, DoubleInUnitInterval) {
  const PhiloxCoins coins(5, Stream::kAux);
  NodeRng rng(coins, 1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(NodeRng, BernoulliFrequency) {
  const PhiloxCoins coins(17, Stream::kAux);
  NodeRng rng(coins, 2);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  const double freq = static_cast<double>(heads) / trials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(NodeRng, NextBelowUniform) {
  const PhiloxCoins coins(23, Stream::kAux);
  NodeRng rng(coins, 3);
  std::vector<int> counts(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.next_below(3)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 3.0, 0.02);
  }
}

TEST(NodeRng, SequentialDrawsDiffer) {
  const PhiloxCoins coins(31, Stream::kAux);
  NodeRng rng(coins, 4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Coins, FingerprintDetectsDifferentStrings) {
  const PhiloxCoins a(1, Stream::kConstruction);
  const PhiloxCoins b(2, Stream::kConstruction);
  EXPECT_EQ(coin_fingerprint(a, 5, 8), coin_fingerprint(a, 5, 8));
  EXPECT_NE(coin_fingerprint(a, 5, 8), coin_fingerprint(b, 5, 8));
  EXPECT_NE(coin_fingerprint(a, 5, 8), coin_fingerprint(a, 6, 8));
}

}  // namespace
}  // namespace lnc::rand
