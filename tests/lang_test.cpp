// Tests for src/lang: every language's membership predicate and bad-ball
// semantics, plus the relaxation combinators.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lang/amos.h"
#include "lang/coloring.h"
#include "lang/domset.h"
#include "lang/frugal.h"
#include "lang/lll.h"
#include "lang/matching.h"
#include "lang/mis.h"
#include "lang/relax.h"
#include "lang/weak_coloring.h"

namespace lnc::lang {
namespace {

local::Instance ring_instance(graph::NodeId n) {
  return local::make_instance(graph::cycle(n), ident::consecutive(n));
}

TEST(ProperColoring, AcceptsProperRejectsMonochromatic) {
  const ProperColoring lang(3);
  const local::Instance inst = ring_instance(6);
  const local::Labeling proper = {0, 1, 0, 1, 0, 1};
  const local::Labeling clash = {0, 0, 1, 0, 1, 2};
  EXPECT_TRUE(lang.contains(inst, proper));
  EXPECT_FALSE(lang.contains(inst, clash));
  // Both endpoints of the monochromatic edge have bad balls.
  const auto bad = lang.bad_ball_centers(inst, clash);
  EXPECT_EQ(bad.size(), 2u);
  EXPECT_EQ(bad[0], 0u);
  EXPECT_EQ(bad[1], 1u);
}

TEST(ProperColoring, PaletteOverflowIsBad) {
  const ProperColoring lang(3);
  const local::Instance inst = ring_instance(5);
  const local::Labeling overflow = {0, 1, 2, 1, 3};  // color 3 out of range
  EXPECT_FALSE(lang.contains(inst, overflow));
}

TEST(ProperColoring, ConflictEdgeCount) {
  const local::Instance inst = ring_instance(5);
  // Ring edges: (0,1),(1,2),(2,3),(3,4),(4,0).
  const local::Labeling y = {0, 0, 0, 1, 0};
  // Conflicts: (0,1), (1,2), (4,0) -> 3.
  EXPECT_EQ(ProperColoring::conflict_edges(inst, y), 3u);
}

TEST(WeakColoring, CenterNeedsOneDifferingNeighbor) {
  const WeakColoring lang(2);
  const local::Instance inst = ring_instance(6);
  // Alternating: everyone has differing neighbors — weakly (and properly)
  // colored.
  EXPECT_TRUE(lang.contains(inst, local::Labeling{0, 1, 0, 1, 0, 1}));
  // Monochromatic: every node's whole neighborhood agrees.
  EXPECT_FALSE(lang.contains(inst, local::Labeling{1, 1, 1, 1, 1, 1}));
  // Blocks of three: interior nodes of each block are bad.
  const local::Labeling blocks = {0, 0, 0, 1, 1, 1};
  const auto bad = lang.bad_ball_centers(inst, blocks);
  EXPECT_EQ(bad.size(), 2u);  // nodes 1 and 4
}

TEST(WeakColoring, WeakIsWeakerThanProper) {
  // A coloring can be weak but not proper: {0,0,1,1} on C4.
  const local::Instance inst = ring_instance(4);
  const local::Labeling y = {0, 0, 1, 1};
  EXPECT_TRUE(WeakColoring(2).contains(inst, y));
  EXPECT_FALSE(ProperColoring(2).contains(inst, y));
}

TEST(Amos, AtMostOneSelected) {
  const Amos amos;
  const local::Instance inst = ring_instance(5);
  EXPECT_TRUE(amos.contains(inst, local::Labeling{0, 0, 0, 0, 0}));
  EXPECT_TRUE(amos.contains(inst, local::Labeling{0, 1, 0, 0, 0}));
  EXPECT_FALSE(amos.contains(inst, local::Labeling{0, 1, 0, 1, 0}));
  EXPECT_EQ(Amos::selected_count(local::Labeling{1, 1, 1}), 3u);
}

TEST(Mis, IndependenceAndMaximality) {
  const MaximalIndependentSet mis;
  const local::Instance inst = ring_instance(6);
  EXPECT_TRUE(mis.contains(inst, local::Labeling{1, 0, 1, 0, 1, 0}));
  // Adjacent members: independence violated.
  EXPECT_FALSE(mis.contains(inst, local::Labeling{1, 1, 0, 0, 1, 0}));
  // Node 3 has no member in N[3]: maximality violated.
  EXPECT_FALSE(mis.contains(inst, local::Labeling{1, 0, 0, 0, 1, 0}));
}

TEST(Mis, PathEdgeCases) {
  const local::Instance inst =
      local::make_instance(graph::path(3), ident::consecutive(3));
  EXPECT_TRUE(MaximalIndependentSet{}.contains(inst, local::Labeling{1, 0, 1}));
  EXPECT_TRUE(MaximalIndependentSet{}.contains(inst, local::Labeling{0, 1, 0}));
  EXPECT_FALSE(MaximalIndependentSet{}.contains(inst, local::Labeling{1, 0, 0}));
}

TEST(Matching, ValidSymmetricMaximal) {
  const MaximalMatching matching;
  // Path 0-1-2-3 with identities 1..4: match (0,1) and (2,3) by identity.
  const local::Instance inst =
      local::make_instance(graph::path(4), ident::consecutive(4));
  const local::Labeling matched = {2, 1, 4, 3};
  EXPECT_TRUE(matching.contains(inst, matched));
  // Unmatched middle pair: nodes 1 and 2 both unmatched and adjacent.
  const local::Labeling partial = {2, 1, 0, 0};
  EXPECT_FALSE(matching.contains(inst, partial));
  // Asymmetric pointer: 0 names 2's identity (not a neighbor).
  const local::Labeling invalid = {3, 1, 4, 3};
  EXPECT_FALSE(matching.contains(inst, invalid));
  // Non-reciprocal: 0 points to 1, but 1 claims unmatched.
  const local::Labeling nonrecip = {2, 0, 4, 3};
  EXPECT_FALSE(matching.contains(inst, nonrecip));
}

TEST(Matching, EmptyMatchingOnEdgelessGraphIsLegal) {
  const local::Instance inst =
      local::make_instance(graph::Graph::Builder(3).build(),
                           ident::consecutive(3));
  EXPECT_TRUE(MaximalMatching{}.contains(inst, local::Labeling{0, 0, 0}));
}

TEST(DomSet, DominationAndMinimality) {
  const MinimalDominatingSet ds;
  const local::Instance inst = ring_instance(6);
  // {0, 3} dominates C6 minimally.
  EXPECT_TRUE(ds.contains(inst, local::Labeling{1, 0, 0, 1, 0, 0}));
  // Empty set dominates nothing.
  EXPECT_FALSE(ds.contains(inst, local::Labeling{0, 0, 0, 0, 0, 0}));
  // All nodes: dominating but wildly non-minimal.
  EXPECT_FALSE(ds.contains(inst, local::Labeling{1, 1, 1, 1, 1, 1}));
}

TEST(DomSet, StarCenterIsMinimal) {
  const local::Instance inst =
      local::make_instance(graph::star(5), ident::consecutive(5));
  const MinimalDominatingSet ds;
  local::Labeling center_only(5, 0);
  center_only[0] = 1;
  EXPECT_TRUE(ds.contains(inst, center_only));
  // Center plus one leaf: the leaf is redundant.
  local::Labeling extra = center_only;
  extra[1] = 1;
  EXPECT_FALSE(ds.contains(inst, extra));
}

TEST(Frugal, FrugalityBoundsNeighborhoodColorUse) {
  const FrugalColoring lang(3, 1);  // 1-frugal: each color at most once
  const local::Instance star =
      local::make_instance(graph::star(4), ident::consecutive(4));
  // Center 0 color 0; leaves colored 1, 2, 1: color 1 used twice in the
  // center's neighborhood -> not 1-frugal (but proper).
  EXPECT_FALSE(lang.contains(star, local::Labeling{0, 1, 2, 1}));
  // Leaves all distinct within palette: {1, 2, ...} needs 3 distinct leaf
  // colors but the palette has only {0,1,2} minus center color — so on
  // K_{1,3}, 1-frugal 3-coloring is impossible; 2-frugal succeeds:
  EXPECT_TRUE(FrugalColoring(3, 2).contains(star, local::Labeling{0, 1, 2, 1}));
}

TEST(Lll, EventHoldsWhenNeighborhoodAgrees) {
  const LllAvoidance lll;
  const local::Instance inst = ring_instance(5);
  EXPECT_FALSE(lll.contains(inst, local::Labeling{1, 1, 1, 1, 1}));  // every event fires
  EXPECT_TRUE(lll.contains(inst, local::Labeling{0, 1, 0, 1, 0}));
  // One sleepy stretch: nodes 1,2,3 all 1 -> event at node 2 fires.
  EXPECT_FALSE(lll.contains(inst, local::Labeling{0, 1, 1, 1, 0}));
}

TEST(Lll, ConditionHoldsOnHighDegreeRegularGraphs) {
  // C_10: p = 1/4, dependency bound 5, e * 5/4 > 1 — condition fails.
  EXPECT_FALSE(LllAvoidance::lll_condition_holds(graph::cycle(10)));
  // Q_8: p = 2^-8, dependency bound 65, e * 65/256 < 1 — condition holds.
  EXPECT_TRUE(LllAvoidance::lll_condition_holds(graph::hypercube(8)));
  EXPECT_FALSE(LllAvoidance::lll_condition_holds(graph::hypercube(7)));
}

TEST(Relax, FResilientCountsBadBalls) {
  const ProperColoring base(3);
  const local::Instance inst = ring_instance(6);
  // One monochromatic edge -> 2 bad balls.
  const local::Labeling y = {0, 0, 1, 0, 1, 2};
  EXPECT_FALSE(base.contains(inst, y));
  EXPECT_FALSE(FResilient(base, 1).contains(inst, y));
  EXPECT_TRUE(FResilient(base, 2).contains(inst, y));
  EXPECT_TRUE(FResilient(base, 5).contains(inst, y));
}

TEST(Relax, FResilientOfMemberIsMember) {
  const ProperColoring base(3);
  const local::Instance inst = ring_instance(6);
  const local::Labeling proper = {0, 1, 0, 1, 0, 1};
  EXPECT_TRUE(FResilient(base, 0).contains(inst, proper));
}

TEST(Relax, EpsSlackScalesWithN) {
  const ProperColoring base(3);
  const EpsSlack slack(base, 0.4);
  const local::Instance small = ring_instance(5);
  // floor(0.4 * 5) = 2 bad balls allowed.
  EXPECT_EQ(slack.fault_budget(small), 2u);
  const local::Labeling y = {0, 0, 1, 2, 1};  // one bad edge -> 2 bad balls
  EXPECT_TRUE(slack.contains(small, y));
  const EpsSlack tight(base, 0.2);  // budget 1 < 2
  EXPECT_FALSE(tight.contains(small, y));
}

TEST(Relax, PolyResilientInterpolatesBetweenResilientAndSlack) {
  const ProperColoring base(3);
  const local::Instance inst = ring_instance(16);
  // c = 0: budget n^0 = 1 (one bad ball allowed).
  EXPECT_EQ(PolyResilient(base, 0.0).fault_budget(inst), 1u);
  // c = 0.5: floor(sqrt(16)) = 4.
  EXPECT_EQ(PolyResilient(base, 0.5).fault_budget(inst), 4u);
  // c = 1: budget n.
  EXPECT_EQ(PolyResilient(base, 1.0).fault_budget(inst), 16u);

  // An output with 2 bad balls (single clash at edge (0,1)): inside the
  // budget for c >= 0.25, outside for c = 0 (budget 1).
  const local::Labeling single_clash = {0, 0, 1, 0, 1, 0, 1, 0,
                                        1, 0, 1, 0, 1, 0, 1, 2};
  ASSERT_EQ(base.count_bad_balls(inst, single_clash), 2u);
  EXPECT_FALSE(PolyResilient(base, 0.0).contains(inst, single_clash));
  EXPECT_TRUE(PolyResilient(base, 0.5).contains(inst, single_clash));
  EXPECT_TRUE(PolyResilient(base, 1.0).contains(inst, single_clash));
}

TEST(Relax, NamesAreDescriptive) {
  const ProperColoring base(3);
  EXPECT_NE(FResilient(base, 2).name().find("2-resilient"),
            std::string::npos);
  EXPECT_NE(EpsSlack(base, 0.1).name().find("slack"), std::string::npos);
}

}  // namespace
}  // namespace lnc::lang
