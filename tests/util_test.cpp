// Tests for src/util: iterated logarithm, math helpers, tables, strings,
// and the file I/O error paths (named-path diagnostics, atomic-write
// pre-checks).
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <sstream>

#include "util/build_info.h"
#include "util/file_util.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/string_util.h"
#include "util/table.h"

namespace lnc::util {
namespace {

TEST(LogStar, SmallValues) {
  // Floor-based iteration: x -> floor(log2(x)) until x <= 1.
  EXPECT_EQ(log_star(0), 0);
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(3), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(15), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65535), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 4);
}

TEST(LogStar, IsMonotone) {
  int prev = 0;
  for (std::uint64_t x = 1; x < 100000; x += 97) {
    const int cur = log_star(x);
    EXPECT_GE(cur, prev > 0 ? prev - 1 : 0);
    prev = cur;
  }
}

TEST(LogStar, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2((std::uint64_t{1} << 63) + 5), 63);
}

TEST(LogStar, Thresholds) {
  // t(0)=2, t(1)=4, t(2)=16, t(3)=65536; log_star(t(s)) == s+1 exactly at
  // the threshold, log_star(t(s)-1) == s.
  EXPECT_EQ(log_star_threshold(0), 2u);
  EXPECT_EQ(log_star_threshold(1), 4u);
  EXPECT_EQ(log_star_threshold(2), 16u);
  EXPECT_EQ(log_star_threshold(3), 65536u);
  EXPECT_EQ(log_star(log_star_threshold(3)), 4);
  EXPECT_EQ(log_star(log_star_threshold(3) - 1), 3);
}

TEST(Math, GoldenRatioGuaranteeIsFixedPoint) {
  const double p = golden_ratio_guarantee();
  EXPECT_NEAR(p, 0.61803398875, 1e-9);
  // p* satisfies p = 1 - p^2 — the paper's balance point.
  EXPECT_NEAR(p, 1.0 - p * p, 1e-12);
}

TEST(Math, AmosGuaranteeMaximizedAtGoldenRatio) {
  const double p_star = golden_ratio_guarantee();
  const double best = amos_guarantee(p_star);
  for (double p = 0.0; p <= 1.0; p += 0.001) {
    EXPECT_LE(amos_guarantee(p), best + 1e-9);
  }
}

TEST(Math, WilsonIntervalContainsPointEstimate) {
  const Interval iv = wilson_interval(60, 100);
  EXPECT_LT(iv.lo, 0.6);
  EXPECT_GT(iv.hi, 0.6);
  EXPECT_GT(iv.lo, 0.45);
  EXPECT_LT(iv.hi, 0.75);
}

TEST(Math, WilsonIntervalDegenerateCases) {
  const Interval empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
  const Interval all = wilson_interval(50, 50);
  EXPECT_GT(all.lo, 0.9);
  EXPECT_EQ(all.hi, 1.0);
  const Interval none = wilson_interval(0, 50);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(Math, WilsonIntervalNarrowsWithTrials) {
  const Interval small = wilson_interval(10, 20);
  const Interval large = wilson_interval(10000, 20000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Math, SaturatingPow) {
  EXPECT_EQ(saturating_pow(2, 10), 1024u);
  EXPECT_EQ(saturating_pow(3, 0), 1u);
  EXPECT_EQ(saturating_pow(0, 5), 0u);
  EXPECT_EQ(saturating_pow(2, 64),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(saturating_pow(10, 20),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(5, 0), 0u);
}

TEST(Table, AlignsAndStoresCells) {
  Table t({"name", "value"});
  t.new_row().add_cell("alpha").add_cell(std::uint64_t{42});
  t.new_row().add_cell("b").add_cell(3.14159, 2);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.at(0, 0), "alpha");
  EXPECT_EQ(t.at(0, 1), "42");
  EXPECT_EQ(t.at(1, 1), "3.14");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.new_row().add_cell("x,y").add_cell("say \"hi\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, AtThrowsOutOfRange) {
  Table t({"only"});
  t.new_row().add_cell("cell");
  EXPECT_THROW(t.at(1, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 1), std::out_of_range);
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"p", "q", "r"};
  EXPECT_EQ(join(parts, "-"), "p-q-r");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("anything", ""));
}

// ------------------------------------------------------------ file I/O --

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("lnc-util-" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(FileUtil, RoundTripsContent) {
  const std::string path = fresh_dir("roundtrip") + "/data.txt";
  EXPECT_EQ(write_file_atomic(path, "line one\nline two\n"), "");
  std::string text;
  EXPECT_EQ(read_file(path, text), "");
  EXPECT_EQ(text, "line one\nline two\n");
  // No tmp-file droppings next to the target.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    EXPECT_EQ(entry.path().filename().string(), "data.txt");
  }
}

TEST(FileUtil, ReadNamesTheMissingFile) {
  const std::string path = fresh_dir("read-missing") + "/absent.json";
  std::string text = "sentinel";
  const std::string error = read_file(path, text);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("no such file"), std::string::npos) << error;
}

TEST(FileUtil, ReadRejectsADirectory) {
  const std::string dir = fresh_dir("read-dir");
  std::string text;
  const std::string error = read_file(dir, text);
  EXPECT_NE(error.find(dir), std::string::npos) << error;
  EXPECT_NE(error.find("directory"), std::string::npos) << error;
}

TEST(FileUtil, WriteNamesTheMissingParentDirectory) {
  const std::string parent = fresh_dir("write-parent") + "/no/such/dir";
  const std::string error =
      write_file_atomic(parent + "/out.json", "content");
  EXPECT_NE(error.find(parent), std::string::npos)
      << "the diagnostic must name the missing PARENT, not just the "
         "target: "
      << error;
  EXPECT_NE(error.find("does not exist"), std::string::npos) << error;
}

TEST(FileUtil, WriteRejectsAFileUsedAsParentDirectory) {
  const std::string dir = fresh_dir("write-notdir");
  ASSERT_EQ(write_file_atomic(dir + "/plain.txt", "x"), "");
  const std::string error =
      write_file_atomic(dir + "/plain.txt/nested.json", "content");
  EXPECT_NE(error.find("not a directory"), std::string::npos) << error;
}

TEST(FileUtil, WriteRejectsADirectoryTarget) {
  const std::string dir = fresh_dir("write-dirtarget");
  const std::string error = write_file_atomic(dir, "content");
  EXPECT_NE(error.find(dir), std::string::npos) << error;
  EXPECT_NE(error.find("directory"), std::string::npos) << error;
  EXPECT_TRUE(std::filesystem::is_directory(dir))
      << "a failed write must not disturb the target";
}

TEST(BuildInfo, IdentityNamesEpochAndRev) {
  EXPECT_EQ(seed_stream_epoch(), kSeedStreamEpoch);
  EXPECT_FALSE(build_rev().empty());
  const std::string identity = build_identity();
  EXPECT_NE(identity.find("seed-stream epoch "), std::string::npos);
  EXPECT_NE(identity.find(build_rev()), std::string::npos);
}

}  // namespace
}  // namespace lnc::util
