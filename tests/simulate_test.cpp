// Tests for local/simulate: the two-phase message-passing simulation of
// ball algorithms agrees with the direct ball runner — the executable
// content of the paper's section-2.1.1 simulation argument.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "local/simulate.h"

namespace lnc::local {
namespace {

/// Rank of the center identity within its ball — reads ids + structure.
class CenterRank final : public BallAlgorithm {
 public:
  explicit CenterRank(int radius) : radius_(radius) {}
  std::string name() const override { return "center-rank"; }
  int radius() const override { return radius_; }
  Label compute(const View& view) const override {
    Label rank = 0;
    for (graph::NodeId i = 1; i < view.ball->size(); ++i) {
      if (view.identity(i) < view.center_identity()) ++rank;
    }
    return rank;
  }

 private:
  int radius_;
};

/// Sum of inputs weighted by distance — reads inputs + distances.
class DistanceWeightedSum final : public BallAlgorithm {
 public:
  std::string name() const override { return "distance-weighted-sum"; }
  int radius() const override { return 2; }
  Label compute(const View& view) const override {
    Label sum = 0;
    for (graph::NodeId i = 0; i < view.ball->size(); ++i) {
      sum += view.input(i) *
             static_cast<Label>(view.ball->distance(i) + 1);
    }
    return sum;
  }
};

/// Degree profile of the ball — reads pure structure (degrees in ball).
class DegreeProfile final : public BallAlgorithm {
 public:
  std::string name() const override { return "degree-profile"; }
  int radius() const override { return 1; }
  Label compute(const View& view) const override {
    Label profile = view.ball->degree_in_ball(0);
    for (graph::NodeId nbr : view.ball->neighbors(0)) {
      profile += 100 * view.ball->degree_in_ball(nbr);
    }
    return profile;
  }
};

Instance labeled_instance(graph::Graph g, std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  Instance inst = make_instance(std::move(g),
                                ident::random_permutation(n, seed));
  inst.input.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    inst.input[v] = (seed + v * v) % 7;
  }
  return inst;
}

class SimulateProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulateProperty, MessagePassingEqualsDirectBallRun) {
  graph::Graph g;
  switch (GetParam()) {
    case 0: g = graph::cycle(17); break;
    case 1: g = graph::grid(5, 4); break;
    case 2: g = graph::binary_tree(31); break;
    case 3: g = graph::petersen(); break;
    case 4: g = graph::random_regular(24, 3, 11); break;
    default: g = graph::hypercube(4); break;
  }
  const Instance inst = labeled_instance(std::move(g), 13);

  const CenterRank rank2(2);
  EXPECT_EQ(run_via_messages(inst, rank2).output,
            run_ball_algorithm(inst, rank2));

  const DistanceWeightedSum sums;
  EXPECT_EQ(run_via_messages(inst, sums).output,
            run_ball_algorithm(inst, sums));

  const DegreeProfile profile;
  EXPECT_EQ(run_via_messages(inst, profile).output,
            run_ball_algorithm(inst, profile));
}

INSTANTIATE_TEST_SUITE_P(Families, SimulateProperty, ::testing::Range(0, 6));

TEST(Simulate, RoundCountEqualsRadius) {
  const Instance inst = labeled_instance(graph::cycle(12), 3);
  const CenterRank rank3(3);
  EXPECT_EQ(run_via_messages(inst, rank3).rounds, 3);
  const CenterRank rank0(0);
  EXPECT_EQ(run_via_messages(inst, rank0).rounds, 0);
}

TEST(Simulate, ReconstructionMatchesBallMembership) {
  const Instance inst = labeled_instance(graph::grid(4, 4), 5);
  const auto tables = collect_balls(inst, 2);
  for (graph::NodeId v = 0; v < inst.node_count(); ++v) {
    const ReconstructedBall ball = reconstruct_ball(tables[v], inst.ids[v]);
    const graph::BallView direct(inst.g, v, 2);
    EXPECT_EQ(ball.instance.node_count(), direct.size());
    // Same identity set.
    std::set<ident::Identity> direct_ids;
    for (graph::NodeId i = 0; i < direct.size(); ++i) {
      direct_ids.insert(inst.ids[direct.to_original(i)]);
    }
    std::set<ident::Identity> rec_ids(ball.instance.ids.raw().begin(),
                                      ball.instance.ids.raw().end());
    EXPECT_EQ(rec_ids, direct_ids);
    // Inputs travel with identities.
    for (graph::NodeId i = 0; i < ball.instance.node_count(); ++i) {
      const graph::NodeId orig =
          inst.ids.index_of(ball.instance.ids[i]);
      EXPECT_EQ(ball.instance.input_of(i), inst.input_of(orig));
    }
  }
}

TEST(Simulate, GrantNReachesTheAlgorithm) {
  class NReader final : public BallAlgorithm {
   public:
    std::string name() const override { return "n-reader"; }
    int radius() const override { return 1; }
    Label compute(const View& view) const override {
      return view.n_nodes.value_or(0);
    }
  };
  const Instance inst = labeled_instance(graph::cycle(9), 2);
  EngineOptions options;
  options.grant_n = true;
  EXPECT_EQ(run_via_messages(inst, NReader{}, options).output[0], 9u);
}

}  // namespace
}  // namespace lnc::local
