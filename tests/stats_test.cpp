// Tests for src/stats: thread pool, Monte-Carlo estimation (including
// bit-for-bit reproducibility across thread counts), summaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "rand/splitmix.h"
#include "stats/montecarlo.h"
#include "stats/summary.h"
#include "stats/threadpool.h"

namespace lnc::stats {
namespace {

TEST(ThreadPool, CoversTheFullRange) {
  const ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneCount) {
  const ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(MonteCarlo, EstimatesAFairCoin) {
  const Estimate e = estimate_probability(
      20000, 99, [](std::uint64_t seed) { return (seed & 1) == 0; });
  // trial_seed mixes, so parity of the mixed seed is ~uniform.
  EXPECT_NEAR(e.p_hat, 0.5, 0.02);
  EXPECT_LE(e.ci.lo, e.p_hat);
  EXPECT_GE(e.ci.hi, e.p_hat);
}

TEST(MonteCarlo, ReproducibleAcrossThreadCounts) {
  auto trial = [](std::uint64_t seed) {
    return rand::splitmix64(seed) % 7 == 0;
  };
  const Estimate seq = estimate_probability(5000, 3, trial, nullptr);
  const ThreadPool pool(4);
  const Estimate par = estimate_probability(5000, 3, trial, &pool);
  EXPECT_EQ(seq.successes, par.successes);
}

TEST(MonteCarlo, SignificanceHelpers) {
  const Estimate high = estimate_probability(
      2000, 5, [](std::uint64_t) { return true; });
  EXPECT_TRUE(high.significantly_above(0.9));
  EXPECT_FALSE(high.significantly_below(0.9));
}

TEST(MonteCarlo, MeanEstimate) {
  const MeanEstimate m = estimate_mean(10000, 11, [](std::uint64_t seed) {
    // Uniform double in [0,1) derived from the trial seed.
    return static_cast<double>(rand::splitmix64(seed) >> 11) * 0x1.0p-53;
  });
  EXPECT_NEAR(m.mean, 0.5, 0.02);
  EXPECT_NEAR(m.stddev, 1.0 / std::sqrt(12.0), 0.02);
}

TEST(MonteCarlo, TrialSeedsAreDistinct) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  EXPECT_EQ(trial_seed(1, 5), trial_seed(1, 5));
}

TEST(Summary, BasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_EQ(s.count, 5u);
}

TEST(Summary, QuantilesInterpolate) {
  const std::vector<double> sorted = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 1.5);
}

TEST(Summary, HistogramClampsOutliers) {
  const auto bins = histogram({-1.0, 0.1, 0.5, 0.9, 2.0}, 0.0, 1.0, 2);
  ASSERT_EQ(bins.size(), 2u);
  // -1.0 clamps into bin 0; 0.5 lands exactly on the bin-1 edge; 2.0
  // clamps into bin 1.
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 3u);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

}  // namespace
}  // namespace lnc::stats
