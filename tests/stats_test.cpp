// Tests for src/stats: thread pool, Monte-Carlo estimation (including
// bit-for-bit reproducibility across thread counts), summaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rand/splitmix.h"
#include "stats/exact_sum.h"
#include "stats/montecarlo.h"
#include "stats/summary.h"
#include "stats/threadpool.h"

namespace lnc::stats {
namespace {

TEST(ExactSum, SingleAdditionRoundTripsTheDouble) {
  for (const double value :
       {0.0, 1.0, -1.0, 0.1, -0.1, 1e-300, -1e300, 4.9406564584124654e-324,
        1.7976931348623157e308, 3.141592653589793, 1.0 / 3.0}) {
    ExactSum sum;
    sum.add(value);
    EXPECT_EQ(sum.value(), value) << value;
  }
}

TEST(ExactSum, CancellationIsExact) {
  // Naive double accumulation of 1e100 + 1 - 1e100 collapses to 0; the
  // superaccumulator keeps the 1 alive.
  ExactSum sum;
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_EQ(sum.value(), 1.0);
  EXPECT_FALSE(sum.is_zero());
  sum.add(-1.0);
  EXPECT_TRUE(sum.is_zero());
  EXPECT_EQ(sum.value(), 0.0);
}

TEST(ExactSum, OrderAndPartitionIndependent) {
  // Any addition order and any shard partition represent the same exact
  // value — word-for-word equal accumulators, identical hex, identical
  // rounded double. (Naive double sums would disagree here.)
  rand::SplitMix64 rng(77);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double magnitude = std::ldexp(
        static_cast<double>(rng.next() >> 11),
        static_cast<int>(rng.next_below(600)) - 300);
    values.push_back((rng.next() & 1) != 0 ? -magnitude : magnitude);
  }
  ExactSum forward;
  for (const double v : values) forward.add(v);
  ExactSum backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.add(*it);
  }
  ExactSum sharded;
  ExactSum shard_a;
  ExactSum shard_b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 127 ? shard_a : shard_b).add(values[i]);
  }
  sharded.merge(shard_a);
  sharded.merge(shard_b);
  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward == sharded);
  EXPECT_EQ(forward.to_hex(), sharded.to_hex());
  EXPECT_EQ(forward.value(), backward.value());
  EXPECT_EQ(forward.value(), sharded.value());
}

TEST(ExactSum, HexRoundTripIsCanonical) {
  rand::SplitMix64 rng(91);
  for (int i = 0; i < 50; ++i) {
    ExactSum sum;
    for (int k = 0; k < 7; ++k) {
      const double magnitude =
          static_cast<double>(rng.next() >> 12) / 1024.0;
      sum.add((rng.next() & 1) != 0 ? -magnitude : magnitude);
    }
    const ExactSum parsed = ExactSum::from_hex(sum.to_hex());
    EXPECT_TRUE(parsed == sum);
    EXPECT_EQ(parsed.to_hex(), sum.to_hex());
    EXPECT_EQ(parsed.value(), sum.value());
  }
  EXPECT_EQ(ExactSum().to_hex(), "0");
  EXPECT_TRUE(ExactSum::from_hex("0").is_zero());
  EXPECT_THROW(ExactSum::from_hex(""), std::runtime_error);
  EXPECT_THROW(ExactSum::from_hex("xyz"), std::runtime_error);
}

TEST(ExactSum, IntegerSumsAreExact) {
  ExactSum sum;
  std::uint64_t expected = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    sum.add(static_cast<double>(i));
    expected += i;
  }
  EXPECT_EQ(sum.value(), static_cast<double>(expected));
}

TEST(MonteCarlo, FinalizeMeanExactMatchesTwoPassOnBenignData) {
  // On well-conditioned data the sum-of-squares formula agrees with the
  // two-pass stddev to floating-point accuracy.
  std::vector<double> values;
  ExactSum sum;
  ExactSum sum_sq;
  rand::SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.next_below(1000)) / 10.0;
    values.push_back(v);
    sum.add(v);
    sum_sq.add(v * v);
  }
  const MeanEstimate two_pass = finalize_mean(values);
  const MeanEstimate exact = finalize_mean_exact(sum, sum_sq, values.size());
  EXPECT_EQ(exact.trials, two_pass.trials);
  EXPECT_NEAR(exact.mean, two_pass.mean, 1e-12);
  EXPECT_NEAR(exact.stddev, two_pass.stddev, 1e-9);
}

TEST(ThreadPool, CoversTheFullRange) {
  const ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneCount) {
  const ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(MonteCarlo, EstimatesAFairCoin) {
  const Estimate e = estimate_probability(
      20000, 99, [](std::uint64_t seed) { return (seed & 1) == 0; });
  // trial_seed mixes, so parity of the mixed seed is ~uniform.
  EXPECT_NEAR(e.p_hat, 0.5, 0.02);
  EXPECT_LE(e.ci.lo, e.p_hat);
  EXPECT_GE(e.ci.hi, e.p_hat);
}

TEST(MonteCarlo, ReproducibleAcrossThreadCounts) {
  auto trial = [](std::uint64_t seed) {
    return rand::splitmix64(seed) % 7 == 0;
  };
  const Estimate seq = estimate_probability(5000, 3, trial, nullptr);
  const ThreadPool pool(4);
  const Estimate par = estimate_probability(5000, 3, trial, &pool);
  EXPECT_EQ(seq.successes, par.successes);
}

TEST(MonteCarlo, SignificanceHelpers) {
  const Estimate high = estimate_probability(
      2000, 5, [](std::uint64_t) { return true; });
  EXPECT_TRUE(high.significantly_above(0.9));
  EXPECT_FALSE(high.significantly_below(0.9));
}

TEST(MonteCarlo, MeanEstimate) {
  const MeanEstimate m = estimate_mean(10000, 11, [](std::uint64_t seed) {
    // Uniform double in [0,1) derived from the trial seed.
    return static_cast<double>(rand::splitmix64(seed) >> 11) * 0x1.0p-53;
  });
  EXPECT_NEAR(m.mean, 0.5, 0.02);
  EXPECT_NEAR(m.stddev, 1.0 / std::sqrt(12.0), 0.02);
}

TEST(MonteCarlo, TrialSeedsAreDistinct) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  EXPECT_EQ(trial_seed(1, 5), trial_seed(1, 5));
}

TEST(Summary, BasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_EQ(s.count, 5u);
}

TEST(Summary, QuantilesInterpolate) {
  const std::vector<double> sorted = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 1.5);
}

TEST(Summary, HistogramClampsOutliers) {
  const auto bins = histogram({-1.0, 0.1, 0.5, 0.9, 2.0}, 0.0, 1.0, 2);
  ASSERT_EQ(bins.size(), 2u);
  // -1.0 clamps into bin 0; 0.5 lands exactly on the bin-1 edge; 2.0
  // clamps into bin 1.
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 3u);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

}  // namespace
}  // namespace lnc::stats
