// Tests for src/obs: histogram bucket boundaries, order-free merge
// bit-identity (mirroring the ExactSum tests the value tallies rely on),
// registry JSON round trips, trace well-formedness, and progress lines.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "scenario/spec_json.h"

namespace lnc::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Histogram, BucketBoundariesAtPowersOfTwo) {
  // Zero, negatives, and NaN land in bucket 0; +inf in the top bucket.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-kInf), 0);
  EXPECT_EQ(Histogram::bucket_index(kNaN), 0);
  EXPECT_EQ(Histogram::bucket_index(kInf), Histogram::kBucketCount - 1);

  // 2^e sits at the INCLUSIVE lower edge of its bucket for every covered
  // exponent; the value just below falls one bucket down.
  for (int e = Histogram::kMinExponent; e <= Histogram::kMaxExponent; ++e) {
    const double value = std::ldexp(1.0, e);
    const int index = 2 + (e - Histogram::kMinExponent);
    EXPECT_EQ(Histogram::bucket_index(value), index) << "e=" << e;
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(value, 0.0)), index - 1)
        << "e=" << e;
    EXPECT_EQ(Histogram::bucket_lower_bound(index), value) << "e=" << e;
  }

  // Below 2^-32 is the underflow bucket; at/above 2^31 the top bucket
  // absorbs everything.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, -33)), 1);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 31)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 40)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 0.0);
  EXPECT_EQ(Histogram::bucket_lower_bound(0), -kInf);
}

TEST(Histogram, NonFiniteObservationsAreCountedButExcludedFromSum) {
  Histogram h;
  h.observe(1.5);
  h.observe(kNaN);
  h.observe(kInf);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1.5);  // ExactSum requires finite input
  EXPECT_EQ(h.min(), 1.5);
  EXPECT_EQ(h.max(), 1.5);
  EXPECT_EQ(h.bucket(0), 1u);                            // NaN
  EXPECT_EQ(h.bucket(Histogram::kBucketCount - 1), 1u);  // +inf
}

// Deterministic pseudo-values spanning many buckets (no RNG needed).
std::vector<double> test_values(int count) {
  std::vector<double> values;
  values.reserve(count);
  for (int i = 0; i < count; ++i) {
    values.push_back(std::ldexp(1.0 + 0.001 * i, (i * 7) % 40 - 20));
  }
  return values;
}

TEST(Histogram, MergeIsOrderFreeBitForBit) {
  // The same contract ExactSum gives the value tallies: any partition of
  // the observation multiset, merged in any order, yields the identical
  // histogram — including the exact-sum hex words.
  const std::vector<double> values = test_values(257);
  Histogram sequential;
  for (const double v : values) sequential.observe(v);

  for (const int parts : {2, 3, 7}) {
    std::vector<Histogram> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % parts].observe(values[i]);
    }
    // Forward merge order.
    Histogram forward;
    for (const Histogram& shard : shards) forward.merge(shard);
    // Reverse merge order.
    Histogram reverse;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
      reverse.merge(*it);
    }
    EXPECT_EQ(forward.sum_hex(), sequential.sum_hex()) << parts;
    EXPECT_EQ(reverse.sum_hex(), sequential.sum_hex()) << parts;
    EXPECT_EQ(forward.to_json(), sequential.to_json()) << parts;
    EXPECT_EQ(reverse.to_json(), sequential.to_json()) << parts;
  }
}

TEST(Histogram, JsonRoundTripPreservesEveryField) {
  Histogram h;
  for (const double v : test_values(50)) h.observe(v);
  const std::string json = h.to_json();
  std::vector<std::string> warnings;
  const Histogram back =
      Histogram::from_json(scenario::Json::parse(json), "test", &warnings);
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.sum_hex(), h.sum_hex());
  EXPECT_EQ(back.count(), h.count());
}

TEST(Histogram, UnknownJsonKeysWarnInsteadOfFailing) {
  std::vector<std::string> warnings;
  const Histogram h = Histogram::from_json(
      scenario::Json::parse(
          "{\"count\": 1, \"exact_sum\": \"0\", \"buckets\": [[2, 1]], "
          "\"speculative\": true}"),
      "test-histogram", &warnings);
  EXPECT_EQ(h.count(), 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("speculative"), std::string::npos);
  EXPECT_NE(warnings[0].find("test-histogram"), std::string::npos);
}

TEST(MetricsRegistry, MergeSumsCountersMaxesGaugesMergesHistograms) {
  MetricsRegistry a;
  a.add_counter("events", 3);
  a.set_gauge("peak_bytes", 100.0);
  a.observe("latency", 0.25);
  MetricsRegistry b;
  b.add_counter("events", 4);
  b.set_gauge("peak_bytes", 50.0);
  b.observe("latency", 0.5);
  b.observe("other", 1.0);

  a.merge(b);
  EXPECT_EQ(a.counters().at("events"), 7u);
  EXPECT_EQ(a.gauges().at("peak_bytes"), 100.0);
  EXPECT_EQ(a.histograms().at("latency").count(), 2u);
  EXPECT_EQ(a.histograms().at("other").count(), 1u);
}

TEST(MetricsRegistry, JsonRoundTripAndUnknownKeyWarning) {
  MetricsRegistry registry;
  registry.add_counter("batches", 12);
  registry.set_gauge("footprint", 4096.0);
  for (const double v : test_values(20)) registry.observe("latency", v);

  const std::string json = registry.to_json();
  std::vector<std::string> warnings;
  const MetricsRegistry back = MetricsRegistry::from_json(
      scenario::Json::parse(json), "metrics", &warnings);
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(back.to_json(), json);

  // An unknown section warns (the stale-file guard sweep JSON relies on)
  // and everything recognized still loads.
  const MetricsRegistry partial = MetricsRegistry::from_json(
      scenario::Json::parse(
          "{\"counters\": {\"batches\": 1}, \"futures\": {}}"),
      "metrics", &warnings);
  EXPECT_EQ(partial.counters().at("batches"), 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("futures"), std::string::npos);
}

TEST(MetricsRegistry, EmptyAndClear) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.observe("x", 1.0);
  EXPECT_FALSE(registry.empty());
  registry.clear();
  EXPECT_TRUE(registry.empty());
}

TEST(Trace, DisabledSpansRecordNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.disable();
  recorder.clear();
  { const Span span("never"); }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Trace, MultiThreadedSpansEmitWellFormedChromeJson) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.clear();
  recorder.enable();
  {
    const Span outer("outer", span_args("n", std::uint64_t{4096}));
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 8; ++i) {
          const Span inner("inner");
          const Span leaf("leaf", span_args("label", std::string("x\"y")));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  recorder.disable();
  // 1 outer + 4*8 inner + 4*8 leaf.
  EXPECT_EQ(recorder.event_count(), 65u);
  EXPECT_EQ(recorder.dropped_count(), 0u);

  const scenario::Json root = scenario::Json::parse(recorder.to_json());
  const auto& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 65u);
  std::uint64_t last_ts = 0;
  for (const scenario::Json& event : events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    const std::uint64_t ts = event.at("ts").as_uint64();
    EXPECT_GE(ts, last_ts);  // sorted by start time
    last_ts = ts;
    EXPECT_GE(event.at("dur").as_uint64(), 0u);
    EXPECT_EQ(event.at("pid").as_uint64(), 1u);
    const std::string& name = event.at("name").as_string();
    EXPECT_TRUE(name == "outer" || name == "inner" || name == "leaf")
        << name;
  }
  recorder.clear();
}

TEST(Progress, FinalLineReportsTotalsAndCompletion) {
  std::ostringstream os;
  {
    Progress progress("test-unit", 10, "trials", &os);
    for (int i = 0; i < 10; ++i) progress.tick(1);
    progress.finish();
    EXPECT_EQ(progress.done(), 10u);
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("progress[test-unit]:"), std::string::npos) << out;
  EXPECT_NE(out.find("10/10 trials"), std::string::npos) << out;
  EXPECT_NE(out.find("done in"), std::string::npos) << out;
}

TEST(Progress, IdleChannelStaysSilent) {
  // An unknown-total channel that never ticks (e.g. the node heartbeat
  // on a materialized run) must not print a spurious final line.
  std::ostringstream os;
  {
    Progress progress("idle", 0, "nodes", &os);
    progress.finish();
  }
  EXPECT_TRUE(os.str().empty()) << os.str();
}

TEST(WorkerMetrics, ScopeInstallsAndRestores) {
  EXPECT_EQ(worker_metrics(), nullptr);
  MetricsRegistry outer_registry;
  {
    WorkerMetricsScope outer(&outer_registry);
    EXPECT_EQ(worker_metrics(), &outer_registry);
    MetricsRegistry inner_registry;
    {
      WorkerMetricsScope inner(&inner_registry);
      EXPECT_EQ(worker_metrics(), &inner_registry);
    }
    EXPECT_EQ(worker_metrics(), &outer_registry);
  }
  EXPECT_EQ(worker_metrics(), nullptr);
}

}  // namespace
}  // namespace lnc::obs
