// Tests for core/ramsey: the finite operationalization of Appendix A.
//
// The appendix proves (infinite Ramsey) that a uniform identity universe
// U exists for every t-round algorithm under F_k, and builds the order-
// invariant A' by re-identifying balls with the smallest members of U.
// Here we verify both halves on concrete algorithms where the universe is
// computable: the search finds U, A' is order-invariant, and A' == A on
// instances whose identities come from U.
#include <gtest/gtest.h>

#include <set>

#include "core/hard_instances.h"
#include "core/order_check.h"
#include "core/ramsey.h"
#include "algo/order_invariant.h"
#include "graph/generators.h"
#include "ident/order.h"

namespace lnc::core {
namespace {

/// output = center identity mod `m` — the canonical identity-reading,
/// non-order-invariant algorithm. Its uniform universes are exactly the
/// residue classes mod m.
class IdModReader final : public local::BallAlgorithm {
 public:
  explicit IdModReader(int m) : m_(m) {}
  std::string name() const override {
    return "id-mod-" + std::to_string(m_);
  }
  int radius() const override { return 1; }
  local::Label compute(const local::View& view) const override {
    return view.identity(0) % static_cast<ident::Identity>(m_);
  }

 private:
  int m_;
};

/// output = (sum of all window identities) mod 2 — interaction between
/// every member of the ball, still residue-structured.
class WindowParity final : public local::BallAlgorithm {
 public:
  std::string name() const override { return "window-parity"; }
  int radius() const override { return 1; }
  local::Label compute(const local::View& view) const override {
    ident::Identity sum = 0;
    for (graph::NodeId i = 0; i < view.ball->size(); ++i) {
      sum += view.identity(i);
    }
    return sum % 2;
  }
};

TEST(Ramsey, FindsResidueClassForModReader) {
  const IdModReader algo(3);
  UniverseOptions options;
  options.pool_size = 300;
  options.target_size = 24;
  const UniverseResult result = find_uniform_universe(algo, 1, options);
  ASSERT_TRUE(result.uniform);
  ASSERT_GE(result.universe.size(), 24u);
  // All universe members share the residue mod 3 (the Ramsey color).
  std::set<ident::Identity> residues;
  for (ident::Identity id : result.universe) residues.insert(id % 3);
  EXPECT_EQ(residues.size(), 1u);
}

TEST(Ramsey, FindsParityClassForWindowParity) {
  const WindowParity algo;
  UniverseOptions options;
  options.pool_size = 300;
  options.target_size = 24;
  const UniverseResult result = find_uniform_universe(algo, 1, options);
  ASSERT_TRUE(result.uniform);
  std::set<ident::Identity> residues;
  for (ident::Identity id : result.universe) residues.insert(id % 2);
  EXPECT_EQ(residues.size(), 1u);  // all even or all odd
}

TEST(Ramsey, OrderInvariantAlgorithmsGetFullPool) {
  // An algorithm that is already order-invariant is pattern-constant on
  // the WHOLE pool: one behavior class.
  const auto tables = algo::enumerate_tables(3, 3, 77, 1);
  const algo::RankPatternRingAlgorithm alg(1, tables[0]);
  UniverseOptions options;
  options.pool_size = 200;
  options.target_size = 64;
  const UniverseResult result = find_uniform_universe(alg, 1, options);
  EXPECT_TRUE(result.uniform);
  // Pool minus the 2 companions.
  EXPECT_EQ(result.universe.size(), 64u);
}

TEST(Ramsey, APrimeIsOrderInvariant) {
  const IdModReader raw(3);
  UniverseOptions options;
  options.pool_size = 300;
  options.target_size = 32;
  const UniverseResult found = find_uniform_universe(raw, 1, options);
  ASSERT_TRUE(found.uniform);
  const RamseyOrderInvariant a_prime(raw, found.universe);

  // The raw algorithm is NOT order-invariant; A' is.
  const local::Instance inst = consecutive_ring(12);
  OrderCheckOptions check;
  check.trials = 24;
  EXPECT_GT(check_order_invariance(inst, raw, check).violations, 0u);
  EXPECT_TRUE(check_order_invariance(inst, a_prime, check).invariant());
}

TEST(Ramsey, APrimeAgreesWithAOnUniverseInstances) {
  // Appendix A's correctness: on instances whose identities are drawn
  // from U (in rank order along any ball), A' reproduces A exactly.
  const IdModReader raw(3);
  UniverseOptions options;
  options.pool_size = 400;
  options.target_size = 40;
  const UniverseResult found = find_uniform_universe(raw, 1, options);
  ASSERT_TRUE(found.uniform);
  ASSERT_GE(found.universe.size(), 10u);
  const RamseyOrderInvariant a_prime(raw, found.universe);

  // Ring whose identities are 10 universe members, in ascending ring
  // order; every radius-1 ball's re-identification maps each id to a
  // universe value with the same residue, so outputs agree.
  std::vector<ident::Identity> ids(found.universe.begin(),
                                   found.universe.begin() + 10);
  local::Instance inst = local::make_instance(graph::cycle(10),
                                              ident::IdAssignment(ids));
  const local::Labeling a_out = local::run_ball_algorithm(inst, raw);
  const local::Labeling a_prime_out =
      local::run_ball_algorithm(inst, a_prime);
  EXPECT_EQ(a_out, a_prime_out);
}

TEST(Ramsey, UniverseSmallerThanBallTraps) {
  const IdModReader raw(2);
  const RamseyOrderInvariant a_prime(raw, {5, 10});  // only 2 ids
  const local::Instance inst = consecutive_ring(8);  // balls have 3 nodes
  EXPECT_DEATH(local::run_ball_algorithm(inst, a_prime), "universe");
}

}  // namespace
}  // namespace lnc::core
