// Tests for src/core: the Theorem-1 glue's structural invariants, the
// boosting-parameter formulas, hard-instance generation, Claim-4/5
// verification machinery, and the order-invariance checker.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "algo/order_invariant.h"
#include "algo/rand_coloring.h"
#include "core/boost_params.h"
#include "core/critical_strings.h"
#include "core/glue.h"
#include "core/hard_instances.h"
#include "core/order_check.h"
#include "decide/resilient_decider.h"
#include "graph/metrics.h"
#include "lang/coloring.h"
#include "lang/relax.h"

namespace lnc::core {
namespace {

TEST(BoostParams, FormulasMatchTheirDefinitions) {
  BoostParameters params;
  params.r = 0.9;
  params.p = 0.7;
  params.beta = 0.1;
  params.t = 0;
  params.t_prime = 1;
  ASSERT_TRUE(params.valid());

  // mu = ceil(1 / 0.4) = 3; D = 2 * 3 * 1 = 6.
  EXPECT_EQ(params.mu(), 3u);
  EXPECT_EQ(params.min_diameter(), 6u);

  // nu = 1 + ceil( ln(0.63) / ln(0.93) ).
  const auto expected_nu = 1 + static_cast<std::uint64_t>(std::ceil(
                                   std::log(0.9 * 0.7) / std::log(1 - 0.07)));
  EXPECT_EQ(params.nu(), expected_nu);

  // The bounds decay geometrically and eventually beat r.
  EXPECT_LT(params.disjoint_acceptance_bound(params.nu()) / params.p,
            params.r);
  EXPECT_LT(params.glued_acceptance_bound(params.nu_prime()), params.r);
  EXPECT_GT(params.disjoint_acceptance_bound(1),
            params.disjoint_acceptance_bound(2));
}

TEST(BoostParams, MuPigeonhole) {
  // Strict inequality holds unless 1/(2p-1) is an exact integer.
  EXPECT_TRUE(mu_pigeonhole_holds(0.7));   // 1/0.4 = 2.5 -> mu 3
  EXPECT_FALSE(mu_pigeonhole_holds(0.75));  // 1/0.5 = 2 exactly (boundary)
  EXPECT_FALSE(mu_pigeonhole_holds(0.5));
  EXPECT_TRUE(mu_pigeonhole_holds(0.618));
}

TEST(BoostParams, OrderInvariantCountMatchesEnumeration) {
  // t = 1, palette 3 on rings: 3^(3!) = 729 — small enough to enumerate.
  EXPECT_EQ(order_invariant_algorithm_count_ring(1, 3), 729u);
  EXPECT_EQ(order_invariant_algorithm_count_ring(0, 2), 2u);
  // t = 2: 5! = 120 patterns, 3^120 saturates.
  EXPECT_EQ(order_invariant_algorithm_count_ring(2, 3),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(BoostParams, Radius1BallCensus) {
  // Radius-1 balls under the paper's edge rule are stars K_{1,d}.
  EXPECT_EQ(radius1_ball_shape_count(3), 4u);
  // k = 0: only label 0 exists (the empty string); only the isolated
  // center: 1 label pair * 1 multiset.
  EXPECT_EQ(label_value_count(0), 1u);
  EXPECT_EQ(labeled_radius1_ball_count(0), 1u);
  EXPECT_EQ(ordered_labeled_radius1_ball_count(0), 1u);
  // k = 1: 3 label values (empty, "0", "1"), 9 pairs; degrees 0 and 1:
  // 9 * (1 + 9) = 90 labeled balls; orderings: 9*1*1! + 9*9*2! = 171.
  EXPECT_EQ(label_value_count(1), 3u);
  EXPECT_EQ(labeled_radius1_ball_count(1), 90u);
  EXPECT_EQ(ordered_labeled_radius1_ball_count(1), 9u + 81u * 2u);
  // k = 2: 7 values, 49 pairs; 49*(1 + 49 + C(50,2)) = 49*1275 = 62475.
  EXPECT_EQ(labeled_radius1_ball_count(2), 62475u);
  // The census grows monotonically in k and saturates eventually.
  EXPECT_LT(labeled_radius1_ball_count(2), labeled_radius1_ball_count(3));
  EXPECT_EQ(labeled_radius1_ball_count(40),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HardInstances, ConsecutiveRingShape) {
  const local::Instance inst = consecutive_ring(10, 100);
  EXPECT_EQ(inst.node_count(), 10u);
  EXPECT_EQ(inst.ids[0], 100u);
  EXPECT_EQ(inst.ids[9], 109u);
  EXPECT_EQ(graph::diameter(inst.g), 5);
}

TEST(HardInstances, Claim2SequenceDisjointIncreasingIds) {
  const auto instances = claim2_sequence(4, 6, 50);
  ASSERT_EQ(instances.size(), 4u);
  ident::Identity prev_max = 0;
  for (const auto& inst : instances) {
    EXPECT_GE(graph::diameter(inst.g), 6);
    EXPECT_GT(inst.ids.min_identity(), prev_max);
    prev_max = inst.ids.max_identity();
  }
  EXPECT_GE(instances[0].ids.min_identity(), 50u);
}

TEST(HardInstances, BetaIsPositiveForRandomColoringOnResilientLanguage) {
  // The zero-round uniform coloring fails the 1-resilient 3-coloring on a
  // decently sized ring with probability bounded away from 0 — the
  // empirical Claim-2 beta.
  const lang::ProperColoring base(3);
  const lang::FResilient relaxed(base, 1);
  const algo::UniformRandomColoring coloring(3);
  const local::Instance inst = consecutive_ring(30);
  const stats::Estimate beta =
      estimate_beta(inst, coloring, relaxed, 2000, 77);
  EXPECT_GT(beta.ci.lo, 0.5);  // C30 random 3-coloring: >1 clash is typical
}

TEST(Glue, StructuralInvariants) {
  const auto parts = claim2_sequence(3, 4);
  const std::vector<graph::NodeId> anchors = {0, 0, 0};
  const GluedInstance glued = theorem1_glue(parts, anchors);

  // Node count: originals + 2 inserted per part.
  graph::NodeId expected = 0;
  for (const auto& part : parts) expected += part.node_count();
  expected += 2 * 3;
  EXPECT_EQ(glued.instance.node_count(), expected);

  // Connected, degree preserved at max(k, 3) = 3 for rings.
  EXPECT_TRUE(graph::is_connected(glued.instance.g));
  EXPECT_LE(glued.instance.g.max_degree(), 3u);

  // Section 5: the construction preserves 2-connectivity (rings are
  // biconnected, so the glue must be too).
  EXPECT_TRUE(graph::is_biconnected(glued.instance.g));

  // Identities: originals keep theirs; inserted nodes sit above them all.
  ident::Identity max_original = 0;
  for (const auto& part : parts) {
    max_original = std::max(max_original, part.ids.max_identity());
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (graph::NodeId v = 0; v < parts[i].node_count(); ++v) {
      EXPECT_EQ(glued.instance.ids[glued.to_glued(i, v)], parts[i].ids[v]);
    }
    EXPECT_GT(glued.instance.ids[glued.v_nodes[i]], max_original);
    EXPECT_GT(glued.instance.ids[glued.w_nodes[i]], max_original);
  }

  // The linking edges exist and the subdivided edge is gone.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(glued.instance.g.has_edge(glued.v_nodes[i],
                                          glued.w_nodes[(i + 1) % 3]));
    const graph::NodeId u = glued.anchors[i];
    const graph::NodeId z = glued.to_glued(i, parts[i].g.neighbors(0)[0]);
    EXPECT_FALSE(glued.instance.g.has_edge(u, z));
    EXPECT_TRUE(glued.instance.g.has_edge(u, glued.v_nodes[i]));
    EXPECT_TRUE(glued.instance.g.has_edge(glued.v_nodes[i],
                                          glued.w_nodes[i]));
    EXPECT_TRUE(glued.instance.g.has_edge(glued.w_nodes[i], z));
  }
}

TEST(Glue, PreservesBallsAwayFromTheSeam) {
  // A node far from its part's anchor sees the same ball in H_i and in G —
  // the key fact ("each of the nodes in these sets cannot distinguish an
  // instance on Hi from an instance on G").
  const auto parts = claim2_sequence(2, 8);
  const std::vector<graph::NodeId> anchors = {0, 0};
  const GluedInstance glued = theorem1_glue(parts, anchors);

  const graph::NodeId far_node = parts[0].node_count() / 2;  // antipodal
  const int radius = 2;
  const graph::BallView before(parts[0].g, far_node, radius);
  const graph::BallView after(glued.instance.g, glued.to_glued(0, far_node),
                              radius);
  ASSERT_EQ(before.size(), after.size());
  // Same identities in the same BFS discovery order.
  for (graph::NodeId local = 0; local < before.size(); ++local) {
    EXPECT_EQ(parts[0].ids[before.to_original(local)],
              glued.instance.ids[after.to_original(local)]);
  }
  EXPECT_EQ(before.structure_signature(), after.structure_signature());
}

TEST(Glue, DisjointUnionKeepsParts) {
  const auto parts = claim2_sequence(3, 3);
  const GluedInstance u = disjoint_union_instances(parts);
  EXPECT_EQ(graph::component_count(u.instance.g), 3u);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (graph::NodeId v = 0; v < parts[i].node_count(); ++v) {
      EXPECT_EQ(u.instance.ids[u.to_glued(i, v)], parts[i].ids[v]);
    }
  }
}

TEST(Glue, RejectsOverlappingIdentities) {
  std::vector<local::Instance> parts;
  parts.push_back(consecutive_ring(6, 1));
  parts.push_back(consecutive_ring(6, 3));  // overlaps 3..6
  EXPECT_DEATH(theorem1_glue(parts, std::vector<graph::NodeId>{0, 0}),
               "disjoint");
}

TEST(CriticalStrings, FixedConstructionIsDeterministic) {
  const algo::UniformRandomColoring coloring(3);
  const local::Instance inst = consecutive_ring(12);
  const local::Labeling a = run_fixed_construction(inst, coloring, 42);
  const local::Labeling b = run_fixed_construction(inst, coloring, 42);
  EXPECT_EQ(a, b);
  const local::Labeling c = run_fixed_construction(inst, coloring, 43);
  EXPECT_NE(a, c);
}

TEST(CriticalStrings, DisjointnessOnScatteredSet) {
  // Small end-to-end run of the Claim-4 bookkeeping: fix sigma so that
  // C_sigma fails, scatter S, sample decision strings, and check the
  // geometric disjointness the proof relies on.
  const lang::ProperColoring base(3);
  const lang::FResilient relaxed(base, 1);
  const algo::UniformRandomColoring coloring(3);
  const decide::ResilientDecider decider(base, 1);
  const local::Instance inst = consecutive_ring(40);

  // Find a failing sigma (beta > 0 makes this quick).
  std::uint64_t sigma = 0;
  local::Labeling output;
  for (std::uint64_t candidate = 1; candidate < 50; ++candidate) {
    output = run_fixed_construction(inst, coloring, candidate);
    if (!relaxed.contains(inst, output)) {
      sigma = candidate;
      break;
    }
  }
  ASSERT_NE(sigma, 0u);

  const int exclusion = decider.radius() + coloring.radius();  // t + t'
  const auto scattered =
      graph::scattered_nodes(inst.g, 2 * exclusion, 4);
  ASSERT_GE(scattered.size(), 2u);

  const CriticalStringsReport report = verify_critical_strings(
      inst, output, decider, scattered, exclusion, 500, 5);
  EXPECT_TRUE(report.disjointness_holds());
  EXPECT_EQ(report.trials, 500u);
}

TEST(OrderCheck, WrapperPassesIdReaderFails) {
  class IdReader final : public local::BallAlgorithm {
   public:
    std::string name() const override { return "id-reader"; }
    int radius() const override { return 1; }
    local::Label compute(const local::View& view) const override {
      return view.identity(0) % 5;
    }
  };
  const IdReader raw;
  const algo::OrderInvariantWrapper wrapped(raw);
  const local::Instance inst = consecutive_ring(12);

  OrderCheckOptions options;
  options.trials = 16;
  const OrderInvarianceReport raw_report =
      check_order_invariance(inst, raw, options);
  EXPECT_GT(raw_report.violations, 0u);

  const OrderInvarianceReport wrapped_report =
      check_order_invariance(inst, wrapped, options);
  EXPECT_TRUE(wrapped_report.invariant());
}

TEST(OrderCheck, RankPatternAlgorithmsAreOrderInvariant) {
  // Every table-based ring algorithm is order-invariant by construction.
  const auto tables = algo::enumerate_tables(3, 3, 100, 3);
  const local::Instance inst = consecutive_ring(10);
  for (const auto& table : tables) {
    const algo::RankPatternRingAlgorithm alg(1, table);
    const OrderInvarianceReport report = check_order_invariance(inst, alg);
    EXPECT_TRUE(report.invariant());
  }
}

}  // namespace
}  // namespace lnc::core
