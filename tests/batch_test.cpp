// Tests for the unified batched experiment engine (local/batch_runner.h +
// local/experiment.h):
//
//  * bit-for-bit reproducibility — a plan produces byte-identical
//    estimates for thread counts 1, 2, and 8 (the contract that makes
//    every experiment in the repo replayable from a 64-bit seed);
//  * execution-mode agreement — balls, native messages, and two-phase
//    simulation produce identical labelings for every algorithm family
//    covered by simulate_test.cpp, deterministic AND randomized;
//  * arena reuse — warm per-worker arenas do not leak state between
//    trials or between consecutive runs.
#include <gtest/gtest.h>

#include "algo/rand_coloring.h"
#include "core/hard_instances.h"
#include "decide/experiment_plans.h"
#include "decide/resilient_decider.h"
#include "graph/generators.h"
#include "lang/coloring.h"
#include "lang/relax.h"
#include "local/experiment.h"

namespace lnc {
namespace {

using local::BatchRunner;
using local::ExecMode;

// -- algorithms mirrored from simulate_test.cpp ----------------------------

class CenterRank final : public local::BallAlgorithm {
 public:
  explicit CenterRank(int radius) : radius_(radius) {}
  std::string name() const override { return "center-rank"; }
  int radius() const override { return radius_; }
  local::Label compute(const local::View& view) const override {
    local::Label rank = 0;
    for (graph::NodeId i = 1; i < view.ball->size(); ++i) {
      if (view.identity(i) < view.center_identity()) ++rank;
    }
    return rank;
  }

 private:
  int radius_;
};

class DistanceWeightedSum final : public local::BallAlgorithm {
 public:
  std::string name() const override { return "distance-weighted-sum"; }
  int radius() const override { return 2; }
  local::Label compute(const local::View& view) const override {
    local::Label sum = 0;
    for (graph::NodeId i = 0; i < view.ball->size(); ++i) {
      sum += view.input(i) *
             static_cast<local::Label>(view.ball->distance(i) + 1);
    }
    return sum;
  }
};

class DegreeProfile final : public local::BallAlgorithm {
 public:
  std::string name() const override { return "degree-profile"; }
  int radius() const override { return 1; }
  local::Label compute(const local::View& view) const override {
    local::Label profile = view.ball->degree_in_ball(0);
    for (graph::NodeId nbr : view.ball->neighbors(0)) {
      profile += 100 * view.ball->degree_in_ball(nbr);
    }
    return profile;
  }
};

local::Instance labeled(graph::Graph g, std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  local::Instance inst = local::make_instance(
      std::move(g), ident::random_permutation(n, seed));
  inst.input.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    inst.input[v] = (seed + v * v) % 7;
  }
  return inst;
}

graph::Graph family(int index) {
  switch (index) {
    case 0: return graph::cycle(17);
    case 1: return graph::grid(5, 4);
    case 2: return graph::binary_tree(31);
    case 3: return graph::petersen();
    case 4: return graph::random_regular(24, 3, 11);
    default: return graph::hypercube(4);
  }
}

// -- execution-mode agreement ----------------------------------------------

class ModeAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ModeAgreement, DeterministicAlgorithmsAgreeAcrossModes) {
  const local::Instance inst = labeled(family(GetParam()), 13);
  const CenterRank rank2(2);
  const DistanceWeightedSum sums;
  const DegreeProfile profile;
  const local::BallAlgorithm* algos[] = {&rank2, &sums, &profile};
  for (const local::BallAlgorithm* algo : algos) {
    const local::Labeling balls =
        run_construction(inst, *algo, ExecMode::kBalls);
    EXPECT_EQ(run_construction(inst, *algo, ExecMode::kMessages), balls)
        << algo->name() << " messages != balls";
    EXPECT_EQ(run_construction(inst, *algo, ExecMode::kTwoPhase), balls)
        << algo->name() << " two-phase != balls";
  }
}

TEST_P(ModeAgreement, RandomizedColoringAgreesAcrossModes) {
  const local::Instance inst = labeled(family(GetParam()), 29);
  const algo::UniformRandomColoring coloring(3);
  const rand::PhiloxCoins coins(77, rand::Stream::kConstruction);
  const local::Labeling balls =
      run_construction(inst, coloring, coins, ExecMode::kBalls);
  EXPECT_EQ(run_construction(inst, coloring, coins, ExecMode::kMessages),
            balls);
  EXPECT_EQ(run_construction(inst, coloring, coins, ExecMode::kTwoPhase),
            balls);
}

INSTANTIATE_TEST_SUITE_P(Families, ModeAgreement, ::testing::Range(0, 6));

TEST(ModeAgreement, ArenaReuseMatchesFreshScratch) {
  const local::Instance a = labeled(family(1), 3);
  const local::Instance b = labeled(family(4), 5);
  const CenterRank rank(2);
  local::WorkerArena arena;
  local::ExecOptions with_arena;
  with_arena.arena = &arena;
  // Alternate instances through ONE arena; outputs must equal fresh runs.
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(run_construction(a, rank, ExecMode::kTwoPhase, with_arena),
              run_construction(a, rank, ExecMode::kTwoPhase));
    EXPECT_EQ(run_construction(b, rank, ExecMode::kMessages, with_arena),
              run_construction(b, rank, ExecMode::kMessages));
  }
}

// -- bit-for-bit reproducibility across thread counts ----------------------

void expect_identical(const stats::Estimate& x, const stats::Estimate& y) {
  EXPECT_EQ(x.successes, y.successes);
  EXPECT_EQ(x.trials, y.trials);
  EXPECT_EQ(x.p_hat, y.p_hat);  // exact: same integers, same division
  EXPECT_EQ(x.ci.lo, y.ci.lo);
  EXPECT_EQ(x.ci.hi, y.ci.hi);
}

TEST(BatchReproducibility, ConstructionPlanAcrossThreadCounts) {
  const local::Instance inst = core::consecutive_ring(48);
  const algo::UniformRandomColoring coloring(3);
  const lang::ProperColoring base(3);
  const lang::EpsSlack slack(base, 0.65);
  auto plan = [&]() {
    return local::construction_plan(
        "repro", inst, coloring,
        [&slack](const local::Instance& instance,
                 const local::Labeling& y) {
          return slack.contains(instance, y);
        },
        2000, 97);
  };
  BatchRunner sequential;
  const stats::Estimate reference = sequential.run(plan());
  for (unsigned threads : {1u, 2u, 8u}) {
    const stats::ThreadPool pool(threads);
    BatchRunner runner(&pool);
    const stats::Estimate parallel = runner.run(plan());
    expect_identical(reference, parallel);
    // Re-running on the same (now warm) runner must also be identical.
    expect_identical(reference, runner.run(plan()));
  }
}

TEST(BatchReproducibility, ConstructDecidePlanAcrossThreadCounts) {
  const local::Instance inst = core::consecutive_ring(30);
  const algo::UniformRandomColoring coloring(3);
  const lang::ProperColoring base(3);
  const decide::ResilientDecider decider(base, 1);
  auto plan = [&]() {
    return decide::construct_then_decide_plan("repro-decide", inst, coloring,
                                              decider, 1500, 41);
  };
  BatchRunner sequential;
  const stats::Estimate reference = sequential.run(plan());
  for (unsigned threads : {1u, 2u, 8u}) {
    const stats::ThreadPool pool(threads);
    BatchRunner runner(&pool);
    expect_identical(reference, runner.run(plan()));
  }
}

TEST(BatchReproducibility, ModesAgreeInDistributionThroughPlans) {
  // The same base seed must give the SAME estimate whichever execution
  // mode runs the construction — the coins are identity-addressed, so the
  // mode cannot leak into the outcome.
  const local::Instance inst = core::consecutive_ring(24);
  const algo::UniformRandomColoring coloring(3);
  const lang::ProperColoring base(3);
  const lang::EpsSlack slack(base, 0.65);
  auto plan_for = [&](ExecMode mode) {
    return local::construction_plan(
        "mode-repro", inst, coloring,
        [&slack](const local::Instance& instance,
                 const local::Labeling& y) {
          return slack.contains(instance, y);
        },
        500, 7, mode);
  };
  const stats::ThreadPool pool(4);
  BatchRunner runner(&pool);
  const stats::Estimate balls = runner.run(plan_for(ExecMode::kBalls));
  expect_identical(balls, runner.run(plan_for(ExecMode::kMessages)));
  expect_identical(balls, runner.run(plan_for(ExecMode::kTwoPhase)));
}

// -- telemetry: deterministic counters across thread counts ----------------

void expect_telemetry_identical(const local::Telemetry& x,
                                const local::Telemetry& y) {
  EXPECT_EQ(x.messages_sent, y.messages_sent);
  EXPECT_EQ(x.words_sent, y.words_sent);
  EXPECT_EQ(x.rounds_executed, y.rounds_executed);
  EXPECT_EQ(x.ball_expansions, y.ball_expansions);
  EXPECT_TRUE(x.deterministic_equal(y));
}

TEST(BatchTelemetry, EngineCountersIdenticalAcrossThreadCounts) {
  // kMessages runs the flooding simulation natively through the engine:
  // every counter is MEASURED (non-silent messages, their words, rounds).
  // A radius-2 algorithm actually floods; radius-0 ones measure zero.
  const local::Instance inst = core::consecutive_ring(24);
  const CenterRank rank2(2);
  const local::AsRandomized randomized(rank2);
  auto plan = [&]() {
    return local::construction_plan(
        "telemetry-engine", inst, randomized,
        [](const local::Instance&, const local::Labeling& y) {
          return y[0] % 2 == 0;
        },
        300, 19, ExecMode::kMessages);
  };
  BatchRunner sequential;
  sequential.run(plan());
  const local::Telemetry reference = sequential.last_telemetry();
  EXPECT_GT(reference.messages_sent, 0u);
  EXPECT_GT(reference.words_sent, 0u);
  EXPECT_GT(reference.rounds_executed, 0u);
  for (unsigned threads : {1u, 2u, 8u}) {
    const stats::ThreadPool pool(threads);
    BatchRunner runner(&pool);
    runner.run(plan());
    expect_telemetry_identical(reference, runner.last_telemetry());
    // A warm re-run must report the SAME batch telemetry (per-batch
    // reset, not a cross-run accumulation).
    runner.run(plan());
    expect_telemetry_identical(reference, runner.last_telemetry());
  }
}

TEST(BatchTelemetry, BallModeModeledCountersIdenticalAcrossThreadCounts) {
  // kBalls never touches the engine: the counters are the MODELED
  // simulation-theorem charge, still a pure function of the trial set.
  const local::Instance inst = core::consecutive_ring(30);
  const algo::UniformRandomColoring coloring(3);
  const lang::ProperColoring base(3);
  const decide::ResilientDecider decider(base, 1);
  auto plan = [&]() {
    return decide::construct_then_decide_plan(
        "telemetry-balls", inst, coloring, decider, 400, 23);
  };
  BatchRunner sequential;
  sequential.run(plan());
  const local::Telemetry reference = sequential.last_telemetry();
  EXPECT_GT(reference.messages_sent, 0u);
  EXPECT_GT(reference.words_sent, 0u);
  EXPECT_GT(reference.rounds_executed, 0u);
  EXPECT_GT(reference.ball_expansions, 0u);
  for (unsigned threads : {1u, 2u, 8u}) {
    const stats::ThreadPool pool(threads);
    BatchRunner runner(&pool);
    runner.run(plan());
    expect_telemetry_identical(reference, runner.last_telemetry());
  }
}

TEST(BatchTelemetry, ShardTelemetriesSumToTheUnshardedRun) {
  const local::Instance inst = core::consecutive_ring(18);
  const CenterRank rank2(2);
  const local::AsRandomized randomized(rank2);
  auto plan = [&]() {
    return local::construction_plan(
        "telemetry-shards", inst, randomized,
        [](const local::Instance&, const local::Labeling& y) {
          return y[0] % 2 == 0;
        },
        101, 31, ExecMode::kMessages);
  };
  BatchRunner runner;
  const local::ShardTally full = runner.run_shard(plan(), {0, 101});
  EXPECT_GT(full.telemetry.messages_sent, 0u);
  std::vector<local::ShardTally> parts;
  for (unsigned s = 0; s < 3; ++s) {
    parts.push_back(
        runner.run_shard(plan(), local::shard_range(101, s, 3)));
  }
  expect_telemetry_identical(full.telemetry,
                             local::merge_telemetries(parts));
}

TEST(BatchReproducibility, MeanAndCountPlansAcrossThreadCounts) {
  const local::Instance inst = core::consecutive_ring(36);
  const algo::UniformRandomColoring coloring(3);
  const lang::ProperColoring base(3);
  auto mean_plan = [&]() {
    return local::construction_value_plan(
        "mean-repro", inst, coloring,
        [&base](const local::Instance& instance, const local::Labeling& y) {
          return static_cast<double>(base.count_bad_balls(instance, y));
        },
        800, 11);
  };
  auto count_plan = [&]() {
    return local::custom_count_plan(
        "count-repro", 800, 11, 2,
        [&](const local::TrialEnv& env, std::span<std::uint64_t> slots) {
          local::Labeling& y = env.arena->labeling();
          local::run_ball_algorithm_into(inst, coloring,
                                         env.construction_coins(), y);
          const std::size_t bad = base.count_bad_balls(inst, y);
          slots[0] += bad;
          if (bad * 2 > inst.node_count()) ++slots[1];
        });
  };
  BatchRunner sequential;
  const stats::MeanEstimate mean_ref = sequential.run_mean(mean_plan());
  const auto counts_ref = sequential.run_counts(count_plan());
  for (unsigned threads : {1u, 2u, 8u}) {
    const stats::ThreadPool pool(threads);
    BatchRunner runner(&pool);
    const stats::MeanEstimate mean = runner.run_mean(mean_plan());
    EXPECT_EQ(mean_ref.mean, mean.mean);
    EXPECT_EQ(mean_ref.stddev, mean.stddev);
    EXPECT_EQ(counts_ref, runner.run_counts(count_plan()));
  }
}

}  // namespace
}  // namespace lnc
